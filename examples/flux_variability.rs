//! Flux variability analysis with the exact simplex substrate: for each
//! reaction, the attainable flux range at steady state under a normalized
//! substrate uptake. FVA complements EFM analysis (ranges are the shadows
//! of the mode cone) and exercises `efm-linalg`'s rational LP solver.
//!
//! ```text
//! cargo run --release --example flux_variability
//! ```

use efm_suite::linalg::{lp_maximize, LpOutcome, LpProblem, Mat};
use efm_suite::metnet::examples::toy_network;
use efm_suite::numeric::Rational;

fn main() {
    let net = toy_network();
    let n = net.stoichiometry();
    let q = net.num_reactions();
    let uptake = net.reaction_index("r1").expect("substrate uptake");

    // Constraints: N·v = 0, v_uptake = 1, irreversible v ≥ 0.
    let m = n.rows();
    let mut a = Mat::<Rational>::zeros(m + 1, q);
    for r in 0..m {
        for c in 0..q {
            a.set(r, c, n.get(r, c).clone());
        }
    }
    a.set(m, uptake, Rational::one());
    let mut b = vec![Rational::zero(); m + 1];
    b[m] = Rational::one();
    let nonneg: Vec<bool> = net.reversibilities().iter().map(|&r| !r).collect();

    println!("flux variability of the Fig. 1 network at r1 = 1:\n");
    println!("{:>6}  {:>10}  {:>10}", "rxn", "min", "max");
    for j in 0..q {
        let mut c_max = vec![Rational::zero(); q];
        c_max[j] = Rational::one();
        let mut c_min = vec![Rational::zero(); q];
        c_min[j] = Rational::from_i64(-1);
        let problem = || LpProblem { a: a.clone(), b: b.clone(), nonneg: nonneg.clone() };
        let hi = match lp_maximize(&problem(), &c_max) {
            LpOutcome::Optimal(v) => v.to_string(),
            LpOutcome::Unbounded => "+inf".to_string(),
            LpOutcome::Infeasible => panic!("r1=1 must be feasible"),
        };
        let lo = match lp_maximize(&problem(), &c_min) {
            LpOutcome::Optimal(v) => v.neg().to_string(),
            LpOutcome::Unbounded => "-inf".to_string(),
            LpOutcome::Infeasible => unreachable!(),
        };
        println!("{:>6}  {:>10}  {:>10}", net.reactions[j].name, lo, hi);
    }
    println!("\n(exact rational bounds — e.g. r4 can carry up to 2 per unit of r1,");
    println!(" matching the doubling pathway r5+r7 of Eq. (7).)");
}
