//! Gene-knockout analysis — one of the EFM applications motivating the
//! paper's introduction ([4]–[7]: "gene knockout studies", minimal cells).
//!
//! Deleting a reaction kills every EFM whose support uses it; the surviving
//! EFM set describes the mutant's metabolic capabilities. This example
//! screens every single-reaction knockout of the toy network and reports
//! which knockouts preserve product formation (P export via r4) and which
//! are lethal for it, then finds the *minimal cut sets* of size ≤ 2 that
//! abolish production entirely.
//!
//! ```text
//! cargo run --release --example knockout_study
//! ```

use efm_suite::efm::{enumerate, EfmOptions, EfmSet};
use efm_suite::metnet::examples::toy_network;

/// EFMs of `set` that survive deleting all reactions in `knockout`.
fn surviving(set: &EfmSet, knockout: &[usize]) -> Vec<usize> {
    (0..set.len()).filter(|&i| knockout.iter().all(|&r| !set.uses(i, r))).collect()
}

fn main() {
    let net = toy_network();
    let out = enumerate(&net, &EfmOptions::default()).expect("enumeration failed");
    let efms = &out.efms;
    let target = net.reaction_index("r4").expect("product export reaction");
    let producing: Vec<usize> = (0..efms.len()).filter(|&i| efms.uses(i, target)).collect();
    println!(
        "wild type: {} EFMs, {} of them export product P (use r4)\n",
        efms.len(),
        producing.len()
    );

    println!("single-reaction knockout screen:");
    for (j, rxn) in net.reactions.iter().enumerate() {
        let alive = surviving(efms, &[j]);
        let alive_producing = alive.iter().filter(|&&i| efms.uses(i, target)).count();
        let verdict = if j == target {
            "target itself"
        } else if alive_producing == 0 {
            "LETHAL for production"
        } else if alive_producing < producing.len() {
            "reduced flexibility"
        } else {
            "neutral"
        };
        println!(
            "  Δ{:4}  {:2} EFMs survive, {} still produce  → {}",
            rxn.name,
            alive.len(),
            alive_producing,
            verdict
        );
    }

    // Minimal cut sets of size ≤ 2 for production (excluding the target
    // exchange itself): every producing EFM must be hit.
    println!("\nminimal cut sets (size ≤ 2) abolishing P export:");
    let q = net.num_reactions();
    let mut cuts: Vec<Vec<usize>> = Vec::new();
    for a in 0..q {
        if a == target {
            continue;
        }
        if producing.iter().all(|&i| efms.uses(i, a)) {
            cuts.push(vec![a]);
        }
    }
    for a in 0..q {
        for b in a + 1..q {
            if a == target || b == target {
                continue;
            }
            if cuts.iter().any(|c| c.contains(&a) || c.contains(&b)) {
                continue; // not minimal
            }
            if producing.iter().all(|&i| efms.uses(i, a) || efms.uses(i, b)) {
                cuts.push(vec![a, b]);
            }
        }
    }
    for cut in &cuts {
        let names: Vec<&str> = cut.iter().map(|&j| net.reactions[j].name.as_str()).collect();
        println!("  {{{}}}", names.join(", "));
    }
    assert!(!cuts.is_empty(), "the toy network has small cut sets");
}
