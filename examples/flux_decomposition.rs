//! Flux decomposition — the estimation-of-flux-distribution application
//! from the paper's introduction ([8]–[12], Schwartz & Kanehisa): express a
//! measured steady-state flux distribution as a nonnegative combination of
//! elementary flux modes.
//!
//! We synthesize a "measured" flux as a known mixture of toy-network EFMs,
//! then recover the weights with nonnegative least squares and check the
//! reconstruction.
//!
//! ```text
//! cargo run --release --example flux_decomposition
//! ```

use efm_suite::efm::{enumerate, recover_flux, EfmOptions};
use efm_suite::linalg::nnls;
use efm_suite::metnet::examples::toy_network;

fn main() {
    let net = toy_network();
    let out = enumerate(&net, &EfmOptions::default()).expect("enumeration failed");
    let q = net.num_reactions();
    let rev = net.reversibilities();

    // EFM matrix E (reactions × modes) with exact coefficients as f64.
    let n_modes = out.efms.len();
    let mut e = vec![0.0f64; q * n_modes];
    for m in 0..n_modes {
        let sup = out.efms.support(m);
        let flux = recover_flux(&out.reduced, &rev, &sup).unwrap();
        for (j, v) in flux.iter().enumerate() {
            e[j * n_modes + m] = v.to_f64();
        }
    }

    // Ground-truth mixture: 2×EFM0 + 0.5×EFM3 + 1×EFM5.
    let mut truth = vec![0.0f64; n_modes];
    truth[0] = 2.0;
    truth[3 % n_modes] = 0.5;
    truth[5 % n_modes] = 1.0;
    let measured: Vec<f64> =
        (0..q).map(|j| (0..n_modes).map(|m| e[j * n_modes + m] * truth[m]).sum()).collect();
    println!("synthetic measured flux (per reaction):");
    for (j, v) in measured.iter().enumerate() {
        if v.abs() > 1e-12 {
            println!("  {:4} = {v:.3}", net.reactions[j].name);
        }
    }

    let sol = nnls(&e, q, n_modes, &measured);
    println!(
        "\nNNLS decomposition (residual {:.2e}, {} iterations):",
        sol.residual, sol.iterations
    );
    for (m, w) in sol.x.iter().enumerate() {
        if *w > 1e-9 {
            let names: Vec<&str> =
                out.efms.support(m).iter().map(|&j| net.reactions[j].name.as_str()).collect();
            println!("  weight {w:.3} on EFM {m} {{{}}}", names.join(", "));
        }
    }
    // The reconstruction must explain the measurement.
    assert!(sol.residual < 1e-6, "decomposition must be exact for a synthetic mixture");
    let reconstructed: Vec<f64> =
        (0..q).map(|j| (0..n_modes).map(|m| e[j * n_modes + m] * sol.x[m]).sum()).collect();
    let err: f64 =
        measured.iter().zip(&reconstructed).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    println!("\nreconstruction error ‖E·w − v‖ = {err:.2e}");
}
