//! The paper's headline workflow on the yeast network: run the
//! combinatorial parallel Nullspace Algorithm unsplit, then the combined
//! divide-and-conquer algorithm partitioned across {R89r, R74r} (the
//! paper's Table III split), and compare candidate counts, peak memory
//! pressure, and wall time.
//!
//! By default this runs a trimmed ("lite") Network I that finishes in
//! seconds on one core; pass `full` to run the complete 62×78 network
//! (minutes; see EXPERIMENTS.md for recorded full-scale results).
//!
//! ```text
//! cargo run --release --example yeast_divide_and_conquer [lite|full]
//! ```

use efm_suite::cluster::ClusterConfig;
use efm_suite::efm::{
    enumerate_divide_conquer_with_scalar, enumerate_with_scalar, Backend, EfmOptions,
};
use efm_suite::numeric::F64Tol;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "lite".into());
    let net = match scale.as_str() {
        "full" => efm_suite::metnet::yeast::network_i(),
        _ => {
            // Drop the two highest-degree hub reactions; preserves the
            // experiment's shape at ~1/50 of the mode count.
            let text: String = efm_suite::metnet::yeast::NETWORK_I_TEXT
                .lines()
                .filter(|l| {
                    let name = l.split(':').next().unwrap_or("").trim();
                    name != "R15" && name != "R70"
                })
                .map(|l| format!("{l}\n"))
                .collect();
            efm_suite::metnet::parse_network(&text).unwrap()
        }
    };
    println!(
        "S. cerevisiae Network I ({scale}): {} metabolites x {} reactions",
        net.num_internal(),
        net.num_reactions()
    );
    let opts = EfmOptions::default();
    let backend = Backend::Cluster(ClusterConfig::new(4));

    println!("\n-- Algorithm 2 (combinatorial parallel, unsplit) --");
    let unsplit = enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).unwrap();
    println!(
        "EFMs: {}   candidates: {}   peak intermediate modes: {}   time: {:.2}s",
        unsplit.efms.len(),
        unsplit.stats.candidates_generated,
        unsplit.stats.peak_modes,
        unsplit.stats.total_time.as_secs_f64()
    );

    println!("\n-- Algorithm 3 (combined, partition {{R89r, R74r}}) --");
    let split =
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &opts, &["R89r", "R74r"], &backend)
            .unwrap();
    for s in &split.subsets {
        println!(
            "  subset {} [{}]: {} EFMs, {} candidates, peak {} modes, {:.2}s{}",
            s.id,
            s.pattern,
            s.efm_count,
            s.stats.candidates_generated,
            s.stats.peak_modes,
            s.stats.total_time.as_secs_f64(),
            if s.skipped_empty { " (provably empty)" } else { "" }
        );
    }
    println!(
        "union: {} EFMs   cumulative candidates: {}   worst subset peak: {} modes",
        split.efms.len(),
        split.stats.candidates_generated,
        split.subsets.iter().map(|s| s.stats.peak_modes).max().unwrap_or(0)
    );

    assert_eq!(unsplit.efms, split.efms, "the partition must recover the same EFM set");
    println!(
        "\ndivide-and-conquer generated {:.1}% of the unsplit candidates and peaked at {:.1}% of its modes",
        100.0 * split.stats.candidates_generated as f64
            / unsplit.stats.candidates_generated.max(1) as f64,
        100.0 * split.subsets.iter().map(|s| s.stats.peak_modes).max().unwrap_or(0) as f64
            / unsplit.stats.peak_modes.max(1) as f64
    );
}
