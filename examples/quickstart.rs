//! Quickstart: enumerate the elementary flux modes of the paper's Fig. 1
//! toy network and print them with exact coefficients — reproducing the
//! EFM matrix of Eq. (7).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use efm_suite::efm::{enumerate, recover_flux, verify_flux, EfmOptions};
use efm_suite::metnet::examples::toy_network;

fn main() {
    let net = toy_network();
    println!("network:\n{net}");

    let outcome = enumerate(&net, &EfmOptions::default()).expect("enumeration failed");
    println!(
        "reduced to {}x{} ({} blocked, {} merged)",
        outcome.reduced.stoich.rows(),
        outcome.reduced.num_reduced(),
        outcome.compression.blocked + outcome.compression.sign_blocked,
        outcome.compression.merged,
    );
    println!(
        "{} elementary flux modes from {} candidate pairs:\n",
        outcome.efms.len(),
        outcome.stats.candidates_generated
    );

    let reversibility = net.reversibilities();
    for i in 0..outcome.efms.len() {
        let support = outcome.efms.support(i);
        let flux = recover_flux(&outcome.reduced, &reversibility, &support)
            .expect("every reported mode has an exact flux vector");
        verify_flux(&net, &flux).expect("N·v = 0 and irreversibility hold");
        let terms: Vec<String> =
            support.iter().map(|&j| format!("{}={}", net.reactions[j].name, flux[j])).collect();
        println!("EFM {:>2}: {}", i + 1, terms.join("  "));
    }
}
