//! Low-memory lane: the yeast-lite differential under an enforced
//! per-node byte cap, plus the compressed/spilled divide-and-conquer
//! assembly. Heavy (several lite-scale cluster enumerations), so the
//! tests are `#[ignore]`d out of the default suite and run by the CI
//! `low-memory` job via `--include-ignored`.

use efm_core::{
    enumerate_divide_conquer_with_scalar, enumerate_with_scalar, Backend, EfmError, EfmOptions,
};
use efm_metnet::{parse_network, MetabolicNetwork};
use efm_numeric::F64Tol;

fn network_i_lite() -> MetabolicNetwork {
    let text: String = efm_metnet::yeast::NETWORK_I_TEXT
        .lines()
        .filter(|l| {
            let name = l.split(':').next().unwrap_or("").trim();
            name != "R15" && name != "R70"
        })
        .map(|l| format!("{l}\n"))
        .collect();
    parse_network(&text).unwrap()
}

/// Streaming generation completes under a cap set to its own measured
/// charged peak and yields the serial reference set; the legacy
/// materialize-then-filter path aborts under the same cap with a typed
/// `MemoryExceeded` — its whole transient stripe is now charged, and at
/// lite scale that transient dominates the footprint.
#[test]
#[ignore = "low-memory lane: several lite-scale cluster runs; run via --include-ignored"]
fn capped_cluster_streaming_matches_serial_where_legacy_aborts() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let serial = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();

    let uncapped = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(4)),
    )
    .unwrap();
    assert_eq!(uncapped.efms, serial.efms);
    let cap = uncapped.stats.peak_bytes;
    assert!(cap > 0, "the cluster meter must charge real bytes");

    // The deterministic replay fits exactly at its own high-water mark.
    let capped = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(4).with_memory_limit(cap)),
    )
    .unwrap();
    assert_eq!(capped.efms, serial.efms, "capped streaming run diverged from serial");
    assert!(capped.stats.stream_batches > 0, "streaming pipeline must have run");

    // Legacy generation materializes the full pair stripe; under the cap
    // sized for the streaming run it must abort, typed.
    let legacy_opts = EfmOptions { streaming: false, ..opts };
    let err = enumerate_with_scalar::<F64Tol>(
        &net,
        &legacy_opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(4).with_memory_limit(cap)),
    )
    .unwrap_err();
    match err {
        EfmError::Cluster(efm_cluster::ClusterError::MemoryExceeded { .. }) => {}
        other => panic!("expected MemoryExceeded from the legacy path, got {other:?}"),
    }
}

/// The compressed + spilled divide-and-conquer assembly is set-identical
/// to the inline path and actually spills under a zero resident budget.
#[test]
#[ignore = "low-memory lane: lite-scale divide-and-conquer runs; run via --include-ignored"]
fn spilled_dnc_assembly_is_set_identical_on_yeast_lite() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    // Two reversible reduced reactions make a 4-subset partition (same
    // selection logic as tests/yeast_lite.rs).
    let probe = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let mut names: Vec<String> = Vec::new();
    let mut used = Vec::new();
    for rxn in &net.reactions {
        if names.len() == 2 {
            break;
        }
        if let Some(r) =
            net.reaction_index(&rxn.name).and_then(|o| probe.reduced.reduced_index_of(o))
        {
            if probe.reduced.reversible[r] && !used.contains(&r) {
                used.push(r);
                names.push(rxn.name.clone());
            }
        }
    }
    assert_eq!(names.len(), 2, "lite network must retain two reversible reactions");
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let inline =
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &opts, &refs, &Backend::Serial)
            .unwrap();
    let spill_opts = EfmOptions { spill_budget: Some(0), ..opts };
    let spilled =
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &spill_opts, &refs, &Backend::Serial)
            .unwrap();
    assert_eq!(spilled.efms, inline.efms, "spilled assembly diverged from inline");
    assert_eq!(spilled.efms, probe.efms, "divide-and-conquer diverged from the direct run");
    assert!(
        spilled.stats.spill_bytes > 0,
        "a zero resident budget must spill every compressed stripe"
    );
    assert_eq!(inline.stats.spill_bytes, 0, "the inline path must not touch the spill file");
}
