//! Behavioural tests of the combinatorial parallel algorithm on the
//! simulated cluster: balanced work split, identical per-rank results,
//! phase instrumentation, and the memory-capacity failure mode.

use efm_cluster::{ClusterConfig, ClusterError};
use efm_core::{
    build_problem, cluster_supports, enumerate_with_scalar, phases, Backend, EfmError, EfmOptions,
};
use efm_metnet::generator::layered_branches;
use efm_metnet::{compress, examples::toy_network};
use efm_numeric::DynInt;

#[test]
fn pair_grid_split_is_balanced() {
    // Each rank's generated pair count differs by at most the per-iteration
    // number of iterations (integer division remainder ≤ 1 per iteration).
    let net = layered_branches(4, 3);
    let (red, _) = compress(&net);
    let opts = EfmOptions::default();
    let problem = build_problem::<DynInt>(&red, &opts).unwrap();
    let out =
        cluster_supports::<efm_bitset::Pattern1, DynInt>(&problem, &opts, &ClusterConfig::new(5))
            .unwrap();
    let iters = out.per_rank[0].value.stats.iterations.len() as u64;
    let counts: Vec<u64> =
        out.per_rank.iter().map(|r| r.value.stats.candidates_generated).collect();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(
        max - min <= iters,
        "pair stripes must be balanced: {counts:?} over {iters} iterations"
    );
    let total: u64 = counts.iter().sum();
    assert_eq!(total, out.stats.candidates_generated);
}

#[test]
fn every_rank_reaches_identical_results() {
    let net = toy_network();
    let (red, _) = compress(&net);
    let opts = EfmOptions::default();
    let problem = build_problem::<DynInt>(&red, &opts).unwrap();
    let out =
        cluster_supports::<efm_bitset::Pattern1, DynInt>(&problem, &opts, &ClusterConfig::new(4))
            .unwrap();
    let reference = &out.per_rank[0].value.supports;
    for rank in &out.per_rank[1..] {
        assert_eq!(&rank.value.supports, reference, "rank {} diverged", rank.rank);
    }
    assert_eq!(reference.len(), 8);
}

#[test]
fn phase_clocks_are_recorded() {
    let net = layered_branches(3, 3);
    let (red, _) = compress(&net);
    let opts = EfmOptions::default();
    let problem = build_problem::<DynInt>(&red, &opts).unwrap();
    let out =
        cluster_supports::<efm_bitset::Pattern1, DynInt>(&problem, &opts, &ClusterConfig::new(2))
            .unwrap();
    for rank in &out.per_rank {
        for label in
            [phases::GENERATE, phases::DEDUP, phases::RANK, phases::COMMUNICATE, phases::MERGE]
        {
            assert!(
                rank.phase_times.contains_key(label),
                "rank {} missing phase {label}",
                rank.rank
            );
        }
        assert!(rank.phase_work.get(phases::GENERATE).copied().unwrap_or(0) > 0);
        assert!(rank.peak_memory > 0, "memory meter must account the mode matrix");
    }
}

#[test]
fn memory_cap_aborts_cluster_run() {
    let net = layered_branches(5, 3); // 243 EFMs → a few KB of modes
    let opts = EfmOptions::default();
    let tiny = ClusterConfig::new(2).with_memory_limit(512);
    match enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(tiny)) {
        Err(EfmError::Cluster(ClusterError::MemoryExceeded { limit: 512, .. })) => {}
        other => panic!("expected memory abort, got {other:?}"),
    }
    // The same run fits with a generous cap and matches the serial result.
    let roomy = ClusterConfig::new(2).with_memory_limit(64 << 20);
    let capped = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(roomy)).unwrap();
    let serial = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
    assert_eq!(capped.efms, serial.efms);
}

#[test]
fn single_rank_cluster_equals_serial() {
    let net = layered_branches(4, 2);
    let opts = EfmOptions::default();
    let cluster =
        enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(ClusterConfig::new(1)))
            .unwrap();
    let serial = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
    assert_eq!(cluster.efms, serial.efms);
    assert_eq!(
        cluster.stats.candidates_generated, serial.stats.candidates_generated,
        "a single rank owns the whole pair grid"
    );
}

/// Runs `f` on a watchdog thread; panics if it has not finished within
/// `secs` (the pre-fix deadlock would otherwise hang the test runner).
fn within_seconds<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(std::time::Duration::from_secs(secs))
        .expect("cluster run deadlocked instead of aborting")
}

#[test]
fn one_rank_memory_abort_is_a_typed_error_not_a_hang() {
    // Regression: exactly one rank trips its cap on an asymmetric
    // allocation while its peers are already committed to collectives.
    // Pre-fix this deadlocked in `barrier()`/`allgather` forever.
    let err = within_seconds(30, || {
        let cfg = ClusterConfig::new(4).with_memory_limit(1024);
        efm_cluster::run_cluster(&cfg, |ctx| {
            if ctx.rank() == 2 {
                ctx.memory().alloc(4096)?; // only rank 2 exceeds the cap
            }
            ctx.barrier()?;
            let _ = ctx.allgather(vec![ctx.rank()])?;
            Ok(())
        })
        .unwrap_err()
    });
    match err {
        ClusterError::MemoryExceeded { rank: 2, limit: 1024, .. } => {}
        other => panic!("expected rank 2 memory abort, got {other:?}"),
    }
}

#[test]
fn panicking_rank_yields_node_panicked_with_peers_released() {
    let err = within_seconds(30, || {
        let cfg = ClusterConfig::new(3);
        efm_cluster::run_cluster::<(), _>(&cfg, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected fault");
            }
            ctx.barrier()?; // peers must be woken, not stranded
            Ok(())
        })
        .unwrap_err()
    });
    match err {
        ClusterError::NodePanicked { rank: 1, message } => {
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected NodePanicked, got {other:?}"),
    }
}

#[test]
fn asymmetric_stripe_abort_during_enumeration_returns_promptly() {
    // End-to-end: a capacity chosen so the cap trips mid-enumeration on a
    // real workload must surface as an error from the public API within
    // the watchdog window.
    let err = within_seconds(60, || {
        let net = layered_branches(5, 3);
        let opts = EfmOptions::default();
        let tiny = ClusterConfig::new(3).with_memory_limit(2048);
        enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(tiny)).unwrap_err()
    });
    match err {
        EfmError::Cluster(ClusterError::MemoryExceeded { .. }) => {}
        other => panic!("expected memory abort, got {other:?}"),
    }
}
