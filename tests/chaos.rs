//! Chaos soak: sweep seeded fault plans over the supervised cluster and
//! assert every run converges to the exact fault-free EFM set.
//!
//! The matrix crosses crash faults at each instrumented collective phase
//! (`iteration`, `generate`, `dedup`, `rank`, `communicate`, `merge`) with
//! 2–4 ranks, plus a soft-fault sweep (stragglers, flaky and delayed
//! sends) that must finish with *zero* restarts. Every run executes under
//! a watchdog so a recovery bug shows up as a test failure, never a hang.

use efm_cluster::{ClusterConfig, ClusterTimeouts, FaultPlan};
use efm_core::{enumerate, enumerate_supervised, EfmError, EfmOptions, SuperviseConfig};
use efm_metnet::examples::toy_network;
use std::time::Duration;

const PHASES: [&str; 6] = ["iteration", "generate", "dedup", "rank", "communicate", "merge"];

/// Runs `f` on a watchdog thread; panics if it has not finished within
/// `secs` (a recovery bug must fail the suite, not hang the runner).
fn within_seconds<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs)).expect("supervised run hung instead of recovering")
}

fn temp_ckpt(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("efm-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.efck"))
}

/// One supervised run under `plan`; returns the outcome within the
/// watchdog window and removes its checkpoint.
fn supervised(
    tag: &str,
    nodes: usize,
    plan: FaultPlan,
    max_restarts: u32,
) -> Result<efm_core::EfmOutcome, EfmError> {
    let path = temp_ckpt(tag);
    let _ = std::fs::remove_file(&path);
    let p = path.clone();
    let out = within_seconds(120, move || {
        let net = toy_network();
        let opts = EfmOptions::default();
        // Short deadlines keep a (hypothetical) stuck collective from
        // eating the watchdog budget: detection is the product's job.
        let cluster = ClusterConfig::new(nodes)
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let sup = SuperviseConfig::new(&p).max_restarts(max_restarts).with_fault_plan(plan);
        enumerate_supervised(&net, &opts, &cluster, &sup)
    });
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn crash_sweep_over_every_phase_and_rank_count_recovers_exactly() {
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    for (pi, phase) in PHASES.iter().enumerate() {
        for nodes in 2..=4usize {
            // Deterministic but varied placement: which rank dies and at
            // which iteration depend on the matrix cell, seeded per cell.
            let victim = (pi + nodes) % nodes;
            let iter = (pi % 3) as u64;
            let seed = (pi as u64) * 100 + nodes as u64;
            let plan = FaultPlan::new(seed).crash(victim, phase, iter);
            let tag = format!("crash-{phase}-{nodes}");
            let out = supervised(&tag, nodes, plan, 3).unwrap_or_else(|e| {
                panic!("phase={phase} nodes={nodes} victim={victim} iter={iter}: {e}")
            });
            assert_eq!(
                out.efms, direct.efms,
                "EFM set diverged after crash at {phase}[{iter}] on rank {victim}/{nodes}"
            );
            assert_eq!(
                out.stats.recovery.restarts(),
                1,
                "one crash must cost exactly one restart ({phase}, {nodes} ranks): {}",
                out.stats.recovery
            );
        }
    }
}

#[test]
fn double_crash_within_budget_still_recovers() {
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    for nodes in 2..=4usize {
        let plan =
            FaultPlan::new(40 + nodes as u64).crash(0, "generate", 1).crash(nodes - 1, "merge", 3);
        let out = supervised(&format!("double-{nodes}"), nodes, plan, 3).unwrap();
        assert_eq!(out.efms, direct.efms, "{nodes} ranks");
        assert_eq!(out.stats.recovery.restarts(), 2, "{}", out.stats.recovery);
    }
}

#[test]
fn soft_fault_sweep_finishes_with_zero_restarts() {
    // Stragglers, dropped/duplicated/delayed/flaky sends: the runtime must
    // absorb all of these without the supervisor ever restarting. A
    // dropped data packet *is* fatal to that attempt (detected, not hung),
    // so drops are exercised in the restart sweep below instead.
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    for nodes in 2..=4usize {
        let plan = FaultPlan::new(70 + nodes as u64)
            .straggler(nodes - 1, 2)
            .flaky_send(0, 2, 3)
            .delay_send(nodes / 2, 1, 5)
            .duplicate_send(0, 4);
        let out = supervised(&format!("soft-{nodes}"), nodes, plan, 0).unwrap();
        assert_eq!(out.efms, direct.efms, "{nodes} ranks");
        assert!(
            out.stats.recovery.is_empty(),
            "soft faults must not consume the restart budget ({nodes} ranks): {}",
            out.stats.recovery
        );
    }
}

#[test]
fn dropped_message_is_detected_and_survived_by_restart() {
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    for nodes in 2..=3usize {
        let plan = FaultPlan::new(90 + nodes as u64).drop_send(0, 2);
        let out = supervised(&format!("drop-{nodes}"), nodes, plan, 3).unwrap();
        assert_eq!(out.efms, direct.efms, "{nodes} ranks");
        assert_eq!(
            out.stats.recovery.restarts(),
            1,
            "a lost packet costs one restart ({nodes} ranks): {}",
            out.stats.recovery
        );
    }
}

#[test]
fn overwhelming_crash_plan_exhausts_budget_with_full_log() {
    let mut plan = FaultPlan::new(99);
    for it in 0..10 {
        plan = plan.crash(0, "iteration", it);
    }
    let err = supervised("overwhelm", 2, plan, 2).unwrap_err();
    match err {
        EfmError::RestartsExhausted { max_restarts: 2, log, .. } => {
            assert_eq!(log.events.len(), 3, "2 restarts + 1 give-up: {log}");
        }
        other => panic!("expected RestartsExhausted, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Concurrent-subset crash matrix (PR 5): crash one divide-and-conquer
// subset while its siblings run under the work-stealing schedule. The
// per-subset supervisor must retry only the crashed subset, and the final
// EFM set must be byte-identical to the fault-free run.
// ---------------------------------------------------------------------------

use efm_core::{enumerate_divide_conquer_scheduled_with_scalar, Backend, DncConfig, DncSchedule};

/// One divide-and-conquer run of the toy {r6r, r8r} split on the cluster
/// backend under the stealing schedule, with `plans` injected per subset.
fn dnc_run(
    tag: &str,
    plans: Vec<(usize, FaultPlan)>,
    max_retries: u32,
) -> Result<efm_core::EfmOutcome, EfmError> {
    let _ = tag;
    within_seconds(120, move || {
        let net = toy_network();
        let opts = EfmOptions::default();
        let cluster =
            ClusterConfig::new(2).with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let dnc = DncConfig {
            schedule: DncSchedule::Steal,
            workers: 2,
            max_retries,
            fault_plans: plans,
            ..Default::default()
        };
        enumerate_divide_conquer_scheduled_with_scalar::<efm_numeric::DynInt>(
            &net,
            &opts,
            &["r6r", "r8r"],
            &Backend::Cluster(cluster),
            &dnc,
        )
    })
}

fn canon(out: &efm_core::EfmOutcome) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = (0..out.efms.len()).map(|i| out.efms.support(i)).collect();
    v.sort();
    v
}

#[test]
fn crashed_subset_is_retried_alone_while_siblings_run() {
    let fault_free = dnc_run("dnc-clean", Vec::new(), 0).unwrap();
    assert!(fault_free.subsets.iter().all(|s| s.retries == 0));
    let victim = 3;
    let plan = FaultPlan::new(55).crash(0, "iteration", 0);
    let out = dnc_run("dnc-crash", vec![(victim, plan)], 2).unwrap();
    assert_eq!(canon(&out), canon(&fault_free), "EFM set diverged after subset crash");
    for s in &out.subsets {
        let expected = if s.id == victim { 1 } else { 0 };
        assert_eq!(s.retries, expected, "subset {} ({}) retries: {}", s.id, s.pattern, s.retries);
    }
    // The retry is visible in the crashed subset's own recovery log.
    let crashed = &out.subsets[victim];
    assert_eq!(crashed.stats.recovery.restarts(), 1, "{}", crashed.stats.recovery);
}

#[test]
fn crashed_subset_beyond_budget_fails_the_run_with_typed_error() {
    let mut plan = FaultPlan::new(56);
    for it in 0..10 {
        plan = plan.crash(0, "iteration", it);
    }
    let err = dnc_run("dnc-exhaust", vec![(1, plan)], 1).unwrap_err();
    assert!(
        matches!(err, EfmError::Cluster(_)),
        "expected the subset's cluster error to propagate, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Hard memory cap (PR 7): a byte cap that trips mid-run must surface as a
// typed `MemoryExceeded` — never a hang, a panic, or a wrong answer — and
// the aborted run must resume from its last checkpoint to the byte-identical
// EFM set. With streaming generation (the default) the transient batch is
// charged against the meter, so the cap can fire inside generation itself.
// ---------------------------------------------------------------------------

use efm_core::{enumerate_resumable_with_scalar, CheckpointConfig, EngineCheckpoint};

#[test]
fn hard_cap_mid_run_aborts_typed_and_resumes_byte_identical() {
    let net = toy_network();
    let opts = EfmOptions::default();
    let uncapped = enumerate_resumable_with_scalar::<efm_numeric::DynInt>(
        &net,
        &opts,
        &Backend::Cluster(ClusterConfig::new(3)),
        None,
        None,
    )
    .unwrap();
    let peak = uncapped.stats.peak_bytes;
    assert!(peak > 0, "the cluster meter must charge real bytes");
    // One byte below the measured high-water mark: the deterministic replay
    // of whichever charge set the peak — a generation batch, a survivor
    // stripe, or a merge step — now trips the cap mid-run.
    let path = temp_ckpt("hard-cap");
    let _ = std::fs::remove_file(&path);
    let err = within_seconds(120, {
        let path = path.clone();
        move || {
            let net = toy_network();
            let capped = ClusterConfig::new(3).with_memory_limit(peak - 1);
            enumerate_resumable_with_scalar::<efm_numeric::DynInt>(
                &net,
                &EfmOptions::default(),
                &Backend::Cluster(capped),
                None,
                Some(&CheckpointConfig::new(&path)),
            )
        }
    })
    .unwrap_err();
    match err {
        EfmError::Cluster(efm_cluster::ClusterError::MemoryExceeded {
            requested,
            in_use,
            limit,
            ..
        }) => {
            assert!(in_use + requested > limit, "the typed abort must carry the breaching charge");
            assert_eq!(limit, peak - 1);
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
    // The abort left the last completed iteration on disk; resuming on an
    // uncapped cluster recovers the exact set of the uninterrupted run.
    let ck = EngineCheckpoint::load(&path).expect("abort must leave an iteration snapshot");
    assert!(ck.iterations_completed() >= 1, "the cap tripped before the first checkpoint");
    let resumed = enumerate_resumable_with_scalar::<efm_numeric::DynInt>(
        &net,
        &opts,
        &Backend::Cluster(ClusterConfig::new(3)),
        Some(&ck),
        None,
    )
    .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed.efms, uncapped.efms, "resumed EFM set diverged from the uncapped run");
}

// ---------------------------------------------------------------------------
// Degraded-mode kill matrix (PR 8): terminate one rank outright — it is
// gone for the rest of the attempt, not merely crashed-and-restartable.
// With failover enabled the survivors must re-stripe the dead rank's work
// and finish in place: byte-identical EFM set, a `FailedOver` entry in the
// recovery log, and *zero* full restarts. Killing the coordinator (rank 0)
// is the one case that must fall back to the restart ladder.
// ---------------------------------------------------------------------------

use efm_core::{enumerate_supervised_with_scalar, enumerate_with_scalar, RecoveryAction};

/// One supervised run with failover enabled; the fault plan kills ranks
/// rather than crashing them.
fn supervised_failover(
    tag: &str,
    nodes: usize,
    plan: FaultPlan,
) -> Result<efm_core::EfmOutcome, EfmError> {
    let path = temp_ckpt(tag);
    let _ = std::fs::remove_file(&path);
    let p = path.clone();
    let out = within_seconds(120, move || {
        let net = toy_network();
        let opts = EfmOptions::default();
        let cluster = ClusterConfig::new(nodes)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(5))
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let sup = SuperviseConfig::new(&p).max_restarts(3).with_fault_plan(plan);
        enumerate_supervised(&net, &opts, &cluster, &sup)
    });
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn kill_sweep_over_every_phase_fails_over_without_restart() {
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    for (pi, phase) in PHASES.iter().enumerate() {
        for nodes in 2..=4usize {
            // Deterministic non-zero victim: rank 0 owns the fallback path
            // and is exercised separately below.
            let victim = 1 + (pi + nodes) % (nodes - 1);
            let iter = (pi % 3) as u64;
            let seed = 800 + (pi as u64) * 100 + nodes as u64;
            let plan = FaultPlan::new(seed).kill_rank(victim, phase, iter);
            let tag = format!("kill-{phase}-{nodes}");
            let out = supervised_failover(&tag, nodes, plan).unwrap_or_else(|e| {
                panic!("phase={phase} nodes={nodes} victim={victim} iter={iter}: {e}")
            });
            assert_eq!(
                out.efms, direct.efms,
                "EFM set diverged after killing rank {victim}/{nodes} at {phase}[{iter}]"
            );
            assert_eq!(
                out.stats.recovery.restarts(),
                0,
                "a rank kill must fail over, never full-restart ({phase}, {nodes} ranks): {}",
                out.stats.recovery
            );
            assert_eq!(out.stats.failovers, 1, "{phase}, {nodes} ranks: {}", out.stats.recovery);
            assert_eq!(out.stats.ranks_lost, 1, "{phase}, {nodes} ranks");
            assert!(
                out.stats.recovery.events.iter().any(|e| e.action == RecoveryAction::FailedOver),
                "no FailedOver event ({phase}, {nodes} ranks): {}",
                out.stats.recovery
            );
        }
    }
}

#[test]
fn killed_coordinator_falls_back_to_the_restart_ladder() {
    let direct = enumerate(&toy_network(), &EfmOptions::default()).unwrap();
    let plan = FaultPlan::new(901).kill_rank(0, "communicate", 1);
    let out = supervised_failover("kill-rank0", 3, plan).unwrap();
    assert_eq!(out.efms, direct.efms);
    assert_eq!(out.stats.failovers, 0, "rank 0 cannot be failed over: {}", out.stats.recovery);
    assert_eq!(out.stats.recovery.restarts(), 1, "{}", out.stats.recovery);
}

/// Trimmed S. cerevisiae Network I (the yeast-lite of `tests/yeast_lite.rs`:
/// hubs R15 and R70 removed).
fn network_i_lite() -> efm_metnet::MetabolicNetwork {
    let text: String = efm_metnet::yeast::NETWORK_I_TEXT
        .lines()
        .filter(|l| {
            let name = l.split(':').next().unwrap_or("").trim();
            name != "R15" && name != "R70"
        })
        .map(|l| format!("{l}\n"))
        .collect();
    efm_metnet::parse_network(&text).unwrap()
}

/// One yeast-lite cell of the kill matrix stays in the default lane; the
/// full phase sweep below is soak-only.
#[test]
fn yeast_lite_survives_a_mid_run_rank_kill() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let reference =
        enumerate_with_scalar::<efm_numeric::F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let path = temp_ckpt("yeast-kill");
    let _ = std::fs::remove_file(&path);
    let out = within_seconds(300, {
        let path = path.clone();
        move || {
            let net = network_i_lite();
            let cluster = ClusterConfig::new(3)
                .with_failover(true)
                .with_heartbeat(Duration::from_millis(10))
                .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(60)));
            let plan = FaultPlan::new(1001).kill_rank(2, "communicate", 4);
            let sup = SuperviseConfig::new(&path).max_restarts(3).with_fault_plan(plan);
            enumerate_supervised_with_scalar::<efm_numeric::F64Tol>(
                &net,
                &EfmOptions::default(),
                &cluster,
                &sup,
            )
        }
    })
    .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.efms, reference.efms, "yeast-lite EFM set diverged after rank kill");
    assert_eq!(out.stats.recovery.restarts(), 0, "{}", out.stats.recovery);
    assert_eq!(out.stats.failovers, 1, "{}", out.stats.recovery);
}

/// Acceptance matrix: killing any single non-zero rank at any engine phase
/// completes the yeast-lite run byte-identical with zero full restarts.
/// Soak lane (`--include-ignored`).
#[test]
#[ignore = "soak: 2 victims x 6 phases of supervised yeast-lite cluster runs; run via --include-ignored"]
fn yeast_lite_kill_matrix_fails_over_byte_identical() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let reference =
        enumerate_with_scalar::<efm_numeric::F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    for victim in 1..3usize {
        for (pi, phase) in PHASES.iter().enumerate() {
            let path = temp_ckpt(&format!("yeast-kill-{victim}-{phase}"));
            let _ = std::fs::remove_file(&path);
            let out = within_seconds(300, {
                let path = path.clone();
                let seed = 1100 + (victim * PHASES.len() + pi) as u64;
                move || {
                    let net = network_i_lite();
                    let cluster = ClusterConfig::new(3)
                        .with_failover(true)
                        .with_heartbeat(Duration::from_millis(10))
                        .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(60)));
                    let plan = FaultPlan::new(seed).kill_rank(victim, phase, 2);
                    let sup = SuperviseConfig::new(&path).max_restarts(3).with_fault_plan(plan);
                    enumerate_supervised_with_scalar::<efm_numeric::F64Tol>(
                        &net,
                        &EfmOptions::default(),
                        &cluster,
                        &sup,
                    )
                }
            })
            .unwrap_or_else(|e| panic!("victim={victim} phase={phase}: {e}"));
            let _ = std::fs::remove_file(&path);
            assert_eq!(out.efms, reference.efms, "victim={victim} phase={phase}");
            assert_eq!(
                out.stats.recovery.restarts(),
                0,
                "victim={victim} phase={phase}: {}",
                out.stats.recovery
            );
            assert_eq!(out.stats.failovers, 1, "victim={victim} phase={phase}");
        }
    }
}

/// Full matrix: every subset × every instrumented collective phase; the
/// crashed subset retries exactly once, siblings are untouched, and the
/// EFM set never changes. Soak lane (`--include-ignored`).
#[test]
#[ignore = "soak: 4 subsets x 6 phases of supervised cluster runs; run via --include-ignored"]
fn concurrent_subset_crash_matrix_recovers_exactly() {
    let fault_free = dnc_run("dnc-matrix-clean", Vec::new(), 0).unwrap();
    let reference = canon(&fault_free);
    for victim in 0..4usize {
        for (pi, phase) in PHASES.iter().enumerate() {
            let seed = 500 + (victim * PHASES.len() + pi) as u64;
            let plan = FaultPlan::new(seed).crash(0, phase, 0);
            let tag = format!("dnc-matrix-{victim}-{phase}");
            let out = dnc_run(&tag, vec![(victim, plan)], 2)
                .unwrap_or_else(|e| panic!("victim={victim} phase={phase}: {e}"));
            assert_eq!(canon(&out), reference, "victim={victim} phase={phase}");
            for s in &out.subsets {
                let expected = if s.id == victim { 1 } else { 0 };
                assert_eq!(s.retries, expected, "victim={victim} phase={phase} subset={}", s.id);
            }
        }
    }
}
