//! Cross-implementation consistency: every algorithm variant, backend,
//! scalar, and elementarity test must produce the identical EFM set, and it
//! must match the independent brute-force oracle.

use efm_core::{
    brute_force_efms, enumerate, enumerate_divide_conquer, enumerate_with, enumerate_with_scalar,
    Backend, CandidateTest, EfmOptions, RowOrdering,
};
use efm_metnet::generator::{random_network, RandomNetworkParams};
use efm_metnet::MetabolicNetwork;
use proptest::prelude::*;

fn small_params() -> RandomNetworkParams {
    RandomNetworkParams {
        metabolites: 5,
        reactions: 9,
        reversible_prob: 0.35,
        mean_degree: 2.5,
        exchange_prob: 0.4,
        max_coeff: 2,
    }
}

fn opts() -> EfmOptions {
    EfmOptions { max_modes: Some(20_000), ..Default::default() }
}

fn oracle_net(seed: u64) -> MetabolicNetwork {
    random_network(&small_params(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn serial_matches_oracle(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let out = enumerate(&net, &opts()).unwrap();
        let oracle = brute_force_efms(&net, 12);
        prop_assert_eq!(out.efms.as_support_sets(), oracle.as_support_sets());
    }

    #[test]
    fn backends_agree(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let o = opts();
        let serial = enumerate_with(&net, &o, &Backend::Serial).unwrap();
        let rayon = enumerate_with(&net, &o, &Backend::Rayon).unwrap();
        let cluster =
            enumerate_with(&net, &o, &Backend::Cluster(efm_cluster::ClusterConfig::new(3)))
                .unwrap();
        prop_assert_eq!(serial.efms.as_support_sets(), rayon.efms.as_support_sets());
        prop_assert_eq!(serial.efms.as_support_sets(), cluster.efms.as_support_sets());
    }

    #[test]
    fn adjacency_matches_rank(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let rank = enumerate(&net, &opts()).unwrap();
        let adj = enumerate(
            &net,
            &EfmOptions { test: CandidateTest::Adjacency, ..opts() },
        )
        .unwrap();
        prop_assert_eq!(rank.efms.as_support_sets(), adj.efms.as_support_sets());
    }

    #[test]
    fn exact_rank_matches_float_rank(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let float = enumerate(&net, &opts()).unwrap();
        let exact = enumerate(
            &net,
            &EfmOptions { exact_rank_test: true, ..opts() },
        )
        .unwrap();
        prop_assert_eq!(float.efms.as_support_sets(), exact.efms.as_support_sets());
    }

    #[test]
    fn orderings_agree(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let base = enumerate(&net, &opts()).unwrap();
        for ordering in [RowOrdering::FewestNonzeros, RowOrdering::AsIs, RowOrdering::Random(seed)] {
            let out = enumerate(&net, &EfmOptions { ordering, ..opts() }).unwrap();
            prop_assert_eq!(base.efms.as_support_sets(), out.efms.as_support_sets());
        }
    }

    #[test]
    fn float_scalar_agrees(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let exact = enumerate(&net, &opts()).unwrap();
        let float = enumerate_with_scalar::<efm_numeric::F64Tol>(&net, &opts(), &Backend::Serial)
            .unwrap();
        prop_assert_eq!(exact.efms.as_support_sets(), float.efms.as_support_sets());
    }

    #[test]
    fn compression_levels_preserve_the_efm_set(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let full = enumerate(&net, &opts()).unwrap();
        for compression in [
            efm_metnet::CompressionOptions::none(),
            efm_metnet::CompressionOptions::kernel_only(),
        ] {
            let out = enumerate(&net, &EfmOptions { compression, ..opts() }).unwrap();
            prop_assert_eq!(full.efms.as_support_sets(), out.efms.as_support_sets());
        }
    }

    #[test]
    fn pattern_trees_agree_with_linear_scans(seed in 0u64..5000) {
        // The tree-backed filters (default) and the classical linear-scan
        // filters must enumerate identical EFM sets on every backend,
        // including the simulated cluster's merge path.
        let net = oracle_net(seed);
        let off = EfmOptions { pattern_trees: false, ..opts() };
        for backend in [
            Backend::Serial,
            Backend::Rayon,
            Backend::Cluster(efm_cluster::ClusterConfig::new(3)),
        ] {
            let with_trees = enumerate_with(&net, &opts(), &backend).unwrap();
            let without = enumerate_with(&net, &off, &backend).unwrap();
            prop_assert_eq!(
                with_trees.efms.as_support_sets(),
                without.efms.as_support_sets()
            );
        }
    }

    #[test]
    fn divide_conquer_agrees_on_any_reversible_partition(seed in 0u64..5000) {
        let net = oracle_net(seed);
        let base = enumerate(&net, &opts()).unwrap();
        // Partition on up to two reversible reactions that survive
        // compression as distinct reduced reactions.
        let mut names: Vec<String> = Vec::new();
        let mut seen_reduced = Vec::new();
        for (j, rxn) in net.reactions.iter().enumerate() {
            if names.len() == 2 {
                break;
            }
            if rxn.reversible {
                if let Some(r) = base.reduced.reduced_index_of(j) {
                    if base.reduced.reversible[r] && !seen_reduced.contains(&r) {
                        seen_reduced.push(r);
                        names.push(rxn.name.clone());
                    }
                }
            }
        }
        if names.is_empty() {
            return Ok(()); // no usable partition reaction in this draw
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let dc = match enumerate_divide_conquer(&net, &opts(), &refs, &Backend::Serial) {
            Ok(dc) => dc,
            // Structurally unusable partition (e.g. parallel reversible
            // reactions whose columns are dependent): the paper notes that
            // partition reactions "can not be randomly selected".
            Err(efm_core::EfmError::PartitionNotPivotal(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        prop_assert_eq!(base.efms.as_support_sets(), dc.efms.as_support_sets());
        // Subsets must be disjoint: counts add up.
        let total: usize = dc.subsets.iter().map(|s| s.efm_count).sum();
        prop_assert_eq!(total, dc.efms.len());
    }
}

#[test]
fn divide_conquer_three_way_on_toy() {
    // qsub = 3 exercises the 8-subset path end to end. Partition reactions
    // must be linearly independent columns (they all need to be pivots), so
    // use branch reactions of a fan-out network.
    // Cross edges keep the branch reactions from being fully coupled to
    // their exports (which would merge them into parallel columns).
    let net = efm_metnet::parse_network(
        "up   : Sext <=> A\n\
         r1r  : A <=> B\n\
         r2r  : A <=> C\n\
         r3r  : A <=> D\n\
         bc   : B => C\n\
         cd   : C => D\n\
         exb  : B <=> Pext\n\
         exc  : C <=> Pext\n\
         exd  : D <=> Pext\n",
    )
    .unwrap();
    let base = enumerate(&net, &EfmOptions::default()).unwrap();
    let oracle = brute_force_efms(&net, 12);
    assert_eq!(base.efms.as_support_sets(), oracle.as_support_sets());
    let dc = enumerate_divide_conquer(
        &net,
        &EfmOptions::default(),
        &["r1r", "r2r", "r3r"],
        &Backend::Serial,
    )
    .unwrap();
    assert_eq!(dc.subsets.len(), 8);
    assert_eq!(base.efms.as_support_sets(), dc.efms.as_support_sets());
}
