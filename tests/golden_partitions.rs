//! Golden-snapshot digests of divide-and-conquer partition runs.
//!
//! Each case pins the canonical EFM set of a partitioned yeast-lite run to
//! a `(count, fnv1a)` digest: the mode count plus an FNV-1a hash over the
//! sorted support sets. Any change to compression, ordering, the engine,
//! or the subset scheduler that alters the enumerated set — even by one
//! support index — flips the digest.
//!
//! The partitions are the paper's, adapted by [`pick_partition`]: lite
//! trimming fixes the direction of some of the paper's partition reactions
//! (R89r, R90r), so the harness substitutes the nearest eligible
//! reactions and the test pins *which* substitution was made along with
//! the digest. To regenerate after an intentional semantic change, run
//! with `--nocapture` and copy the printed `(count, digest)` pair.

use efm_bench::{network_i, network_ii, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_scheduled_with_scalar, Backend, DncConfig, DncSchedule, EfmOutcome,
};
use efm_numeric::F64Tol;

/// FNV-1a over the canonical (sorted) support sets, length-prefixed so
/// support boundaries cannot alias.
fn digest(out: &EfmOutcome) -> (u64, u64) {
    let mut sups: Vec<Vec<usize>> = (0..out.efms.len()).map(|i| out.efms.support(i)).collect();
    sups.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for sup in &sups {
        mix(sup.len() as u64);
        for &j in sup {
            mix(j as u64);
        }
    }
    (sups.len() as u64, h)
}

fn run_case(
    net: &efm_metnet::MetabolicNetwork,
    preferred: &[&str],
    qsub: usize,
    schedule: DncSchedule,
) -> (Vec<String>, (u64, u64)) {
    let (red, _) = efm_metnet::compress(net);
    let partition = pick_partition(net, &red, preferred, qsub);
    assert_eq!(partition.len(), qsub, "network must retain a {qsub}-way split");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let dnc = DncConfig { schedule, workers: 2, ..Default::default() };
    let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        net,
        &efm_core::EfmOptions::default(),
        &names,
        &Backend::Serial,
        &dnc,
    )
    .unwrap();
    (partition, digest(&out))
}

/// Network I, the paper's Table III partition {R89r, R74r} (lite
/// substitutes for R89r, whose direction the trimming fixes).
#[test]
fn network_i_lite_two_way_digest_is_stable() {
    let net = network_i(Scale::Lite);
    for schedule in [DncSchedule::Serial, DncSchedule::Steal] {
        let (partition, d) = run_case(&net, &["R89r", "R74r"], 2, schedule);
        println!("network_i lite {{{}}} {schedule}: {d:?}", partition.join(","));
        assert_eq!(partition, vec!["R74r", "R7r"], "partition substitution changed");
        assert_eq!(d, (5194, 1_506_135_395_104_561_618), "EFM-set digest changed ({schedule})");
    }
}

/// Network II, the paper's Table IV partition {R54r, R90r, R60r, R22r}
/// (lite substitutes for R90r). Heavy: ~113k EFMs; soak lane only.
#[test]
#[ignore = "heavy: ~2 min release / far more in debug; run via --include-ignored"]
fn network_ii_lite_four_way_digest_is_stable() {
    let net = network_ii(Scale::Lite);
    let (partition, d) = run_case(&net, &["R54r", "R90r", "R60r", "R22r"], 4, DncSchedule::Steal);
    println!("network_ii lite {{{}}}: {d:?}", partition.join(","));
    assert_eq!(partition, vec!["R54r", "R60r", "R22r", "R7r"], "partition substitution changed");
    assert_eq!(d, (113_105, 2_715_888_270_470_620_915), "EFM-set digest changed");
}
