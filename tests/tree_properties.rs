//! Property tests for the bit-pattern-tree subsystem and the sorted-run
//! merge: both must agree *exactly* with their naive counterparts (linear
//! subset scans, whole-set sort+dedup) on arbitrary inputs, and the
//! tree-backed enumeration pipeline must reproduce the classical
//! linear-scan pipeline's EFM set byte for byte.

use efm_bitset::{Pattern1, PatternTree};
use efm_core::{enumerate_with, Backend, CandidateSet, CandidateTest, EfmOptions};
use efm_metnet::generator::{random_network, RandomNetworkParams};
use proptest::prelude::*;

/// Deterministic pseudo-random pattern from a seed (SplitMix64 step).
fn pattern_from(mut x: u64, nbits: usize, density: u64) -> Pattern1 {
    let mut p = Pattern1::empty();
    for i in 0..nbits {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z % 100 < density {
            p.set(i);
        }
    }
    p
}

fn pattern_set(seed: u64, n: usize, nbits: usize, density: u64) -> Vec<Pattern1> {
    (0..n)
        .map(|i| pattern_from(seed.wrapping_add(i as u64 * 0x517C_C1B7), nbits, density))
        .collect()
}

fn naive_contains_subset_of(set: &[Pattern1], q: &Pattern1) -> bool {
    set.iter().any(|p| p.is_subset_of(q))
}

fn naive_contains_proper_subset_of(set: &[Pattern1], q: &Pattern1) -> bool {
    set.iter().any(|p| p != q && p.is_subset_of(q))
}

fn naive_contains_superset_of(set: &[Pattern1], q: &Pattern1) -> bool {
    set.iter().any(|p| q.is_subset_of(p))
}

/// Builds a candidate set with pseudo-random (pattern, val_sup) keys;
/// duplicates are likely at high density.
fn candidate_set(seed: u64, n: usize, nbits: usize, density: u64) -> CandidateSet<Pattern1> {
    let pats = pattern_set(seed, n, nbits, density);
    let sups = pattern_set(seed ^ 0xDEAD_BEEF, n, nbits, density);
    CandidateSet {
        patterns: pats,
        val_sups: sups,
        parents: (0..n as u32).map(|i| (i, i)).collect(),
        numeric_pass: n as u64,
        blocks: 0,
    }
}

fn keys(set: &CandidateSet<Pattern1>) -> Vec<(Pattern1, Pattern1)> {
    set.patterns.iter().copied().zip(set.val_sups.iter().copied()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree subset/superset/membership queries agree with linear scans on
    /// arbitrary pattern sets and query patterns.
    #[test]
    fn tree_queries_match_naive_scan(
        seed in 0u64..10_000,
        n in 0usize..120,
        nbits in 1usize..64,
        density in 5u64..95,
    ) {
        let set = pattern_set(seed, n, nbits, density);
        let tree = PatternTree::from_patterns(set.clone());
        prop_assert_eq!(tree.len(), set.len());
        // Queries drawn from the same distribution plus the set's own
        // members (the exact-hit edge cases).
        let mut queries = pattern_set(seed ^ 0xABCD, 40, nbits, density);
        queries.extend(set.iter().take(20).copied());
        queries.push(Pattern1::empty());
        for q in &queries {
            prop_assert_eq!(
                tree.contains_subset_of(q),
                naive_contains_subset_of(&set, q),
                "subset query disagreed"
            );
            prop_assert_eq!(
                tree.contains_proper_subset_of(q),
                naive_contains_proper_subset_of(&set, q),
                "proper-subset query disagreed"
            );
            prop_assert_eq!(
                tree.contains_superset_of(q),
                naive_contains_superset_of(&set, q),
                "superset query disagreed"
            );
            prop_assert_eq!(tree.contains(q), set.contains(q), "membership disagreed");
        }
    }

    /// Incremental insertion reaches the same query answers as bulk build.
    #[test]
    fn tree_insert_matches_bulk_build(
        seed in 0u64..10_000,
        n in 0usize..80,
        nbits in 1usize..64,
    ) {
        let set = pattern_set(seed, n, nbits, 40);
        let bulk = PatternTree::from_patterns(set.clone());
        let mut incr = PatternTree::default();
        for p in &set {
            incr.insert(*p);
        }
        prop_assert_eq!(incr.len(), bulk.len());
        let queries = pattern_set(seed ^ 0x77, 30, nbits, 40);
        for q in &queries {
            prop_assert_eq!(incr.contains_subset_of(q), bulk.contains_subset_of(q));
            prop_assert_eq!(incr.contains(q), bulk.contains(q));
        }
    }

    /// Merging two independently sorted runs gives exactly the candidates
    /// (and order) of appending then whole-set sorting, duplicates removed.
    #[test]
    fn merge_sorted_matches_sort_dedup(
        seed in 0u64..10_000,
        na in 0usize..80,
        nb in 0usize..80,
        nbits in 1usize..32,
        density in 10u64..90,
    ) {
        let mut a = candidate_set(seed, na, nbits, density);
        let mut b = candidate_set(seed ^ 0x5150, nb, nbits, density);
        // Force cross-run duplicates occasionally: share a tail.
        if na > 4 && nb > 4 {
            for i in 0..3 {
                b.patterns[i] = a.patterns[i];
                b.val_sups[i] = a.val_sups[i];
            }
        }
        a.sort_dedup();
        b.sort_dedup();

        let mut reference = CandidateSet::default();
        reference.append(&mut a.clone());
        reference.append(&mut b.clone());
        reference.sort_dedup();

        let merged = CandidateSet::merge_sorted(a, b);
        prop_assert_eq!(keys(&merged), keys(&reference));
    }

    /// End-to-end: the tree-backed pipeline and the classical linear-scan
    /// pipeline enumerate identical EFM sets in identical order, for both
    /// elementarity tests and on both shared-memory backends.
    #[test]
    fn pattern_trees_on_off_agree(seed in 0u64..3000) {
        let params = RandomNetworkParams {
            metabolites: 5,
            reactions: 9,
            reversible_prob: 0.35,
            mean_degree: 2.5,
            exchange_prob: 0.4,
            max_coeff: 2,
        };
        let net = random_network(&params, seed);
        for test in [CandidateTest::Rank, CandidateTest::Adjacency] {
            for backend in [Backend::Serial, Backend::Rayon] {
                let on = EfmOptions {
                    test,
                    pattern_trees: true,
                    max_modes: Some(20_000),
                    ..Default::default()
                };
                let off = EfmOptions { pattern_trees: false, ..on.clone() };
                let with_trees = enumerate_with(&net, &on, &backend).unwrap();
                let without = enumerate_with(&net, &off, &backend).unwrap();
                prop_assert_eq!(
                    with_trees.efms.as_support_sets(),
                    without.efms.as_support_sets(),
                    "tree/naive divergence: test={:?} seed={}", test, seed
                );
            }
        }
    }
}
