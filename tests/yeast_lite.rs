//! End-to-end checks on a trimmed S. cerevisiae Network I ("lite": the two
//! hub reactions R15 and R70 removed — a few thousand EFMs): exact and
//! floating-point arithmetic agree, divide-and-conquer partitions are
//! disjoint and complete, and the candidate-count reduction the paper
//! reports for the split shows up.

use efm_core::{enumerate_divide_conquer_with_scalar, enumerate_with_scalar, Backend, EfmOptions};
use efm_metnet::{parse_network, MetabolicNetwork};
use efm_numeric::{DynInt, F64Tol};

fn network_i_lite() -> MetabolicNetwork {
    let text: String = efm_metnet::yeast::NETWORK_I_TEXT
        .lines()
        .filter(|l| {
            let name = l.split(':').next().unwrap_or("").trim();
            name != "R15" && name != "R70"
        })
        .map(|l| format!("{l}\n"))
        .collect();
    parse_network(&text).unwrap()
}

#[test]
fn exact_and_float_agree_on_yeast_lite() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let float = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let exact = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
    assert_eq!(exact.efms.len(), float.efms.len());
    assert_eq!(exact.efms, float.efms, "exact and f64 EFM sets must coincide");
    assert_eq!(
        exact.stats.candidates_generated, float.stats.candidates_generated,
        "identical pipelines must generate identical candidate counts"
    );
}

#[test]
fn divide_and_conquer_reduces_candidates_on_yeast_lite() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let unsplit = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    // The lite trimming fixes the direction of some of the paper's
    // partition reactions; pick two that are still reversible.
    let mut names: Vec<String> = Vec::new();
    let mut used = Vec::new();
    for rxn in &net.reactions {
        if names.len() == 2 {
            break;
        }
        if let Some(r) =
            net.reaction_index(&rxn.name).and_then(|o| unsplit.reduced.reduced_index_of(o))
        {
            if unsplit.reduced.reversible[r] && !used.contains(&r) {
                used.push(r);
                names.push(rxn.name.clone());
            }
        }
    }
    assert_eq!(names.len(), 2, "lite network must retain two reversible reactions");
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let split =
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &opts, &refs, &Backend::Serial)
            .unwrap();
    // Same EFM set.
    assert_eq!(unsplit.efms, split.efms);
    // Disjoint subsets covering the union.
    let total: usize = split.subsets.iter().map(|s| s.efm_count).sum();
    assert_eq!(total, split.efms.len());
    assert_eq!(split.subsets.len(), 4);
    // The paper's Table II → III effect: fewer cumulative candidates.
    assert!(
        split.stats.candidates_generated < unsplit.stats.candidates_generated,
        "split candidates {} must be below unsplit {}",
        split.stats.candidates_generated,
        unsplit.stats.candidates_generated
    );
    // And a smaller peak mode matrix (the memory claim).
    let split_peak = split.subsets.iter().map(|s| s.stats.peak_modes).max().unwrap();
    assert!(
        split_peak <= unsplit.stats.peak_modes,
        "worst subset peak {} must not exceed unsplit peak {}",
        split_peak,
        unsplit.stats.peak_modes
    );
}

#[test]
fn cluster_backend_agrees_on_yeast_lite() {
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let serial = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let cluster = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(4)),
    )
    .unwrap();
    assert_eq!(serial.efms, cluster.efms);
    assert_eq!(serial.stats.candidates_generated, cluster.stats.candidates_generated);
}
