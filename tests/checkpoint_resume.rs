//! Checkpoint/resume fidelity: a run interrupted at an arbitrary iteration
//! boundary and resumed from its last snapshot must reproduce the
//! uninterrupted enumeration byte-for-byte (identical `EfmSet` bit
//! matrices), across backends.

use efm_core::{
    enumerate_resumable_with_scalar, enumerate_with_scalar, Backend, CheckpointConfig, EfmOptions,
    EngineCheckpoint,
};
use efm_metnet::generator::{random_network, RandomNetworkParams};
use efm_metnet::MetabolicNetwork;
use efm_numeric::DynInt;
use proptest::prelude::*;
use std::path::PathBuf;

fn small_params() -> RandomNetworkParams {
    RandomNetworkParams {
        metabolites: 5,
        reactions: 9,
        reversible_prob: 0.35,
        mean_degree: 2.5,
        exchange_prob: 0.4,
        max_coeff: 2,
    }
}

fn net_for(seed: u64) -> MetabolicNetwork {
    random_network(&small_params(), seed)
}

/// Runs capped so the enumeration aborts partway (mode limit), leaving a
/// snapshot at the last completed iteration; returns the snapshot, if the
/// run got far enough to write one.
fn interrupted_checkpoint(
    net: &MetabolicNetwork,
    cap: usize,
    path: &PathBuf,
) -> Option<EngineCheckpoint> {
    let _ = std::fs::remove_file(path);
    let capped = EfmOptions { max_modes: Some(cap), ..Default::default() };
    let cfg = CheckpointConfig::new(path);
    // Err(ModeLimitExceeded) is the expected interruption; Ok means the
    // network fit under the cap and the snapshot is simply the final state.
    let _ =
        enumerate_resumable_with_scalar::<DynInt>(net, &capped, &Backend::Serial, None, Some(&cfg));
    EngineCheckpoint::load(path).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_reproduces_uninterrupted_set(seed in 0u64..5000, cap in 2usize..40) {
        let net = net_for(seed);
        let opts = EfmOptions::default();
        let full = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
        let path = std::env::temp_dir().join(format!("efm_resume_{seed}_{cap}.efck"));
        let resume = interrupted_checkpoint(&net, cap, &path);
        let resumed = enumerate_resumable_with_scalar::<DynInt>(
            &net,
            &opts,
            &Backend::Serial,
            resume.as_ref(),
            None,
        )
        .unwrap();
        let _ = std::fs::remove_file(&path);
        // Byte-for-byte: EfmSet equality compares the packed bit matrices.
        prop_assert_eq!(resumed.efms, full.efms);
    }

    #[test]
    fn serial_checkpoint_resumes_on_cluster(seed in 0u64..2000) {
        let net = net_for(seed);
        let opts = EfmOptions::default();
        let full = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
        let path = std::env::temp_dir().join(format!("efm_xresume_{seed}.efck"));
        let resume = interrupted_checkpoint(&net, 6, &path);
        let cluster = Backend::Cluster(efm_cluster::ClusterConfig::new(3));
        let resumed = enumerate_resumable_with_scalar::<DynInt>(
            &net,
            &opts,
            &cluster,
            resume.as_ref(),
            None,
        )
        .unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(resumed.efms, full.efms);
    }

    #[test]
    fn checkpoint_file_roundtrip_is_lossless(seed in 0u64..2000) {
        let net = net_for(seed);
        let path = std::env::temp_dir().join(format!("efm_rt_{seed}.efck"));
        if let Some(ck) = interrupted_checkpoint(&net, 8, &path) {
            let reloaded = EngineCheckpoint::load(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            prop_assert_eq!(ck, reloaded);
        } else {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Regression: a resumed cluster run aggregates `peak_bytes` from the
/// segment's *fresh* memory meters, which know nothing about the
/// pre-checkpoint high water — the reported peaks must be maxed with the
/// checkpoint's, never silently lowered.
#[test]
fn resumed_cluster_run_carries_checkpoint_peaks() {
    let mut picked = None;
    for seed in 0..50u64 {
        let net = net_for(seed);
        let path = std::env::temp_dir().join(format!("efm_peak_carry_{seed}.efck"));
        let ck = interrupted_checkpoint(&net, 6, &path);
        let _ = std::fs::remove_file(&path);
        if let Some(ck) = ck {
            picked = Some((net, ck));
            break;
        }
    }
    let (net, mut ck) = picked.expect("some seed yields an interrupted checkpoint");
    // Simulate a pre-crash segment that peaked far above anything the short
    // resumed tail will reach.
    ck.stats.peak_bytes = ck.stats.peak_bytes.max(1 << 40);
    ck.stats.peak_transient_bytes = ck.stats.peak_transient_bytes.max(1 << 39);
    ck.stats.arena_peak_bytes = ck.stats.arena_peak_bytes.max(1 << 38);
    let opts = EfmOptions::default();
    let cluster = Backend::Cluster(efm_cluster::ClusterConfig::new(3));
    let resumed =
        enumerate_resumable_with_scalar::<DynInt>(&net, &opts, &cluster, Some(&ck), None).unwrap();
    assert!(
        resumed.stats.peak_bytes >= 1 << 40,
        "resumed peak_bytes {} lost the checkpoint high water",
        resumed.stats.peak_bytes
    );
    assert!(resumed.stats.peak_transient_bytes >= 1 << 39);
    assert!(resumed.stats.arena_peak_bytes >= 1 << 38);
}

// ---------------------------------------------------------------------------
// Divide-and-conquer progress resume (EFCK v4): a resumed run skips the
// subsets the checkpoint records as complete and re-enumerates the rest.
// ---------------------------------------------------------------------------

#[test]
fn dnc_resume_skips_completed_subsets() {
    use efm_core::{
        enumerate_divide_conquer_scheduled_with_scalar, DncCheckpoint, DncConfig, DncSubsetResult,
    };
    let net = efm_metnet::examples::toy_network();
    let opts = EfmOptions::default();
    let path = std::env::temp_dir().join(format!("efm_dnc_resume_{}.efck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Full run, recording progress after every subset.
    let checkpointed =
        DncConfig { checkpoint: Some(CheckpointConfig::new(&path)), ..Default::default() };
    let full = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        &net,
        &opts,
        &["r6r", "r8r"],
        &Backend::Serial,
        &checkpointed,
    )
    .unwrap();
    let complete = DncCheckpoint::load(&path).unwrap();
    assert_eq!(complete.done.len(), 4, "every subset must be recorded");

    // Doctor a *partial* record whose completed subset carries a sentinel
    // (no supports): if resume truly skips it, the sentinel — not the
    // re-enumerated modes — lands in the output.
    let victim = complete.done[1].id;
    let mut partial = DncCheckpoint::new(&complete.scalar_tag, complete.fingerprint, complete.qsub);
    partial.record(DncSubsetResult {
        id: victim,
        skipped_empty: false,
        supports: Vec::new(),
        stats: Default::default(),
    });
    partial.save(&path).unwrap();
    let resumed = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        &net,
        &opts,
        &["r6r", "r8r"],
        &Backend::Serial,
        &DncConfig { resume: true, ..checkpointed.clone() },
    )
    .unwrap();
    assert_eq!(
        resumed.subsets[victim].efm_count, 0,
        "resume must take subset {victim} from the checkpoint, not re-run it"
    );
    assert_eq!(
        resumed.efms.len(),
        full.efms.len() - full.subsets[victim].efm_count,
        "only the skipped subset's modes may be missing"
    );

    // Resuming from the *complete* record reproduces the full set exactly
    // without re-running anything.
    complete.save(&path).unwrap();
    let replayed = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        &net,
        &opts,
        &["r6r", "r8r"],
        &Backend::Serial,
        &DncConfig { resume: true, ..checkpointed },
    )
    .unwrap();
    assert_eq!(replayed.efms, full.efms);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dnc_resume_rejects_mismatched_partition() {
    use efm_core::{enumerate_divide_conquer_scheduled_with_scalar, DncConfig};
    let net = efm_metnet::examples::toy_network();
    let opts = EfmOptions::default();
    let path = std::env::temp_dir().join(format!("efm_dnc_mismatch_{}.efck", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let checkpointed =
        DncConfig { checkpoint: Some(CheckpointConfig::new(&path)), ..Default::default() };
    enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        &net,
        &opts,
        &["r6r", "r8r"],
        &Backend::Serial,
        &checkpointed,
    )
    .unwrap();
    // Same file, different partition: the fingerprint must reject it.
    let err = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        &net,
        &opts,
        &["r8r"],
        &Backend::Serial,
        &DncConfig { resume: true, ..checkpointed },
    )
    .unwrap_err();
    assert!(
        matches!(err, efm_core::EfmError::Checkpoint(_)),
        "expected a typed checkpoint rejection, got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}
