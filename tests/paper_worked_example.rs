//! Golden tests against every number the paper prints for its worked
//! example (Fig. 1 network, Fig. 2 algorithm trace, Eq. (7) EFM matrix,
//! §II.E / §III.A divide-and-conquer subsets).

use efm_core::{
    build_problem, enumerate, enumerate_divide_conquer, recover_flux, serial_supports_traced,
    verify_flux, Backend, EfmOptions,
};
use efm_metnet::{compress, examples::toy_network};
use efm_numeric::{DynInt, Rational};

/// The eight EFMs of Eq. (7), as (reaction name, flux value) listings.
/// Values are the paper's columns up to positive scale.
fn expected_efms() -> Vec<Vec<(&'static str, i64)>> {
    vec![
        vec![("r1", 1), ("r2", 1), ("r3", 1), ("r4", 1), ("r9", 1)],
        vec![("r1", 1), ("r4", 2), ("r5", 1), ("r7", 1)],
        vec![("r1", 1), ("r3", 1), ("r4", 1), ("r5", 1), ("r6r", 1), ("r9", 1)],
        vec![("r1", 1), ("r2", 1), ("r4", 2), ("r6r", -1), ("r7", 1)],
        vec![("r1", 1), ("r5", 1), ("r8r", 1)],
        vec![("r1", 1), ("r2", 1), ("r6r", -1), ("r8r", 1)],
        vec![("r4", 2), ("r7", 1), ("r8r", -1)],
        vec![("r3", 1), ("r4", 1), ("r6r", 1), ("r8r", -1), ("r9", 1)],
    ]
}

#[test]
fn eq7_supports_and_coefficients() {
    let net = toy_network();
    let out = enumerate(&net, &EfmOptions::default()).unwrap();
    assert_eq!(out.efms.len(), 8, "Eq. (7) lists eight EFMs");

    let rev = net.reversibilities();
    let idx = |n: &str| net.reaction_index(n).unwrap();

    let got = out.efms.as_support_sets();
    for efm in expected_efms() {
        let mut sup: Vec<usize> = efm.iter().map(|(n, _)| idx(n)).collect();
        sup.sort_unstable();
        assert!(got.contains(&sup), "missing EFM with support {efm:?}");

        // Coefficients match up to positive scale.
        let flux = recover_flux(&out.reduced, &rev, &sup).unwrap();
        verify_flux(&net, &flux).unwrap();
        // Find the scale from the first entry and check proportionality.
        let (n0, v0) = efm[0];
        let scale = flux[idx(n0)].div(&Rational::from_i64(v0));
        assert!(scale.signum() > 0, "canonical sign for {efm:?}");
        for (n, v) in &efm {
            let expect = scale.mul(&Rational::from_i64(*v));
            assert_eq!(flux[idx(n)], expect, "coefficient of {n} in {efm:?}");
        }
    }
}

#[test]
fn fig2_iteration_trace() {
    // With the paper's identity block {r2, r4, r5, r7} the algorithm's
    // per-iteration mode counts follow Fig. 2: 4 → 4 → 4 → 5 → 8.
    let net = toy_network();
    let (red, _) = compress(&net);
    let force: Vec<usize> =
        ["r2", "r4", "r5", "r7"].iter().map(|n| net.reaction_index(n).unwrap()).collect();
    let opts = EfmOptions { force_free: Some(force), ..Default::default() };
    let problem = build_problem::<DynInt>(&red, &opts).unwrap();
    assert_eq!(problem.free_count, 4);
    assert_eq!(problem.kernel.cols(), 4, "initial nullspace has 4 columns");

    let mut trace = Vec::new();
    let (sups, stats) =
        serial_supports_traced::<efm_bitset::Pattern1, DynInt>(&problem, &opts, |it| {
            trace.push((it.reaction.clone(), it.reversible, it.pairs, it.accepted, it.modes_after));
        })
        .unwrap();
    assert_eq!(sups.len(), 8);
    assert_eq!(trace.len(), 4, "four R(2) rows are processed");

    // The paper's order: r1, r3 (irreversible) then r6r, r8r (reversible).
    let names: Vec<&str> = trace.iter().map(|(n, _, _, _, _)| n.as_str()).collect();
    assert_eq!(names, vec!["r1", "r3*r9", "r6r", "r8r"]);
    // r1: all entries nonnegative → no candidates (paper: "we skip").
    assert_eq!(trace[0].2, 0, "r1 generates no pairs");
    assert_eq!(trace[0].4, 4, "4 modes after r1");
    // r3: one pos × one neg → one candidate, accepted; neg removed.
    assert_eq!(trace[1].2, 1);
    assert_eq!(trace[1].3, 1);
    assert_eq!(trace[1].4, 4, "4 modes after r3 (paper's K^(3))");
    // r6r: reversible; one candidate accepted, negative column kept.
    assert!(trace[2].1);
    assert_eq!(trace[2].2, 1);
    assert_eq!(trace[2].3, 1);
    assert_eq!(trace[2].4, 5, "5 modes after r6r (paper's K^(4))");
    // r8r: 2 pos × 2 neg = 4 candidate pairs, 3 unique accepted → 8 modes.
    assert!(trace[3].1);
    assert_eq!(trace[3].2, 4, "four candidate pairs at r8r");
    assert_eq!(trace[3].3, 3, "two duplicates → three survive (paper §II.C)");
    assert_eq!(trace[3].4, 8, "final K^(5) has 8 columns");

    assert_eq!(stats.candidates_generated, 6, "1 + 1 + 4 pairs in total");
}

#[test]
fn tree_and_naive_filters_agree_on_worked_example() {
    // The pattern-tree pipeline (default) must reproduce the classical
    // linear-scan pipeline byte for byte on the paper's worked example,
    // for both elementarity tests.
    let net = toy_network();
    for test in [efm_core::CandidateTest::Rank, efm_core::CandidateTest::Adjacency] {
        let on = EfmOptions { test, pattern_trees: true, ..Default::default() };
        let off = EfmOptions { pattern_trees: false, ..on.clone() };
        let with_trees = enumerate(&net, &on).unwrap();
        let without = enumerate(&net, &off).unwrap();
        assert_eq!(with_trees.efms, without.efms, "tree/naive divergence under {test:?}");
        assert_eq!(with_trees.efms.len(), 8);
    }
}

#[test]
fn section_3a_divide_and_conquer_subsets() {
    // §III.A: partitioning across {r6r, r8r} gives four subproblems with
    // exactly two EFMs each.
    let net = toy_network();
    let out =
        enumerate_divide_conquer(&net, &EfmOptions::default(), &["r6r", "r8r"], &Backend::Serial)
            .unwrap();
    assert_eq!(out.subsets.len(), 4);
    for s in &out.subsets {
        assert_eq!(s.efm_count, 2, "subset {} ({}) (paper finds two EFMs each)", s.id, s.pattern);
    }
    assert_eq!(out.efms.len(), 8);
    let direct = enumerate(&net, &EfmOptions::default()).unwrap();
    assert_eq!(out.efms, direct.efms);
}

#[test]
fn section_2e_partition_across_r8r_r9() {
    // §II.E: "the partitions across reactions r8r and r9 will be
    // {6,8}, {1,3,4}, {5,7}, {2}" — i.e. subset sizes 2, 3, 2, 1.
    // r9 folds into the enzyme subset {r3, r9}; partitioning uses the
    // merged reduced reaction. r9's reduced reaction is irreversible, so
    // the library rejects it as a partition reaction; verify the subset
    // *sizes* directly from the enumerated EFM set instead.
    let net = toy_network();
    let out = enumerate(&net, &EfmOptions::default()).unwrap();
    let r8 = net.reaction_index("r8r").unwrap();
    let r9 = net.reaction_index("r9").unwrap();
    let mut sizes = [0usize; 4];
    for i in 0..out.efms.len() {
        let uses_r8 = out.efms.uses(i, r8) as usize;
        let uses_r9 = out.efms.uses(i, r9) as usize;
        sizes[uses_r8 * 2 + uses_r9] += 1;
    }
    // The paper's subsets {6,8}, {1,3,4}, {5,7}, {2} use its own column
    // numbering; the invariant is the multiset of subset sizes {2,3,2,1}.
    sizes.sort_unstable();
    assert_eq!(sizes, [1, 2, 2, 3], "subset sizes of the paper's §II.E partition");
}
