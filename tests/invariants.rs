//! Mathematical invariants of every enumerated EFM set, checked on random
//! networks: steady state, sign feasibility, support minimality, the
//! nullity-1 characterization, and compression round-tripping.

use efm_core::{enumerate, recover_flux, verify_flux, EfmOptions};
use efm_linalg::{kernel_basis, nullity_of_cols};
use efm_metnet::generator::{random_network, RandomNetworkParams};
use efm_metnet::{compress, MetabolicNetwork};
use efm_numeric::Rational;
use proptest::prelude::*;

fn params() -> RandomNetworkParams {
    RandomNetworkParams {
        metabolites: 6,
        reactions: 11,
        reversible_prob: 0.3,
        mean_degree: 2.6,
        exchange_prob: 0.4,
        max_coeff: 3,
    }
}

fn net_for(seed: u64) -> MetabolicNetwork {
    random_network(&params(), seed)
}

fn opts() -> EfmOptions {
    EfmOptions { max_modes: Some(50_000), ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn every_mode_is_a_steady_state_flux(seed in 0u64..4000) {
        let net = net_for(seed);
        let out = enumerate(&net, &opts()).unwrap();
        let rev = net.reversibilities();
        for i in 0..out.efms.len() {
            let sup = out.efms.support(i);
            let flux = recover_flux(&out.reduced, &rev, &sup).unwrap();
            prop_assert!(verify_flux(&net, &flux).is_ok(), "mode {i}: {:?}", verify_flux(&net, &flux));
            // Reported support equals the actual support.
            let actual: Vec<usize> = flux
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_zero())
                .map(|(j, _)| j)
                .collect();
            prop_assert_eq!(actual, sup);
        }
    }

    #[test]
    fn supports_are_pairwise_minimal(seed in 0u64..4000) {
        let net = net_for(seed);
        let out = enumerate(&net, &opts()).unwrap();
        let sets: Vec<Vec<usize>> = (0..out.efms.len()).map(|i| out.efms.support(i)).collect();
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    let subset = a.iter().all(|x| b.binary_search(x).is_ok());
                    prop_assert!(
                        !subset,
                        "support {i} ⊆ support {j}: {a:?} ⊆ {b:?} — not elementary"
                    );
                }
            }
        }
    }

    #[test]
    fn nullity_one_characterization(seed in 0u64..4000) {
        let net = net_for(seed);
        let out = enumerate(&net, &opts()).unwrap();
        let n = net.stoichiometry();
        let mut scratch = Vec::new();
        for i in 0..out.efms.len() {
            let sup = out.efms.support(i);
            prop_assert_eq!(
                nullity_of_cols(&n, &sup, &mut scratch),
                1,
                "support of mode {} must have nullity 1",
                i
            );
        }
    }

    #[test]
    fn compression_preserves_kernel_and_roundtrips(seed in 0u64..4000) {
        let net = net_for(seed);
        let n = net.stoichiometry();
        let (red, _) = compress(&net);
        // Every original kernel dimension blocked by the reduction must be
        // sign-infeasible, which is exactly what the EFM counts check; here
        // verify the structural invariants instead.
        for (j, mem) in red.members.iter().enumerate() {
            // Members reference valid original reactions, with consistent
            // back-mapping.
            for (orig, coeff) in mem {
                prop_assert!(*orig < net.num_reactions());
                prop_assert!(!coeff.is_zero());
                prop_assert_eq!(red.reduced_index_of(*orig), Some(j));
            }
        }
        // Reduced columns expand to steady-state directions: N·(expanded
        // unit flux of reduced reaction j) must be reproducible from the
        // reduced stoichiometry — check via the reduced kernel instead:
        // every reduced kernel vector expands to an original kernel vector.
        let kb = kernel_basis(&red.stoich, &[]);
        for c in 0..kb.k.cols() {
            let reduced_flux: Vec<Rational> = (0..red.num_reduced())
                .map(|r| kb.k.get(r, c).clone())
                .collect();
            let full = red.expand_flux(&reduced_flux);
            let residual = n.matvec(&full);
            prop_assert!(
                residual.iter().all(|v| v.is_zero()),
                "expanded kernel vector must satisfy N·v = 0"
            );
        }
    }

    #[test]
    fn no_mode_uses_blocked_reactions(seed in 0u64..4000) {
        let net = net_for(seed);
        let out = enumerate(&net, &opts()).unwrap();
        let blocked: Vec<usize> = (0..net.num_reactions())
            .filter(|&j| out.reduced.reduced_index_of(j).is_none())
            .collect();
        for i in 0..out.efms.len() {
            for &b in &blocked {
                prop_assert!(!out.efms.uses(i, b), "mode {i} uses blocked reaction {b}");
            }
        }
    }

    #[test]
    fn enzyme_subsets_fire_together(seed in 0u64..4000) {
        let net = net_for(seed);
        let out = enumerate(&net, &opts()).unwrap();
        for mem in &out.reduced.members {
            if mem.len() < 2 {
                continue;
            }
            let members: Vec<usize> = mem.iter().map(|(o, _)| *o).collect();
            for i in 0..out.efms.len() {
                let used: Vec<bool> = members.iter().map(|&o| out.efms.uses(i, o)).collect();
                prop_assert!(
                    used.iter().all(|&u| u) || used.iter().all(|&u| !u),
                    "enzyme subset {members:?} must be all-or-nothing in mode {i}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Divide-and-conquer partition invariants (the paper's Proposition 1),
// checked on random valid partitions of random networks: the 2^qsub
// subsets are pairwise disjoint, their union is exactly the unsplit EFM
// set, and every EFM obeys its subset's zero/nonzero pattern.
// ---------------------------------------------------------------------------

/// Random valid partition of `red`: reversible, pivotal, distinct reduced
/// reactions (the same eligibility rule the product enforces), chosen by
/// `pick` as a rotation over the eligible set. Returns original-network
/// names, or an empty vector when the network has no eligible split.
fn random_partition(
    net: &MetabolicNetwork,
    red: &efm_metnet::ReducedNetwork,
    pick: u64,
    qsub: usize,
) -> Vec<String> {
    let Ok(problem) = efm_core::build_problem::<efm_numeric::DynInt>(red, &EfmOptions::default())
    else {
        return Vec::new();
    };
    let mut eligible: Vec<usize> = problem.row_order[problem.free_count..]
        .iter()
        .filter(|&&c| c < red.num_reduced())
        .map(|&c| problem.col_to_reduced[c])
        .filter(|&r| red.reversible[r])
        .collect();
    eligible.dedup();
    if eligible.len() < qsub {
        return Vec::new();
    }
    let start = (pick as usize) % eligible.len();
    (0..qsub)
        .map(|i| {
            let r = eligible[(start + i) % eligible.len()];
            let (orig, _) = red.members[r][0];
            net.reactions[orig].name.clone()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn partition_subsets_are_disjoint_complete_and_pattern_faithful(
        seed in 0u64..4000,
        pick in 0u64..64,
    ) {
        let net = net_for(seed);
        let (red, _) = compress(&net);
        let qsub = 2;
        let names = random_partition(&net, &red, pick, qsub);
        prop_assume!(names.len() == qsub);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let partition = efm_core::resolve_partition(&net, &red, &refs).unwrap();

        let mut union: Vec<Vec<usize>> = Vec::new();
        let mut seen: Vec<Vec<usize>> = Vec::new();
        for id in 0..1usize << qsub {
            let Some((sups, _)) = efm_core::run_subset::<efm_bitset::Pattern1, efm_numeric::DynInt>(
                &red,
                &partition,
                id,
                &opts(),
                &efm_core::Backend::Serial,
            )
            .unwrap() else {
                continue;
            };
            for sup in sups {
                // Proposition 1: the EFM is nonzero on exactly the
                // partition reactions whose bit in `id` is set.
                for (i, &r) in partition.reduced_indices.iter().enumerate() {
                    let must_use = id >> i & 1 == 1;
                    prop_assert_eq!(
                        sup.contains(&r),
                        must_use,
                        "subset {} violates its pattern on reaction {} ({:?})",
                        id,
                        &names[i],
                        &sup
                    );
                }
                let mut s = sup.clone();
                s.sort_unstable();
                // Pairwise disjoint: no support may appear under two ids
                // (or twice under one).
                prop_assert!(
                    !seen.contains(&s),
                    "support {:?} appeared in more than one subset",
                    &s
                );
                seen.push(s);
                let mut expanded = red.expand_support(&sup);
                expanded.sort_unstable();
                union.push(expanded);
            }
        }
        union.sort();

        // Union = the unsplit EFM set.
        let direct = enumerate(&net, &opts()).unwrap();
        let mut reference: Vec<Vec<usize>> =
            (0..direct.efms.len()).map(|i| direct.efms.support(i)).collect();
        reference.sort();
        prop_assert_eq!(union, reference, "subset union differs from the unsplit EFM set");
    }
}
