//! Differential backend/schedule equality suite.
//!
//! Every execution strategy — serial, rayon, simulated cluster, and the
//! three divide-and-conquer schedules (`serial`, `static`, `steal`) — must
//! enumerate the *identical* EFM set. Each comparison goes through one
//! shared canonical form ([`canon`]: sorted support sets over original
//! reactions) so there is exactly one notion of equality in the suite.
//!
//! The `DNC_SCHEDULE` environment variable filters the schedule axis
//! (`DNC_SCHEDULE=steal` checks only that mode) — this is how the CI
//! matrix runs one lane per schedule. Unset, all schedules are checked.

use efm_bench::{network_i, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_scheduled_with_scalar, enumerate_with_scalar, Backend, DncConfig,
    DncSchedule, EfmOptions, EfmOutcome, KernelKind,
};
use efm_metnet::examples::toy_network;
use efm_numeric::{DynInt, F64Tol};

/// The single canonical comparator of the suite: sorted support sets over
/// original reaction indices. All equality assertions go through this.
fn canon(out: &EfmOutcome) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = (0..out.efms.len()).map(|i| out.efms.support(i)).collect();
    v.sort();
    v
}

/// The schedule axis, optionally filtered by `DNC_SCHEDULE` (CI matrix).
fn schedules() -> Vec<DncSchedule> {
    let all = [DncSchedule::Serial, DncSchedule::Static, DncSchedule::Steal];
    match std::env::var("DNC_SCHEDULE") {
        Ok(want) => all.iter().copied().filter(|m| m.to_string() == want).collect(),
        Err(_) => all.to_vec(),
    }
}

fn dnc(schedule: DncSchedule, workers: usize) -> DncConfig {
    DncConfig { schedule, workers, ..Default::default() }
}

#[test]
fn toy_paper_example_agrees_across_backends_and_schedules() {
    // The paper's §III.A worked example: partition across {r6r, r8r}.
    let net = toy_network();
    let opts = EfmOptions::default();
    let reference = canon(&enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap());
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    for (bname, backend) in &backends {
        for schedule in schedules() {
            let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                &net,
                &opts,
                &["r6r", "r8r"],
                backend,
                &dnc(schedule, 2),
            )
            .unwrap();
            assert_eq!(
                canon(&out),
                reference,
                "backend {bname} / schedule {schedule} diverged from the direct serial run"
            );
        }
    }
}

#[test]
fn yeast_lite_two_way_split_agrees_across_schedules() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let direct = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let reference = canon(&direct);
    let partition = pick_partition(&net, &direct.reduced, &["R89r", "R74r"], 2);
    assert_eq!(partition.len(), 2, "lite Network I must retain a 2-way split");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    for schedule in schedules() {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
            &net,
            &opts,
            &names,
            &Backend::Serial,
            &dnc(schedule, 2),
        )
        .unwrap();
        assert_eq!(canon(&out), reference, "schedule {schedule} diverged on yeast-lite");
    }
}

/// PR 5 acceptance: the 4-reaction yeast-lite partition under
/// `--dnc-schedule steal` at 4 workers yields the same EFM set as the
/// sequential schedule (the speedup half of the criterion is measured by
/// the `dnc_balance` bench, which records BENCH_pr5.json).
#[test]
fn yeast_lite_four_way_steal_matches_serial_schedule() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let (red, _) = efm_metnet::compress(&net);
    let partition = pick_partition(&net, &red, &["R89r", "R74r", "R90r", "R22r"], 4);
    assert_eq!(partition.len(), 4, "lite Network I must retain a 4-way split");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let serial = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Serial,
        &dnc(DncSchedule::Serial, 1),
    )
    .unwrap();
    let steal = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Serial,
        &dnc(DncSchedule::Steal, 4),
    )
    .unwrap();
    assert_eq!(canon(&steal), canon(&serial));
    assert_eq!(steal.efms.len(), serial.efms.len());
}

/// Cluster-backend divide-and-conquer on yeast-lite is the heavyweight
/// corner of the matrix; it runs in the `--include-ignored` soak lane.
#[test]
#[ignore = "heavy: cluster backend on yeast-lite; run via --include-ignored"]
fn yeast_lite_cluster_backend_schedules_agree() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let direct = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let reference = canon(&direct);
    let partition = pick_partition(&net, &direct.reduced, &["R89r", "R74r"], 2);
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(2));
    for schedule in schedules() {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
            &net,
            &opts,
            &names,
            &backend,
            &dnc(schedule, 2),
        )
        .unwrap();
        assert_eq!(canon(&out), reference, "cluster schedule {schedule} diverged");
    }
}

/// PR 7 acceptance: streaming generation and the compressed/spilled
/// subset assembly are *implementations* of the same semantics. Crossing
/// streaming-on/off with spill-on/off over every backend and schedule
/// must yield the identical canonical EFM set — a zero resident budget
/// forces every finished subset through the compress + spill + stream-back
/// path.
#[test]
fn streaming_and_spill_agree_across_backends_and_schedules() {
    let net = toy_network();
    let reference = canon(
        &enumerate_with_scalar::<DynInt>(&net, &EfmOptions::default(), &Backend::Serial).unwrap(),
    );
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    let variants = [
        ("streaming", EfmOptions { streaming: true, ..Default::default() }),
        ("legacy", EfmOptions { streaming: false, ..Default::default() }),
        (
            "streaming+spill",
            EfmOptions { streaming: true, spill_budget: Some(0), ..Default::default() },
        ),
        (
            "legacy+spill",
            EfmOptions { streaming: false, spill_budget: Some(0), ..Default::default() },
        ),
    ];
    for (bname, backend) in &backends {
        for (vname, opts) in &variants {
            let direct = enumerate_with_scalar::<DynInt>(&net, opts, backend).unwrap();
            assert_eq!(
                canon(&direct),
                reference,
                "backend {bname} / {vname}: direct run diverged from the default serial run"
            );
            for schedule in schedules() {
                let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                    &net,
                    opts,
                    &["r6r", "r8r"],
                    backend,
                    &dnc(schedule, 2),
                )
                .unwrap();
                assert_eq!(
                    canon(&out),
                    reference,
                    "backend {bname} / {vname} / schedule {schedule} diverged"
                );
                if opts.spill_budget.is_some() {
                    assert!(
                        out.stats.spill_bytes > 0,
                        "backend {bname} / {vname} / schedule {schedule}: zero budget must spill"
                    );
                }
            }
        }
    }
}

/// PR 6 acceptance: the SIMD batch kernel is an *implementation* of the
/// scalar semantics, not a variant — with the kernel forced on and forced
/// off, every backend enumerates the identical EFM set (via [`canon`],
/// the suite's single comparator). The per-primitive bit-identity is
/// covered by the proptest suite in `crates/bitset/tests/kernel_props.rs`;
/// this is the whole-pipeline end of that argument.
#[test]
fn kernel_on_off_agree_across_backends() {
    let net = toy_network();
    let scalar_opts = EfmOptions { kernel: KernelKind::Scalar, ..Default::default() };
    let simd_opts = EfmOptions { kernel: KernelKind::Simd, ..Default::default() };
    let reference =
        canon(&enumerate_with_scalar::<DynInt>(&net, &scalar_opts, &Backend::Serial).unwrap());
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    for (bname, backend) in &backends {
        let simd = enumerate_with_scalar::<DynInt>(&net, &simd_opts, backend).unwrap();
        assert_eq!(canon(&simd), reference, "backend {bname}: simd kernel diverged from scalar");
        for schedule in schedules() {
            let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                &net,
                &simd_opts,
                &["r6r", "r8r"],
                backend,
                &dnc(schedule, 2),
            )
            .unwrap();
            assert_eq!(
                canon(&out),
                reference,
                "backend {bname} / schedule {schedule}: simd kernel diverged from scalar"
            );
        }
    }
}

/// Same argument on a real network: yeast-lite under the float scalar,
/// scalar vs SIMD kernel, serial and rayon backends.
#[test]
fn kernel_on_off_agree_on_yeast_lite() {
    let net = network_i(Scale::Lite);
    let scalar_opts = EfmOptions { kernel: KernelKind::Scalar, ..Default::default() };
    let simd_opts = EfmOptions { kernel: KernelKind::Simd, ..Default::default() };
    let reference =
        canon(&enumerate_with_scalar::<F64Tol>(&net, &scalar_opts, &Backend::Serial).unwrap());
    for (bname, backend) in [("serial", Backend::Serial), ("rayon", Backend::Rayon)] {
        let simd = enumerate_with_scalar::<F64Tol>(&net, &simd_opts, &backend).unwrap();
        assert_eq!(canon(&simd), reference, "backend {bname}: simd kernel diverged on yeast-lite");
    }
}

/// Regression (PR 5 satellite): whatever order a concurrent schedule
/// finishes subsets in, reports come back sorted by subset id, and
/// aggregated statistics count each subset exactly once — the totals are
/// identical across schedules because each report carries only its own
/// successful attempt.
#[test]
fn reports_are_id_ordered_and_stats_never_double_count() {
    let net = toy_network();
    let opts = EfmOptions::default();
    let mut totals = Vec::new();
    for schedule in [DncSchedule::Serial, DncSchedule::Static, DncSchedule::Steal] {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
            &net,
            &opts,
            &["r6r", "r8r"],
            &Backend::Serial,
            &dnc(schedule, 3),
        )
        .unwrap();
        let ids: Vec<usize> = out.subsets.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "schedule {schedule}: reports out of id order");
        let report_sum: u64 = out.subsets.iter().map(|s| s.stats.candidates_generated).sum();
        assert_eq!(
            out.stats.candidates_generated, report_sum,
            "schedule {schedule}: aggregate disagrees with per-report sum"
        );
        let efm_sum: usize = out.subsets.iter().map(|s| s.efm_count).sum();
        assert_eq!(out.efms.len(), efm_sum, "schedule {schedule}: EFM counts disagree");
        totals.push((out.stats.candidates_generated, out.stats.rank_tests, canon(&out)));
    }
    // Identical subproblems generate identical counts whatever the
    // schedule; a double-counted concurrent subset would break this.
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0], totals[2]);
}
