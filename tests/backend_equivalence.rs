//! Differential backend/schedule equality suite.
//!
//! Every execution strategy — serial, rayon, simulated cluster, and the
//! three divide-and-conquer schedules (`serial`, `static`, `steal`) — must
//! enumerate the *identical* EFM set. Each comparison goes through one
//! shared canonical form ([`canon`]: sorted support sets over original
//! reactions) so there is exactly one notion of equality in the suite.
//!
//! The `DNC_SCHEDULE` environment variable filters the schedule axis
//! (`DNC_SCHEDULE=steal` checks only that mode) — this is how the CI
//! matrix runs one lane per schedule. Unset, all schedules are checked.

use efm_bench::{network_i, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_scheduled_with_scalar, enumerate_with_scalar, Backend, DncConfig,
    DncSchedule, EfmOptions, EfmOutcome, KernelKind,
};
use efm_metnet::examples::toy_network;
use efm_numeric::{DynInt, F64Tol};

/// The single canonical comparator of the suite: sorted support sets over
/// original reaction indices. All equality assertions go through this.
fn canon(out: &EfmOutcome) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = (0..out.efms.len()).map(|i| out.efms.support(i)).collect();
    v.sort();
    v
}

/// The schedule axis, optionally filtered by `DNC_SCHEDULE` (CI matrix).
fn schedules() -> Vec<DncSchedule> {
    let all = [DncSchedule::Serial, DncSchedule::Static, DncSchedule::Steal];
    match std::env::var("DNC_SCHEDULE") {
        Ok(want) => all.iter().copied().filter(|m| m.to_string() == want).collect(),
        Err(_) => all.to_vec(),
    }
}

fn dnc(schedule: DncSchedule, workers: usize) -> DncConfig {
    DncConfig { schedule, workers, ..Default::default() }
}

#[test]
fn toy_paper_example_agrees_across_backends_and_schedules() {
    // The paper's §III.A worked example: partition across {r6r, r8r}.
    let net = toy_network();
    let opts = EfmOptions::default();
    let reference = canon(&enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap());
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    for (bname, backend) in &backends {
        for schedule in schedules() {
            let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                &net,
                &opts,
                &["r6r", "r8r"],
                backend,
                &dnc(schedule, 2),
            )
            .unwrap();
            assert_eq!(
                canon(&out),
                reference,
                "backend {bname} / schedule {schedule} diverged from the direct serial run"
            );
        }
    }
}

#[test]
fn yeast_lite_two_way_split_agrees_across_schedules() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let direct = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let reference = canon(&direct);
    let partition = pick_partition(&net, &direct.reduced, &["R89r", "R74r"], 2);
    assert_eq!(partition.len(), 2, "lite Network I must retain a 2-way split");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    for schedule in schedules() {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
            &net,
            &opts,
            &names,
            &Backend::Serial,
            &dnc(schedule, 2),
        )
        .unwrap();
        assert_eq!(canon(&out), reference, "schedule {schedule} diverged on yeast-lite");
    }
}

/// PR 5 acceptance: the 4-reaction yeast-lite partition under
/// `--dnc-schedule steal` at 4 workers yields the same EFM set as the
/// sequential schedule (the speedup half of the criterion is measured by
/// the `dnc_balance` bench, which records BENCH_pr5.json).
#[test]
fn yeast_lite_four_way_steal_matches_serial_schedule() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let (red, _) = efm_metnet::compress(&net);
    let partition = pick_partition(&net, &red, &["R89r", "R74r", "R90r", "R22r"], 4);
    assert_eq!(partition.len(), 4, "lite Network I must retain a 4-way split");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let serial = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Serial,
        &dnc(DncSchedule::Serial, 1),
    )
    .unwrap();
    let steal = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Serial,
        &dnc(DncSchedule::Steal, 4),
    )
    .unwrap();
    assert_eq!(canon(&steal), canon(&serial));
    assert_eq!(steal.efms.len(), serial.efms.len());
}

/// Cluster-backend divide-and-conquer on yeast-lite is the heavyweight
/// corner of the matrix; it runs in the `--include-ignored` soak lane.
#[test]
#[ignore = "heavy: cluster backend on yeast-lite; run via --include-ignored"]
fn yeast_lite_cluster_backend_schedules_agree() {
    let net = network_i(Scale::Lite);
    let opts = EfmOptions::default();
    let direct = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap();
    let reference = canon(&direct);
    let partition = pick_partition(&net, &direct.reduced, &["R89r", "R74r"], 2);
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(2));
    for schedule in schedules() {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
            &net,
            &opts,
            &names,
            &backend,
            &dnc(schedule, 2),
        )
        .unwrap();
        assert_eq!(canon(&out), reference, "cluster schedule {schedule} diverged");
    }
}

/// PR 7 acceptance: streaming generation and the compressed/spilled
/// subset assembly are *implementations* of the same semantics. Crossing
/// streaming-on/off with spill-on/off over every backend and schedule
/// must yield the identical canonical EFM set — a zero resident budget
/// forces every finished subset through the compress + spill + stream-back
/// path.
#[test]
fn streaming_and_spill_agree_across_backends_and_schedules() {
    let net = toy_network();
    let reference = canon(
        &enumerate_with_scalar::<DynInt>(&net, &EfmOptions::default(), &Backend::Serial).unwrap(),
    );
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    let variants = [
        ("streaming", EfmOptions { streaming: true, ..Default::default() }),
        ("legacy", EfmOptions { streaming: false, ..Default::default() }),
        (
            "streaming+spill",
            EfmOptions { streaming: true, spill_budget: Some(0), ..Default::default() },
        ),
        (
            "legacy+spill",
            EfmOptions { streaming: false, spill_budget: Some(0), ..Default::default() },
        ),
    ];
    for (bname, backend) in &backends {
        for (vname, opts) in &variants {
            let direct = enumerate_with_scalar::<DynInt>(&net, opts, backend).unwrap();
            assert_eq!(
                canon(&direct),
                reference,
                "backend {bname} / {vname}: direct run diverged from the default serial run"
            );
            for schedule in schedules() {
                let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                    &net,
                    opts,
                    &["r6r", "r8r"],
                    backend,
                    &dnc(schedule, 2),
                )
                .unwrap();
                assert_eq!(
                    canon(&out),
                    reference,
                    "backend {bname} / {vname} / schedule {schedule} diverged"
                );
                if opts.spill_budget.is_some() {
                    assert!(
                        out.stats.spill_bytes > 0,
                        "backend {bname} / {vname} / schedule {schedule}: zero budget must spill"
                    );
                }
            }
        }
    }
}

/// PR 6 acceptance: the SIMD batch kernel is an *implementation* of the
/// scalar semantics, not a variant — with the kernel forced on and forced
/// off, every backend enumerates the identical EFM set (via [`canon`],
/// the suite's single comparator). The per-primitive bit-identity is
/// covered by the proptest suite in `crates/bitset/tests/kernel_props.rs`;
/// this is the whole-pipeline end of that argument.
#[test]
fn kernel_on_off_agree_across_backends() {
    let net = toy_network();
    let scalar_opts = EfmOptions { kernel: KernelKind::Scalar, ..Default::default() };
    let simd_opts = EfmOptions { kernel: KernelKind::Simd, ..Default::default() };
    let reference =
        canon(&enumerate_with_scalar::<DynInt>(&net, &scalar_opts, &Backend::Serial).unwrap());
    let backends = [
        ("serial", Backend::Serial),
        ("rayon", Backend::Rayon),
        ("cluster", Backend::Cluster(efm_cluster::ClusterConfig::new(3))),
    ];
    for (bname, backend) in &backends {
        let simd = enumerate_with_scalar::<DynInt>(&net, &simd_opts, backend).unwrap();
        assert_eq!(canon(&simd), reference, "backend {bname}: simd kernel diverged from scalar");
        for schedule in schedules() {
            let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
                &net,
                &simd_opts,
                &["r6r", "r8r"],
                backend,
                &dnc(schedule, 2),
            )
            .unwrap();
            assert_eq!(
                canon(&out),
                reference,
                "backend {bname} / schedule {schedule}: simd kernel diverged from scalar"
            );
        }
    }
}

/// Same argument on a real network: yeast-lite under the float scalar,
/// scalar vs SIMD kernel, serial and rayon backends.
#[test]
fn kernel_on_off_agree_on_yeast_lite() {
    let net = network_i(Scale::Lite);
    let scalar_opts = EfmOptions { kernel: KernelKind::Scalar, ..Default::default() };
    let simd_opts = EfmOptions { kernel: KernelKind::Simd, ..Default::default() };
    let reference =
        canon(&enumerate_with_scalar::<F64Tol>(&net, &scalar_opts, &Backend::Serial).unwrap());
    for (bname, backend) in [("serial", Backend::Serial), ("rayon", Backend::Rayon)] {
        let simd = enumerate_with_scalar::<F64Tol>(&net, &simd_opts, &backend).unwrap();
        assert_eq!(canon(&simd), reference, "backend {bname}: simd kernel diverged on yeast-lite");
    }
}

/// Regression (PR 5 satellite): whatever order a concurrent schedule
/// finishes subsets in, reports come back sorted by subset id, and
/// aggregated statistics count each subset exactly once — the totals are
/// identical across schedules because each report carries only its own
/// successful attempt.
#[test]
fn reports_are_id_ordered_and_stats_never_double_count() {
    let net = toy_network();
    let opts = EfmOptions::default();
    let mut totals = Vec::new();
    for schedule in [DncSchedule::Serial, DncSchedule::Static, DncSchedule::Steal] {
        let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
            &net,
            &opts,
            &["r6r", "r8r"],
            &Backend::Serial,
            &dnc(schedule, 3),
        )
        .unwrap();
        let ids: Vec<usize> = out.subsets.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "schedule {schedule}: reports out of id order");
        let report_sum: u64 = out.subsets.iter().map(|s| s.stats.candidates_generated).sum();
        assert_eq!(
            out.stats.candidates_generated, report_sum,
            "schedule {schedule}: aggregate disagrees with per-report sum"
        );
        let efm_sum: usize = out.subsets.iter().map(|s| s.efm_count).sum();
        assert_eq!(out.efms.len(), efm_sum, "schedule {schedule}: EFM counts disagree");
        totals.push((out.stats.candidates_generated, out.stats.rank_tests, canon(&out)));
    }
    // Identical subproblems generate identical counts whatever the
    // schedule; a double-counted concurrent subset would break this.
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0], totals[2]);
}

// ---------------------------------------------------------------------------
// PR 8: degraded-mode differential suite. A killed rank must *degrade* the
// run — survivors re-stripe and continue with N−1 ranks — never change the
// answer, and never trigger a full restart when failover is on.
// ---------------------------------------------------------------------------

/// Engine fault points, in iteration order (the six phases of Algorithm 2
/// plus the iteration boundary they bracket).
const KILL_PHASES: [&str; 6] = ["iteration", "generate", "dedup", "rank", "communicate", "merge"];

fn failover_cluster(nodes: usize) -> efm_cluster::ClusterConfig {
    efm_cluster::ClusterConfig::new(nodes)
        .with_failover(true)
        .with_heartbeat(std::time::Duration::from_millis(5))
        .with_timeouts(efm_cluster::ClusterTimeouts::uniform(std::time::Duration::from_secs(60)))
}

/// Kill every non-zero rank at every engine phase under the supervisor:
/// each degraded run must produce the set-identical EFM set with a
/// `RecoveryLog` showing failover and zero full restarts.
#[test]
fn killing_any_rank_at_any_phase_fails_over_to_identical_set() {
    use efm_core::{enumerate_supervised_with_scalar, RecoveryAction, SuperviseConfig};
    let net = toy_network();
    let opts = EfmOptions::default();
    let reference = canon(&enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap());
    let nodes = 3;
    let dir = std::env::temp_dir().join(format!("efm-kill-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for victim in 1..nodes {
        for (pi, phase) in KILL_PHASES.iter().enumerate() {
            let path = dir.join(format!("kill-{victim}-{phase}.efck"));
            let _ = std::fs::remove_file(&path);
            let seed = (victim * 10 + pi) as u64;
            let sup = SuperviseConfig::new(&path)
                .with_fault_plan(efm_cluster::FaultPlan::new(seed).kill_rank(victim, phase, 1));
            let out = enumerate_supervised_with_scalar::<DynInt>(
                &net,
                &opts,
                &failover_cluster(nodes),
                &sup,
            )
            .unwrap_or_else(|e| panic!("kill rank {victim} at {phase}: {e}"));
            assert_eq!(canon(&out), reference, "kill rank {victim} at {phase}: EFM set diverged");
            assert_eq!(
                out.stats.recovery.restarts(),
                0,
                "kill rank {victim} at {phase}: failover must not full-restart\n{}",
                out.stats.recovery
            );
            assert!(
                out.stats.recovery.events.iter().any(|e| e.action == RecoveryAction::FailedOver),
                "kill rank {victim} at {phase}: no failover recorded\n{}",
                out.stats.recovery
            );
            assert_eq!(out.stats.failovers, 1, "kill rank {victim} at {phase}");
            assert_eq!(out.stats.ranks_lost, 1, "kill rank {victim} at {phase}");
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same degradation argument through the divide-and-conquer scheduler:
/// under the `static` and `steal` schedules a killed subset rank fails
/// over inside its node group — the run completes with the identical set
/// and the per-subset recovery events show failover, not restart.
#[test]
fn dnc_schedules_fail_over_killed_ranks_to_identical_set() {
    use efm_core::RecoveryAction;
    let net = toy_network();
    let opts = EfmOptions::default();
    let reference = canon(&enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap());
    for schedule in [DncSchedule::Static, DncSchedule::Steal] {
        // One one-shot kill in the shared base injector: whichever subset
        // group's rank 1 reaches generate[0] first loses that rank.
        let plan = efm_cluster::FaultPlan::new(77).kill_rank(1, "generate", 0);
        let base = failover_cluster(4)
            .with_injector(std::sync::Arc::new(efm_cluster::FaultInjector::new(plan)));
        let out = enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
            &net,
            &opts,
            &["r6r", "r8r"],
            &Backend::Cluster(base),
            &dnc(schedule, 2),
        )
        .unwrap_or_else(|e| panic!("schedule {schedule}: {e}"));
        assert_eq!(canon(&out), reference, "schedule {schedule}: EFM set diverged");
        assert!(
            out.stats.recovery.events.iter().any(|e| e.action == RecoveryAction::FailedOver),
            "schedule {schedule}: no failover recorded\n{}",
            out.stats.recovery
        );
        assert_eq!(
            out.stats.recovery.restarts(),
            0,
            "schedule {schedule}: failover must not consume a retry\n{}",
            out.stats.recovery
        );
        assert!(out.stats.failovers >= 1, "schedule {schedule}");
    }
}
