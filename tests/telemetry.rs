//! Telemetry round-trips: the Chrome-trace and JSONL exporters must emit
//! well-formed JSON with balanced, per-track monotonic span nesting, and
//! turning tracing on must not change what the engine computes.
//!
//! The telemetry sinks are process-wide globals, so every test here takes
//! `OBS_LOCK` and resets the registry before touching them (separate test
//! binaries are separate processes and cannot race these).

use efm_core::{enumerate_with_scalar, Backend, EfmOptions};
use efm_metnet::generator::{random_network, RandomNetworkParams};
use efm_metnet::{parse_network, MetabolicNetwork};
use efm_numeric::{DynInt, F64Tol};
use efm_obs::json::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn network_i_lite() -> MetabolicNetwork {
    let text: String = efm_metnet::yeast::NETWORK_I_TEXT
        .lines()
        .filter(|l| {
            let name = l.split(':').next().unwrap_or("").trim();
            name != "R15" && name != "R70"
        })
        .map(|l| format!("{l}\n"))
        .collect();
    parse_network(&text).unwrap()
}

/// Runs `f` with tracing enabled against a clean registry; returns the
/// snapshot taken after `f` and always disables tracing again.
fn traced<R>(f: impl FnOnce() -> R) -> (R, efm_obs::Snapshot) {
    efm_obs::reset();
    efm_obs::set_enabled(true);
    let r = f();
    efm_obs::set_enabled(false);
    (r, efm_obs::snapshot())
}

/// Per-tid structural checks on parsed Chrome trace events: timestamps
/// never go backwards, B/E depth never goes negative, and every span that
/// opens also closes.
fn check_track_structure(events: &[&BTreeMap<String, Value>]) {
    let mut last_ts = f64::NEG_INFINITY;
    let mut depth = 0i64;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("event has ph");
        if ph == "M" {
            continue; // metadata records carry no timestamp ordering
        }
        let ts = ev.get("ts").and_then(Value::as_num).expect("event has ts");
        assert!(ts >= last_ts, "timestamps must be monotonic per track: {ts} < {last_ts}");
        last_ts = ts;
        match ph {
            "B" => depth += 1,
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "span end without matching begin");
            }
            "i" | "C" | "s" | "t" | "f" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(depth, 0, "every span must close by end of track");
}

#[test]
fn chrome_trace_roundtrips_and_nests() {
    let _g = OBS_LOCK.lock().unwrap();
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(3));
    let (out, snap) = traced(|| enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).unwrap());
    assert!(!out.efms.is_empty());
    assert!(snap.event_count() > 0, "a traced cluster run must record events");

    let text = efm_obs::export::chrome_trace(&snap);
    let root = efm_obs::json::parse(&text).expect("exporter must emit valid JSON");
    let events =
        root.get("traceEvents").and_then(Value::as_arr).expect("top-level traceEvents array");
    assert!(!events.is_empty());

    // Group by tid and check structure per track.
    let mut by_tid: BTreeMap<i64, Vec<&BTreeMap<String, Value>>> = BTreeMap::new();
    for ev in events {
        let Value::Obj(obj) = ev else { panic!("every trace event is an object") };
        let tid = obj.get("tid").and_then(Value::as_num).expect("event has tid") as i64;
        by_tid.entry(tid).or_default().push(obj);
    }
    assert!(by_tid.len() >= 3, "expected one track per rank, got {}", by_tid.len());
    for track in by_tid.values() {
        check_track_structure(track);
    }

    // All six engine phases of Algorithm 2 appear somewhere in the trace.
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
    for phase in ["gen cand", "sort/dedup", "tree filter", "rank test", "communicate", "merge"] {
        assert!(names.contains(&phase), "phase {phase:?} missing from trace");
    }
}

#[test]
fn jsonl_export_is_line_wise_valid() {
    let _g = OBS_LOCK.lock().unwrap();
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let (_, snap) =
        traced(|| enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap());
    let text = efm_obs::export::jsonl(&snap);
    let mut lines = 0;
    let mut last_ts_per_tid: BTreeMap<i64, f64> = BTreeMap::new();
    for line in text.lines() {
        let v = efm_obs::json::parse(line).expect("every JSONL line parses");
        let ts = v.get("ts_us").and_then(Value::as_num).expect("line has ts_us");
        let tid = v.get("tid").and_then(Value::as_num).expect("line has tid") as i64;
        let ph = v.get("ph").and_then(Value::as_str).expect("line has ph");
        assert!(["B", "E", "I", "C", "s", "f"].contains(&ph), "unexpected ph {ph:?}");
        let name = v.get("name").and_then(Value::as_str).expect("line has name");
        assert!(ph == "E" || !name.is_empty(), "only End events may omit the name");
        let last = last_ts_per_tid.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *last, "JSONL timestamps must be monotonic per tid");
        *last = ts;
        lines += 1;
    }
    assert!(lines > 0);
    assert_eq!(lines, snap.event_count(), "one line per recorded event");
}

#[test]
fn metrics_json_carries_engine_counters() {
    let _g = OBS_LOCK.lock().unwrap();
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let (out, snap) =
        traced(|| enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap());
    let text = efm_obs::export::metrics_json(&snap);
    let root = efm_obs::json::parse(&text).expect("metrics must be valid JSON");
    let counters = root.get("counters").expect("counters object");
    let candidates =
        counters.get("candidates").and_then(Value::as_num).expect("candidates counter") as u64;
    assert_eq!(candidates, out.stats.candidates_generated);
    let rank_tests =
        counters.get("rank tests").and_then(Value::as_num).expect("rank tests counter") as u64;
    assert_eq!(rank_tests, out.stats.rank_tests);
}

#[test]
fn tracing_is_inert_on_yeast_lite() {
    let _g = OBS_LOCK.lock().unwrap();
    let net = network_i_lite();
    let opts = EfmOptions::default();
    efm_obs::set_enabled(false);
    let plain = enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap();
    let (traced_out, snap) =
        traced(|| enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap());
    assert_eq!(plain.efms, traced_out.efms, "tracing must not change the EFM set");
    assert_eq!(plain.stats.candidates_generated, traced_out.stats.candidates_generated);
    assert_eq!(plain.stats.rank_tests, traced_out.stats.rank_tests);
    assert_eq!(plain.stats.dedup_hits, traced_out.stats.dedup_hits);
    assert!(snap.event_count() > 0);
}

#[test]
fn chrome_trace_flow_events_pair_up() {
    let _g = OBS_LOCK.lock().unwrap();
    let net = network_i_lite();
    let opts = EfmOptions::default();
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(3));
    let (_, snap) = traced(|| {
        enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).unwrap();
        // A deliberately dangling flow: started, never finished. The
        // exporter must drop the whole chain, not emit an unpaired "s".
        let dangling = efm_obs::next_flow_id();
        efm_obs::flow_start("dangling", dangling);
    });
    let text = efm_obs::export::chrome_trace(&snap);
    let root = efm_obs::json::parse(&text).unwrap();
    let events = root.get("traceEvents").and_then(Value::as_arr).unwrap();
    // Per flow id: (starts, finishes).
    let mut flows: BTreeMap<i64, (u32, u32)> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        if !matches!(ph, "s" | "t" | "f") {
            continue;
        }
        assert_eq!(e.get("cat").and_then(Value::as_str), Some("flow"));
        let id = e.get("id").and_then(Value::as_num).expect("flow event has id") as i64;
        let entry = flows.entry(id).or_insert((0, 0));
        match ph {
            "s" => entry.0 += 1,
            "f" => entry.1 += 1,
            _ => {}
        }
    }
    assert!(!flows.is_empty(), "a cluster run must record message flows");
    for (id, (starts, finishes)) in &flows {
        assert_eq!(*starts, 1, "flow {id}: every chain has exactly one start");
        assert_eq!(*finishes, 1, "flow {id}: every chain has exactly one finish");
    }
    assert!(
        !events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("dangling")),
        "dangling flows must be dropped at export"
    );
}

/// Builds a histogram over `values`.
fn hist_of(values: &[u64]) -> efm_obs::hist::Histogram {
    let mut h = efm_obs::hist::Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn histogram_rank0_aggregation_equals_global_recording() {
    // Merging per-rank histograms at rank 0 must equal recording every
    // observation into one histogram — the invariant that makes the
    // metrics export meaningful for multi-rank runs.
    let per_rank: Vec<Vec<u64>> =
        vec![vec![1, 5, 900, 17], vec![0, 2, 2, 1 << 40], vec![33, 33, 33]];
    let mut merged = efm_obs::hist::Histogram::default();
    for rank in &per_rank {
        merged.merge(&hist_of(rank));
    }
    let all: Vec<u64> = per_rank.concat();
    let global = hist_of(&all);
    assert_eq!(merged, global);
    assert_eq!(merged.count, all.len() as u64);
    assert_eq!(merged.max, 1 << 40);
}

#[test]
fn histogram_resume_unmerge_corrects_double_count() {
    // Resume replays the checkpointed prefix: the live histogram holds
    // prefix + prefix + suffix. Subtracting the checkpoint copy restores
    // prefix + suffix exactly (max stays the observed peak, mirroring the
    // peak-bytes convention in the engine's resume correction).
    let prefix = [4u64, 99, 2048, 7];
    let suffix = [1u64, 1_000_000];
    let ck = hist_of(&prefix);
    let mut live = efm_obs::hist::Histogram::default();
    for &v in prefix.iter().chain(&prefix).chain(&suffix) {
        live.record(v);
    }
    live.unmerge(&ck);
    let want = hist_of(&[&prefix[..], &suffix[..]].concat());
    assert_eq!(live.count, want.count);
    assert_eq!(live.sum, want.sum);
    assert_eq!(live.buckets, want.buckets);
    assert_eq!(live.max, 1_000_000, "max is a peak, not subtractable");
}

fn small_params() -> RandomNetworkParams {
    RandomNetworkParams {
        metabolites: 5,
        reactions: 9,
        reversible_prob: 0.35,
        mean_degree: 2.5,
        exchange_prob: 0.4,
        max_coeff: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Histogram merge is commutative: a ⊔ b == b ⊔ a.
    #[test]
    fn histogram_merge_commutes(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..40),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), so
    /// rank-0 can aggregate partial merges in any tree shape.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
        c in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge-then-unmerge round-trips counts, sums and buckets for any
    /// pair of histograms whose sums stay clear of saturation (max stays
    /// the peak by design).
    #[test]
    fn histogram_unmerge_inverts_merge(
        a in proptest::collection::vec(0u64..1 << 50, 0..40),
        b in proptest::collection::vec(0u64..1 << 50, 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut m = ha.clone();
        m.merge(&hb);
        m.unmerge(&hb);
        prop_assert_eq!(m.count, ha.count);
        prop_assert_eq!(m.sum, ha.sum);
        prop_assert_eq!(m.buckets, ha.buckets);
    }

    /// Tracing on vs. off is observationally inert across random networks
    /// and all three backends.
    #[test]
    fn tracing_on_off_is_inert(seed in 0u64..5000, backend_pick in 0usize..3) {
        let _g = OBS_LOCK.lock().unwrap();
        let net = random_network(&small_params(), seed);
        let opts = EfmOptions { max_modes: Some(20_000), ..Default::default() };
        let backend = match backend_pick {
            0 => Backend::Serial,
            1 => Backend::Rayon,
            _ => Backend::Cluster(efm_cluster::ClusterConfig::new(3)),
        };
        efm_obs::set_enabled(false);
        let plain = enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).unwrap();
        let (traced_out, _) =
            traced(|| enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).unwrap());
        prop_assert_eq!(&plain.efms, &traced_out.efms);
        prop_assert_eq!(plain.stats.candidates_generated, traced_out.stats.candidates_generated);
        prop_assert_eq!(plain.stats.tree_pruned, traced_out.stats.tree_pruned);
        prop_assert_eq!(plain.stats.dedup_hits, traced_out.stats.dedup_hits);
        prop_assert_eq!(plain.stats.rank_tests, traced_out.stats.rank_tests);
    }
}
