#!/usr/bin/env bash
# bench_guard.sh — perf-regression guard over BENCH_*.json files.
#
#   tools/bench_guard.sh --current NEW.json [--baseline OLD.json] CHECK...
#
# Each CHECK is one of:
#   KEY<=VALUE   absolute ceiling:  current.KEY <= VALUE
#   KEY>=VALUE   absolute floor:    current.KEY >= VALUE
#   KEY:PCT      relative ceiling:  current.KEY <= baseline.KEY * (1 + PCT/100)
#                (requires --baseline; use for lower-is-better metrics
#                 like wall seconds, with a tolerance wide enough for
#                 shared-runner noise)
#
# Keys are matched at any depth by first occurrence, so prefer
# unambiguous top-level names (overhead_pct, total_speedup, traced_s).
# Exits 0 when every check passes, 1 with a message per violation.
#
#   tools/bench_guard.sh --current BENCH_pr9.json --baseline BENCH_pr4.json \
#       "overhead_pct<=2.0" "traced_s:50"
set -euo pipefail

usage() {
    echo "usage: bench_guard.sh --current NEW.json [--baseline OLD.json]" >&2
    echo "                      \"KEY<=VALUE\" | \"KEY>=VALUE\" | \"KEY:PCT\" ..." >&2
    exit 2
}

current=""
baseline=""
checks=()
while [ $# -gt 0 ]; do
    case "$1" in
        --current) current="${2:?}"; shift 2 ;;
        --baseline) baseline="${2:?}"; shift 2 ;;
        -h|--help) usage ;;
        *) checks+=("$1"); shift ;;
    esac
done
[ -n "$current" ] && [ "${#checks[@]}" -gt 0 ] || usage
[ -r "$current" ] || { echo "bench_guard: cannot read $current" >&2; exit 1; }

# First numeric value for "KEY": in FILE (flat extraction, no JSON dep).
get() {
    grep -o "\"$2\"[[:space:]]*:[[:space:]]*-\{0,1\}[0-9.eE+-]*" "$1" \
        | head -1 | sed 's/.*:[[:space:]]*//'
}

fail=0
for c in "${checks[@]}"; do
    case "$c" in
        *"<="*)
            key="${c%%<=*}"; lim="${c#*<=}"
            cur="$(get "$current" "$key")"
            if [ -z "$cur" ]; then
                echo "bench_guard: FAIL: $key missing in $current"; fail=1; continue
            fi
            if [ "$(awk -v a="$cur" -v b="$lim" 'BEGIN{print (a<=b)?1:0}')" = 1 ]; then
                echo "bench_guard: ok: $key = $cur <= $lim"
            else
                echo "bench_guard: FAIL: $key = $cur exceeds ceiling $lim"; fail=1
            fi ;;
        *">="*)
            key="${c%%>=*}"; lim="${c#*>=}"
            cur="$(get "$current" "$key")"
            if [ -z "$cur" ]; then
                echo "bench_guard: FAIL: $key missing in $current"; fail=1; continue
            fi
            if [ "$(awk -v a="$cur" -v b="$lim" 'BEGIN{print (a>=b)?1:0}')" = 1 ]; then
                echo "bench_guard: ok: $key = $cur >= $lim"
            else
                echo "bench_guard: FAIL: $key = $cur below floor $lim"; fail=1
            fi ;;
        *:*)
            key="${c%%:*}"; tol="${c#*:}"
            [ -n "$baseline" ] || { echo "bench_guard: $c needs --baseline" >&2; exit 2; }
            [ -r "$baseline" ] || { echo "bench_guard: cannot read $baseline" >&2; exit 1; }
            cur="$(get "$current" "$key")"
            base="$(get "$baseline" "$key")"
            if [ -z "$cur" ] || [ -z "$base" ]; then
                echo "bench_guard: FAIL: $key missing in $current or $baseline"; fail=1; continue
            fi
            lim="$(awk -v b="$base" -v t="$tol" 'BEGIN{printf "%.9g", b*(1+t/100)}')"
            if [ "$(awk -v a="$cur" -v b="$lim" 'BEGIN{print (a<=b)?1:0}')" = 1 ]; then
                echo "bench_guard: ok: $key = $cur <= $lim (baseline $base +${tol}%)"
            else
                echo "bench_guard: FAIL: $key = $cur regressed past $lim (baseline $base +${tol}%)"
                fail=1
            fi ;;
        *) echo "bench_guard: bad check $c" >&2; usage ;;
    esac
done
exit "$fail"
