#!/usr/bin/env bash
# Validate a Chrome trace_event JSON file produced by `--trace-out`.
#
#   tools/validate_trace.sh TRACE.json [--require-tracks N] [--require-names a,b,c]
#                                      [--require-flows N]
#
# Thin wrapper over the schema validator in crates/obs; builds it on first
# use. Exit 0 when the trace is well-formed (valid JSON, per-track
# monotonic timestamps, balanced B/E span nesting, paired flow chains —
# every ph:"s" start has exactly one ph:"f" finish — and required tracks,
# event names and flow count present), 1 otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p efm-obs --bin validate-trace -- "$@"
