/root/repo/target/release/libefm_bitset.rlib: /root/repo/crates/bitset/src/lib.rs /root/repo/crates/bitset/src/tree.rs
