/root/repo/target/release/deps/efm_bench-f7c18a1d1874f954.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libefm_bench-f7c18a1d1874f954.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libefm_bench-f7c18a1d1874f954.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
