/root/repo/target/release/deps/table4-d7a4d65f1cfb29dd.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-d7a4d65f1cfb29dd: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
