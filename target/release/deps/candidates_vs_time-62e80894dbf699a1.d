/root/repo/target/release/deps/candidates_vs_time-62e80894dbf699a1.d: crates/bench/src/bin/candidates_vs_time.rs

/root/repo/target/release/deps/candidates_vs_time-62e80894dbf699a1: crates/bench/src/bin/candidates_vs_time.rs

crates/bench/src/bin/candidates_vs_time.rs:
