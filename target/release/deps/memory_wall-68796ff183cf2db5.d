/root/repo/target/release/deps/memory_wall-68796ff183cf2db5.d: crates/bench/src/bin/memory_wall.rs

/root/repo/target/release/deps/memory_wall-68796ff183cf2db5: crates/bench/src/bin/memory_wall.rs

crates/bench/src/bin/memory_wall.rs:
