/root/repo/target/release/deps/efm_suite-0883c6eb5c202e84.d: src/lib.rs

/root/repo/target/release/deps/libefm_suite-0883c6eb5c202e84.rlib: src/lib.rs

/root/repo/target/release/deps/libefm_suite-0883c6eb5c202e84.rmeta: src/lib.rs

src/lib.rs:
