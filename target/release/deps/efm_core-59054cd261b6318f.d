/root/repo/target/release/deps/efm_core-59054cd261b6318f.d: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs

/root/repo/target/release/deps/libefm_core-59054cd261b6318f.rlib: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs

/root/repo/target/release/deps/libefm_core-59054cd261b6318f.rmeta: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs

crates/efm/src/lib.rs:
crates/efm/src/api.rs:
crates/efm/src/apps.rs:
crates/efm/src/bridge.rs:
crates/efm/src/cluster_algo.rs:
crates/efm/src/divide.rs:
crates/efm/src/drivers.rs:
crates/efm/src/engine.rs:
crates/efm/src/io.rs:
crates/efm/src/oracle.rs:
crates/efm/src/problem.rs:
crates/efm/src/recover.rs:
crates/efm/src/types.rs:
