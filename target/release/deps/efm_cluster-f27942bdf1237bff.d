/root/repo/target/release/deps/efm_cluster-f27942bdf1237bff.d: crates/cluster/src/lib.rs

/root/repo/target/release/deps/libefm_cluster-f27942bdf1237bff.rlib: crates/cluster/src/lib.rs

/root/repo/target/release/deps/libefm_cluster-f27942bdf1237bff.rmeta: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
