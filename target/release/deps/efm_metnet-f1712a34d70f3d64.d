/root/repo/target/release/deps/efm_metnet-f1712a34d70f3d64.d: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

/root/repo/target/release/deps/libefm_metnet-f1712a34d70f3d64.rlib: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

/root/repo/target/release/deps/libefm_metnet-f1712a34d70f3d64.rmeta: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

crates/metnet/src/lib.rs:
crates/metnet/src/compress.rs:
crates/metnet/src/examples.rs:
crates/metnet/src/generator.rs:
crates/metnet/src/metatool.rs:
crates/metnet/src/model.rs:
crates/metnet/src/parser.rs:
crates/metnet/src/stats.rs:
crates/metnet/src/yeast.rs:
