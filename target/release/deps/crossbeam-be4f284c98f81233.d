/root/repo/target/release/deps/crossbeam-be4f284c98f81233.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-be4f284c98f81233.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-be4f284c98f81233.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
