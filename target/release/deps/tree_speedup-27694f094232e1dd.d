/root/repo/target/release/deps/tree_speedup-27694f094232e1dd.d: crates/bench/src/bin/tree_speedup.rs

/root/repo/target/release/deps/tree_speedup-27694f094232e1dd: crates/bench/src/bin/tree_speedup.rs

crates/bench/src/bin/tree_speedup.rs:
