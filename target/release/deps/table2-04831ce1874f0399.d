/root/repo/target/release/deps/table2-04831ce1874f0399.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-04831ce1874f0399: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
