/root/repo/target/release/deps/efm_compute-a1583095a4aa8753.d: crates/efm-cli/src/main.rs

/root/repo/target/release/deps/efm_compute-a1583095a4aa8753: crates/efm-cli/src/main.rs

crates/efm-cli/src/main.rs:
