/root/repo/target/release/deps/efm_bitset-11aedafe8e1f1624.d: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

/root/repo/target/release/deps/libefm_bitset-11aedafe8e1f1624.rlib: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

/root/repo/target/release/deps/libefm_bitset-11aedafe8e1f1624.rmeta: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

crates/bitset/src/lib.rs:
crates/bitset/src/tree.rs:
