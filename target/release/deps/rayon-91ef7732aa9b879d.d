/root/repo/target/release/deps/rayon-91ef7732aa9b879d.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-91ef7732aa9b879d.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-91ef7732aa9b879d.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
