/root/repo/target/release/deps/proptest-42db8443d3125f22.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-42db8443d3125f22.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-42db8443d3125f22.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
