/root/repo/target/release/deps/table3-6cf63979557770d7.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-6cf63979557770d7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
