/root/repo/target/release/deps/efm_numeric-675fccbe9fca1e4e.d: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

/root/repo/target/release/deps/libefm_numeric-675fccbe9fca1e4e.rlib: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

/root/repo/target/release/deps/libefm_numeric-675fccbe9fca1e4e.rmeta: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

crates/numeric/src/lib.rs:
crates/numeric/src/biguint.rs:
crates/numeric/src/dynint.rs:
crates/numeric/src/f64tol.rs:
crates/numeric/src/rational.rs:
crates/numeric/src/scalar.rs:
