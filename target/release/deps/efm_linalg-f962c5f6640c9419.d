/root/repo/target/release/deps/efm_linalg-f962c5f6640c9419.d: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

/root/repo/target/release/deps/libefm_linalg-f962c5f6640c9419.rlib: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

/root/repo/target/release/deps/libefm_linalg-f962c5f6640c9419.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

crates/linalg/src/lib.rs:
crates/linalg/src/elim.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/nnls.rs:
crates/linalg/src/simplex.rs:
