/root/repo/target/release/deps/parking_lot-1668d8248899b86d.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1668d8248899b86d.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1668d8248899b86d.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
