/root/repo/target/release/libefm_cluster.rlib: /root/repo/crates/cluster/src/lib.rs /root/repo/shims/crossbeam/src/lib.rs /root/repo/shims/parking_lot/src/lib.rs
