/root/repo/target/debug/deps/ablations-e8573c9a013fa4a4.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e8573c9a013fa4a4.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
