/root/repo/target/debug/deps/efm_cluster-0f6bcfd14928f04f.d: crates/cluster/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_cluster-0f6bcfd14928f04f.rmeta: crates/cluster/src/lib.rs Cargo.toml

crates/cluster/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
