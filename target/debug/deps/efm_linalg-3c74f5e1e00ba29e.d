/root/repo/target/debug/deps/efm_linalg-3c74f5e1e00ba29e.d: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libefm_linalg-3c74f5e1e00ba29e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/elim.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/nnls.rs:
crates/linalg/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
