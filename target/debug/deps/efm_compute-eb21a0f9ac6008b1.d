/root/repo/target/debug/deps/efm_compute-eb21a0f9ac6008b1.d: crates/efm-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libefm_compute-eb21a0f9ac6008b1.rmeta: crates/efm-cli/src/main.rs Cargo.toml

crates/efm-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
