/root/repo/target/debug/deps/efm_linalg-128a30e297b43c1e.d: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libefm_linalg-128a30e297b43c1e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/elim.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/nnls.rs:
crates/linalg/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
