/root/repo/target/debug/deps/efm_linalg-9a0944951489c46d.d: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

/root/repo/target/debug/deps/libefm_linalg-9a0944951489c46d.rlib: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

/root/repo/target/debug/deps/libefm_linalg-9a0944951489c46d.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

crates/linalg/src/lib.rs:
crates/linalg/src/elim.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/nnls.rs:
crates/linalg/src/simplex.rs:
