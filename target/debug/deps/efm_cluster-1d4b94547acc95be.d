/root/repo/target/debug/deps/efm_cluster-1d4b94547acc95be.d: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/efm_cluster-1d4b94547acc95be: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
