/root/repo/target/debug/deps/efm_metnet-03f5fbf5cb77dff4.d: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

/root/repo/target/debug/deps/libefm_metnet-03f5fbf5cb77dff4.rlib: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

/root/repo/target/debug/deps/libefm_metnet-03f5fbf5cb77dff4.rmeta: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

crates/metnet/src/lib.rs:
crates/metnet/src/compress.rs:
crates/metnet/src/examples.rs:
crates/metnet/src/generator.rs:
crates/metnet/src/metatool.rs:
crates/metnet/src/model.rs:
crates/metnet/src/parser.rs:
crates/metnet/src/stats.rs:
crates/metnet/src/yeast.rs:
