/root/repo/target/debug/deps/efm_bitset-53c67680071df64c.d: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

/root/repo/target/debug/deps/efm_bitset-53c67680071df64c: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

crates/bitset/src/lib.rs:
crates/bitset/src/tree.rs:
