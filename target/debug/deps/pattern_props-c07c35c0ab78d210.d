/root/repo/target/debug/deps/pattern_props-c07c35c0ab78d210.d: crates/bitset/tests/pattern_props.rs

/root/repo/target/debug/deps/pattern_props-c07c35c0ab78d210: crates/bitset/tests/pattern_props.rs

crates/bitset/tests/pattern_props.rs:
