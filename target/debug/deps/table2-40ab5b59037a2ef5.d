/root/repo/target/debug/deps/table2-40ab5b59037a2ef5.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-40ab5b59037a2ef5.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
