/root/repo/target/debug/deps/arithmetic_props-3c382a9c68f1c42d.d: crates/numeric/tests/arithmetic_props.rs

/root/repo/target/debug/deps/arithmetic_props-3c382a9c68f1c42d: crates/numeric/tests/arithmetic_props.rs

crates/numeric/tests/arithmetic_props.rs:
