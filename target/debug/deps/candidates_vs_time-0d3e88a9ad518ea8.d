/root/repo/target/debug/deps/candidates_vs_time-0d3e88a9ad518ea8.d: crates/bench/src/bin/candidates_vs_time.rs Cargo.toml

/root/repo/target/debug/deps/libcandidates_vs_time-0d3e88a9ad518ea8.rmeta: crates/bench/src/bin/candidates_vs_time.rs Cargo.toml

crates/bench/src/bin/candidates_vs_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
