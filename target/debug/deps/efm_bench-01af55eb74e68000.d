/root/repo/target/debug/deps/efm_bench-01af55eb74e68000.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_bench-01af55eb74e68000.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
