/root/repo/target/debug/deps/cluster_behavior-1b8e09ed0fb29871.d: tests/cluster_behavior.rs

/root/repo/target/debug/deps/cluster_behavior-1b8e09ed0fb29871: tests/cluster_behavior.rs

tests/cluster_behavior.rs:
