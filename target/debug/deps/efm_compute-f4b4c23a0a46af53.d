/root/repo/target/debug/deps/efm_compute-f4b4c23a0a46af53.d: crates/efm-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libefm_compute-f4b4c23a0a46af53.rmeta: crates/efm-cli/src/main.rs Cargo.toml

crates/efm-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
