/root/repo/target/debug/deps/arithmetic_props-33ca15f29f289fd9.d: crates/numeric/tests/arithmetic_props.rs Cargo.toml

/root/repo/target/debug/deps/libarithmetic_props-33ca15f29f289fd9.rmeta: crates/numeric/tests/arithmetic_props.rs Cargo.toml

crates/numeric/tests/arithmetic_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
