/root/repo/target/debug/deps/efm_numeric-67de115f04fae94d.d: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs Cargo.toml

/root/repo/target/debug/deps/libefm_numeric-67de115f04fae94d.rmeta: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs Cargo.toml

crates/numeric/src/lib.rs:
crates/numeric/src/biguint.rs:
crates/numeric/src/dynint.rs:
crates/numeric/src/f64tol.rs:
crates/numeric/src/rational.rs:
crates/numeric/src/scalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
