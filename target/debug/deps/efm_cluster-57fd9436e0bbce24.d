/root/repo/target/debug/deps/efm_cluster-57fd9436e0bbce24.d: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libefm_cluster-57fd9436e0bbce24.rlib: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libefm_cluster-57fd9436e0bbce24.rmeta: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
