/root/repo/target/debug/deps/invariants-e446d59b004100f2.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-e446d59b004100f2: tests/invariants.rs

tests/invariants.rs:
