/root/repo/target/debug/deps/table4-e5d9c10061e1c64d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-e5d9c10061e1c64d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
