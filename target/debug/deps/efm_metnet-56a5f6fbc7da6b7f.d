/root/repo/target/debug/deps/efm_metnet-56a5f6fbc7da6b7f.d: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs Cargo.toml

/root/repo/target/debug/deps/libefm_metnet-56a5f6fbc7da6b7f.rmeta: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs Cargo.toml

crates/metnet/src/lib.rs:
crates/metnet/src/compress.rs:
crates/metnet/src/examples.rs:
crates/metnet/src/generator.rs:
crates/metnet/src/metatool.rs:
crates/metnet/src/model.rs:
crates/metnet/src/parser.rs:
crates/metnet/src/stats.rs:
crates/metnet/src/yeast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
