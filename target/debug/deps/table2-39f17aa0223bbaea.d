/root/repo/target/debug/deps/table2-39f17aa0223bbaea.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-39f17aa0223bbaea: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
