/root/repo/target/debug/deps/efm_core-1b85a089035652b4.d: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs

/root/repo/target/debug/deps/efm_core-1b85a089035652b4: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs

crates/efm/src/lib.rs:
crates/efm/src/api.rs:
crates/efm/src/apps.rs:
crates/efm/src/bridge.rs:
crates/efm/src/cluster_algo.rs:
crates/efm/src/divide.rs:
crates/efm/src/drivers.rs:
crates/efm/src/engine.rs:
crates/efm/src/io.rs:
crates/efm/src/oracle.rs:
crates/efm/src/problem.rs:
crates/efm/src/recover.rs:
crates/efm/src/types.rs:
