/root/repo/target/debug/deps/efm_linalg-28577e4faab10b55.d: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

/root/repo/target/debug/deps/efm_linalg-28577e4faab10b55: crates/linalg/src/lib.rs crates/linalg/src/elim.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/nnls.rs crates/linalg/src/simplex.rs

crates/linalg/src/lib.rs:
crates/linalg/src/elim.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/nnls.rs:
crates/linalg/src/simplex.rs:
