/root/repo/target/debug/deps/cli-29660e222e451045.d: crates/efm-cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-29660e222e451045.rmeta: crates/efm-cli/tests/cli.rs Cargo.toml

crates/efm-cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_efm-compute=placeholder:efm-compute
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
