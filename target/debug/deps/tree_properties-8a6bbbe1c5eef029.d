/root/repo/target/debug/deps/tree_properties-8a6bbbe1c5eef029.d: tests/tree_properties.rs

/root/repo/target/debug/deps/tree_properties-8a6bbbe1c5eef029: tests/tree_properties.rs

tests/tree_properties.rs:
