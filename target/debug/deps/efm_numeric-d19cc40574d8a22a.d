/root/repo/target/debug/deps/efm_numeric-d19cc40574d8a22a.d: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

/root/repo/target/debug/deps/efm_numeric-d19cc40574d8a22a: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

crates/numeric/src/lib.rs:
crates/numeric/src/biguint.rs:
crates/numeric/src/dynint.rs:
crates/numeric/src/f64tol.rs:
crates/numeric/src/rational.rs:
crates/numeric/src/scalar.rs:
