/root/repo/target/debug/deps/efm_suite-e76aab5bba89b07a.d: src/lib.rs

/root/repo/target/debug/deps/libefm_suite-e76aab5bba89b07a.rlib: src/lib.rs

/root/repo/target/debug/deps/libefm_suite-e76aab5bba89b07a.rmeta: src/lib.rs

src/lib.rs:
