/root/repo/target/debug/deps/tree_speedup-afe1d1b5582cd131.d: crates/bench/src/bin/tree_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtree_speedup-afe1d1b5582cd131.rmeta: crates/bench/src/bin/tree_speedup.rs Cargo.toml

crates/bench/src/bin/tree_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
