/root/repo/target/debug/deps/tree_speedup-cd5b0304c773f754.d: crates/bench/src/bin/tree_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtree_speedup-cd5b0304c773f754.rmeta: crates/bench/src/bin/tree_speedup.rs Cargo.toml

crates/bench/src/bin/tree_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
