/root/repo/target/debug/deps/efm_compute-5d93fb5aa025be16.d: crates/efm-cli/src/main.rs

/root/repo/target/debug/deps/efm_compute-5d93fb5aa025be16: crates/efm-cli/src/main.rs

crates/efm-cli/src/main.rs:
