/root/repo/target/debug/deps/paper_worked_example-9250475f15319677.d: tests/paper_worked_example.rs

/root/repo/target/debug/deps/paper_worked_example-9250475f15319677: tests/paper_worked_example.rs

tests/paper_worked_example.rs:
