/root/repo/target/debug/deps/memory_wall-f14dff3921d3135c.d: crates/bench/src/bin/memory_wall.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_wall-f14dff3921d3135c.rmeta: crates/bench/src/bin/memory_wall.rs Cargo.toml

crates/bench/src/bin/memory_wall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
