/root/repo/target/debug/deps/pipeline-baa8b8535396acb0.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-baa8b8535396acb0.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
