/root/repo/target/debug/deps/efm_suite-74ba7e5e28735277.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_suite-74ba7e5e28735277.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
