/root/repo/target/debug/deps/linalg_props-acacd7461f01d56c.d: crates/linalg/tests/linalg_props.rs Cargo.toml

/root/repo/target/debug/deps/liblinalg_props-acacd7461f01d56c.rmeta: crates/linalg/tests/linalg_props.rs Cargo.toml

crates/linalg/tests/linalg_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
