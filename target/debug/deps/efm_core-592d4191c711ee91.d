/root/repo/target/debug/deps/efm_core-592d4191c711ee91.d: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libefm_core-592d4191c711ee91.rmeta: crates/efm/src/lib.rs crates/efm/src/api.rs crates/efm/src/apps.rs crates/efm/src/bridge.rs crates/efm/src/cluster_algo.rs crates/efm/src/divide.rs crates/efm/src/drivers.rs crates/efm/src/engine.rs crates/efm/src/io.rs crates/efm/src/oracle.rs crates/efm/src/problem.rs crates/efm/src/recover.rs crates/efm/src/types.rs Cargo.toml

crates/efm/src/lib.rs:
crates/efm/src/api.rs:
crates/efm/src/apps.rs:
crates/efm/src/bridge.rs:
crates/efm/src/cluster_algo.rs:
crates/efm/src/divide.rs:
crates/efm/src/drivers.rs:
crates/efm/src/engine.rs:
crates/efm/src/io.rs:
crates/efm/src/oracle.rs:
crates/efm/src/problem.rs:
crates/efm/src/recover.rs:
crates/efm/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
