/root/repo/target/debug/deps/table4-ca8269f6fcb328cc.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-ca8269f6fcb328cc.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
