/root/repo/target/debug/deps/cluster_behavior-f3a82c6d30e15cad.d: tests/cluster_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_behavior-f3a82c6d30e15cad.rmeta: tests/cluster_behavior.rs Cargo.toml

tests/cluster_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
