/root/repo/target/debug/deps/invariants-3023d3450135b97b.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-3023d3450135b97b.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
