/root/repo/target/debug/deps/table2-56f6f025758a96af.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-56f6f025758a96af.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
