/root/repo/target/debug/deps/efm_bench-b10565eff001765f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefm_bench-b10565eff001765f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefm_bench-b10565eff001765f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
