/root/repo/target/debug/deps/pattern_props-9c1813bf46b8c778.d: crates/bitset/tests/pattern_props.rs Cargo.toml

/root/repo/target/debug/deps/libpattern_props-9c1813bf46b8c778.rmeta: crates/bitset/tests/pattern_props.rs Cargo.toml

crates/bitset/tests/pattern_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
