/root/repo/target/debug/deps/yeast_lite-179ba39eafe5b1e6.d: tests/yeast_lite.rs

/root/repo/target/debug/deps/yeast_lite-179ba39eafe5b1e6: tests/yeast_lite.rs

tests/yeast_lite.rs:
