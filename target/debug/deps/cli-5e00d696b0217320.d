/root/repo/target/debug/deps/cli-5e00d696b0217320.d: crates/efm-cli/tests/cli.rs

/root/repo/target/debug/deps/cli-5e00d696b0217320: crates/efm-cli/tests/cli.rs

crates/efm-cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_efm-compute=/root/repo/target/debug/efm-compute
