/root/repo/target/debug/deps/memory_wall-be23a5bb9d8510e3.d: crates/bench/src/bin/memory_wall.rs

/root/repo/target/debug/deps/memory_wall-be23a5bb9d8510e3: crates/bench/src/bin/memory_wall.rs

crates/bench/src/bin/memory_wall.rs:
