/root/repo/target/debug/deps/table3-4f1ff019b5a4a312.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-4f1ff019b5a4a312: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
