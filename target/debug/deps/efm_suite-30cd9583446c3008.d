/root/repo/target/debug/deps/efm_suite-30cd9583446c3008.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_suite-30cd9583446c3008.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
