/root/repo/target/debug/deps/efm_bench-ca97f569c43988a5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_bench-ca97f569c43988a5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
