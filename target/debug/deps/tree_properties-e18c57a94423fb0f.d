/root/repo/target/debug/deps/tree_properties-e18c57a94423fb0f.d: tests/tree_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtree_properties-e18c57a94423fb0f.rmeta: tests/tree_properties.rs Cargo.toml

tests/tree_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
