/root/repo/target/debug/deps/consistency-ce274c21acfe3f47.d: tests/consistency.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency-ce274c21acfe3f47.rmeta: tests/consistency.rs Cargo.toml

tests/consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
