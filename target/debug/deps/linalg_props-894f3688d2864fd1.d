/root/repo/target/debug/deps/linalg_props-894f3688d2864fd1.d: crates/linalg/tests/linalg_props.rs

/root/repo/target/debug/deps/linalg_props-894f3688d2864fd1: crates/linalg/tests/linalg_props.rs

crates/linalg/tests/linalg_props.rs:
