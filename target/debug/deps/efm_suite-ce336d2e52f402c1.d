/root/repo/target/debug/deps/efm_suite-ce336d2e52f402c1.d: src/lib.rs

/root/repo/target/debug/deps/efm_suite-ce336d2e52f402c1: src/lib.rs

src/lib.rs:
