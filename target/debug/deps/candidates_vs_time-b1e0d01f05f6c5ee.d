/root/repo/target/debug/deps/candidates_vs_time-b1e0d01f05f6c5ee.d: crates/bench/src/bin/candidates_vs_time.rs

/root/repo/target/debug/deps/candidates_vs_time-b1e0d01f05f6c5ee: crates/bench/src/bin/candidates_vs_time.rs

crates/bench/src/bin/candidates_vs_time.rs:
