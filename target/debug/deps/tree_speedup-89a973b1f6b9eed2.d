/root/repo/target/debug/deps/tree_speedup-89a973b1f6b9eed2.d: crates/bench/src/bin/tree_speedup.rs

/root/repo/target/debug/deps/tree_speedup-89a973b1f6b9eed2: crates/bench/src/bin/tree_speedup.rs

crates/bench/src/bin/tree_speedup.rs:
