/root/repo/target/debug/deps/consistency-02c082cf5fb3d436.d: tests/consistency.rs

/root/repo/target/debug/deps/consistency-02c082cf5fb3d436: tests/consistency.rs

tests/consistency.rs:
