/root/repo/target/debug/deps/candidates_vs_time-958649be9dd72fa2.d: crates/bench/src/bin/candidates_vs_time.rs Cargo.toml

/root/repo/target/debug/deps/libcandidates_vs_time-958649be9dd72fa2.rmeta: crates/bench/src/bin/candidates_vs_time.rs Cargo.toml

crates/bench/src/bin/candidates_vs_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
