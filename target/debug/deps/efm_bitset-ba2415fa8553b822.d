/root/repo/target/debug/deps/efm_bitset-ba2415fa8553b822.d: crates/bitset/src/lib.rs crates/bitset/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libefm_bitset-ba2415fa8553b822.rmeta: crates/bitset/src/lib.rs crates/bitset/src/tree.rs Cargo.toml

crates/bitset/src/lib.rs:
crates/bitset/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
