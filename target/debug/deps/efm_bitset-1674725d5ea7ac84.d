/root/repo/target/debug/deps/efm_bitset-1674725d5ea7ac84.d: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

/root/repo/target/debug/deps/libefm_bitset-1674725d5ea7ac84.rlib: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

/root/repo/target/debug/deps/libefm_bitset-1674725d5ea7ac84.rmeta: crates/bitset/src/lib.rs crates/bitset/src/tree.rs

crates/bitset/src/lib.rs:
crates/bitset/src/tree.rs:
