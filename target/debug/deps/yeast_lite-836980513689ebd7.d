/root/repo/target/debug/deps/yeast_lite-836980513689ebd7.d: tests/yeast_lite.rs Cargo.toml

/root/repo/target/debug/deps/libyeast_lite-836980513689ebd7.rmeta: tests/yeast_lite.rs Cargo.toml

tests/yeast_lite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
