/root/repo/target/debug/deps/memory_wall-d7f0861445625af0.d: crates/bench/src/bin/memory_wall.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_wall-d7f0861445625af0.rmeta: crates/bench/src/bin/memory_wall.rs Cargo.toml

crates/bench/src/bin/memory_wall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
