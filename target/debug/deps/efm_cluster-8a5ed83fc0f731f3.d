/root/repo/target/debug/deps/efm_cluster-8a5ed83fc0f731f3.d: crates/cluster/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefm_cluster-8a5ed83fc0f731f3.rmeta: crates/cluster/src/lib.rs Cargo.toml

crates/cluster/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
