/root/repo/target/debug/deps/efm_compute-185f4a156c42d602.d: crates/efm-cli/src/main.rs

/root/repo/target/debug/deps/efm_compute-185f4a156c42d602: crates/efm-cli/src/main.rs

crates/efm-cli/src/main.rs:
