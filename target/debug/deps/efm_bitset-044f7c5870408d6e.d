/root/repo/target/debug/deps/efm_bitset-044f7c5870408d6e.d: crates/bitset/src/lib.rs crates/bitset/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libefm_bitset-044f7c5870408d6e.rmeta: crates/bitset/src/lib.rs crates/bitset/src/tree.rs Cargo.toml

crates/bitset/src/lib.rs:
crates/bitset/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
