/root/repo/target/debug/deps/efm_numeric-9e7175b35b1ebc0b.d: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

/root/repo/target/debug/deps/libefm_numeric-9e7175b35b1ebc0b.rlib: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

/root/repo/target/debug/deps/libefm_numeric-9e7175b35b1ebc0b.rmeta: crates/numeric/src/lib.rs crates/numeric/src/biguint.rs crates/numeric/src/dynint.rs crates/numeric/src/f64tol.rs crates/numeric/src/rational.rs crates/numeric/src/scalar.rs

crates/numeric/src/lib.rs:
crates/numeric/src/biguint.rs:
crates/numeric/src/dynint.rs:
crates/numeric/src/f64tol.rs:
crates/numeric/src/rational.rs:
crates/numeric/src/scalar.rs:
