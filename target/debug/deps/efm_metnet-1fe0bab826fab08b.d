/root/repo/target/debug/deps/efm_metnet-1fe0bab826fab08b.d: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

/root/repo/target/debug/deps/efm_metnet-1fe0bab826fab08b: crates/metnet/src/lib.rs crates/metnet/src/compress.rs crates/metnet/src/examples.rs crates/metnet/src/generator.rs crates/metnet/src/metatool.rs crates/metnet/src/model.rs crates/metnet/src/parser.rs crates/metnet/src/stats.rs crates/metnet/src/yeast.rs

crates/metnet/src/lib.rs:
crates/metnet/src/compress.rs:
crates/metnet/src/examples.rs:
crates/metnet/src/generator.rs:
crates/metnet/src/metatool.rs:
crates/metnet/src/model.rs:
crates/metnet/src/parser.rs:
crates/metnet/src/stats.rs:
crates/metnet/src/yeast.rs:
