/root/repo/target/debug/deps/efm_bench-1c81b9536c8d0886.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/efm_bench-1c81b9536c8d0886: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
