/root/repo/target/debug/deps/paper_worked_example-6d815cc5d84f6bc3.d: tests/paper_worked_example.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_worked_example-6d815cc5d84f6bc3.rmeta: tests/paper_worked_example.rs Cargo.toml

tests/paper_worked_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
