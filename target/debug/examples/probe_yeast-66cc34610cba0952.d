/root/repo/target/debug/examples/probe_yeast-66cc34610cba0952.d: crates/efm/examples/probe_yeast.rs Cargo.toml

/root/repo/target/debug/examples/libprobe_yeast-66cc34610cba0952.rmeta: crates/efm/examples/probe_yeast.rs Cargo.toml

crates/efm/examples/probe_yeast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
