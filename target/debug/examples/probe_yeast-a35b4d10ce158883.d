/root/repo/target/debug/examples/probe_yeast-a35b4d10ce158883.d: crates/efm/examples/probe_yeast.rs

/root/repo/target/debug/examples/probe_yeast-a35b4d10ce158883: crates/efm/examples/probe_yeast.rs

crates/efm/examples/probe_yeast.rs:
