/root/repo/target/debug/examples/probe_cols-3712f6efdd107e50.d: crates/efm/examples/probe_cols.rs

/root/repo/target/debug/examples/probe_cols-3712f6efdd107e50: crates/efm/examples/probe_cols.rs

crates/efm/examples/probe_cols.rs:
