/root/repo/target/debug/examples/flux_variability-56c4ec488199dff6.d: examples/flux_variability.rs

/root/repo/target/debug/examples/flux_variability-56c4ec488199dff6: examples/flux_variability.rs

examples/flux_variability.rs:
