/root/repo/target/debug/examples/quickstart-6722ba76314c0669.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6722ba76314c0669: examples/quickstart.rs

examples/quickstart.rs:
