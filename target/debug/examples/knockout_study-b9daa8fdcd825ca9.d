/root/repo/target/debug/examples/knockout_study-b9daa8fdcd825ca9.d: examples/knockout_study.rs Cargo.toml

/root/repo/target/debug/examples/libknockout_study-b9daa8fdcd825ca9.rmeta: examples/knockout_study.rs Cargo.toml

examples/knockout_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
