/root/repo/target/debug/examples/flux_variability-0ea0a352c0a76988.d: examples/flux_variability.rs Cargo.toml

/root/repo/target/debug/examples/libflux_variability-0ea0a352c0a76988.rmeta: examples/flux_variability.rs Cargo.toml

examples/flux_variability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
