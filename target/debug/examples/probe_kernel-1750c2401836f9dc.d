/root/repo/target/debug/examples/probe_kernel-1750c2401836f9dc.d: crates/efm/examples/probe_kernel.rs

/root/repo/target/debug/examples/probe_kernel-1750c2401836f9dc: crates/efm/examples/probe_kernel.rs

crates/efm/examples/probe_kernel.rs:
