/root/repo/target/debug/examples/yeast_divide_and_conquer-b24753c3534f7d07.d: examples/yeast_divide_and_conquer.rs

/root/repo/target/debug/examples/yeast_divide_and_conquer-b24753c3534f7d07: examples/yeast_divide_and_conquer.rs

examples/yeast_divide_and_conquer.rs:
