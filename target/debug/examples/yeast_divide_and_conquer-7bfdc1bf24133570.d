/root/repo/target/debug/examples/yeast_divide_and_conquer-7bfdc1bf24133570.d: examples/yeast_divide_and_conquer.rs Cargo.toml

/root/repo/target/debug/examples/libyeast_divide_and_conquer-7bfdc1bf24133570.rmeta: examples/yeast_divide_and_conquer.rs Cargo.toml

examples/yeast_divide_and_conquer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
