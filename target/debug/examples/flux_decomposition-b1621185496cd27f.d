/root/repo/target/debug/examples/flux_decomposition-b1621185496cd27f.d: examples/flux_decomposition.rs Cargo.toml

/root/repo/target/debug/examples/libflux_decomposition-b1621185496cd27f.rmeta: examples/flux_decomposition.rs Cargo.toml

examples/flux_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
