/root/repo/target/debug/examples/quickstart-bbe01418b908713a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bbe01418b908713a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
