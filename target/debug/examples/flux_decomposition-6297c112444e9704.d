/root/repo/target/debug/examples/flux_decomposition-6297c112444e9704.d: examples/flux_decomposition.rs

/root/repo/target/debug/examples/flux_decomposition-6297c112444e9704: examples/flux_decomposition.rs

examples/flux_decomposition.rs:
