/root/repo/target/debug/examples/knockout_study-790bd705256613d0.d: examples/knockout_study.rs

/root/repo/target/debug/examples/knockout_study-790bd705256613d0: examples/knockout_study.rs

examples/knockout_study.rs:
