/root/repo/target/debug/examples/probe_cols-45c9fd729f5c09f2.d: crates/efm/examples/probe_cols.rs Cargo.toml

/root/repo/target/debug/examples/libprobe_cols-45c9fd729f5c09f2.rmeta: crates/efm/examples/probe_cols.rs Cargo.toml

crates/efm/examples/probe_cols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
