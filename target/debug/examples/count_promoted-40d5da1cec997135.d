/root/repo/target/debug/examples/count_promoted-40d5da1cec997135.d: crates/efm/examples/count_promoted.rs Cargo.toml

/root/repo/target/debug/examples/libcount_promoted-40d5da1cec997135.rmeta: crates/efm/examples/count_promoted.rs Cargo.toml

crates/efm/examples/count_promoted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
