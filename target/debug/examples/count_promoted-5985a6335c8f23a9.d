/root/repo/target/debug/examples/count_promoted-5985a6335c8f23a9.d: crates/efm/examples/count_promoted.rs

/root/repo/target/debug/examples/count_promoted-5985a6335c8f23a9: crates/efm/examples/count_promoted.rs

crates/efm/examples/count_promoted.rs:
