/root/repo/target/debug/examples/probe_kernel-8e4079ef8ad38379.d: crates/efm/examples/probe_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libprobe_kernel-8e4079ef8ad38379.rmeta: crates/efm/examples/probe_kernel.rs Cargo.toml

crates/efm/examples/probe_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
