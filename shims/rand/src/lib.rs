//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Implements the `Rng`/`SeedableRng` subset the workspace uses over a
//! SplitMix64 generator. Streams are deterministic per seed (which is all the
//! property tests and workload generators rely on) but do **not** reproduce
//! the upstream `StdRng` byte streams.

/// Uniform sampling support for `Rng::gen_range` argument types.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range using `next` as entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (((next)() as u128) << 64 | (next)() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (((next)() as u128) << 64 | (next)() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a value using `next` as entropy source.
    fn draw(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(next: &mut dyn FnMut() -> u64) -> $t {
                (next)() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw(next: &mut dyn FnMut() -> u64) -> u128 {
        ((next)() as u128) << 64 | (next)() as u128
    }
}

impl Standard for i128 {
    fn draw(next: &mut dyn FnMut() -> u64) -> i128 {
        u128::draw(next) as i128
    }
}

impl Standard for bool {
    fn draw(next: &mut dyn FnMut() -> u64) -> bool {
        (next)() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(next: &mut dyn FnMut() -> u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        ((next)() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing random number generator interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of [0,1]");
        let mut f = || self.next_u64();
        f64::draw(&mut f) < p
    }

    /// Uniform sample of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::draw(&mut f)
    }
}

/// Seedable construction interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64). Stand-in for rand's
    /// `StdRng`; same trait surface, different (but stable) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 rate was {hits}/10000");
    }

    #[test]
    fn gen_primitives() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u128 = rng.gen();
        let _: i128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
