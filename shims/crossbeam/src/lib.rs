//! Offline stand-in for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Provides the `crossbeam::channel` subset the cluster simulator uses: an
//! unbounded MPMC FIFO whose `Sender` and `Receiver` are both `Send + Sync`
//! (std's `mpsc::Sender` is not `Sync`, so it cannot back this API), with
//! crossbeam's disconnect semantics — `recv` fails once all senders are gone
//! and the queue has drained, `send` fails once all receivers are gone.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::send`] when all receivers are gone; carries
    /// the rejected message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.items.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty and
        /// at least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Dequeues the next message, blocking at most `timeout` while the
        /// channel is empty and at least one sender remains.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                (state, _) = self.shared.ready.wait_timeout(state, remaining).unwrap();
            }
        }

        /// Dequeues the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_roundtrip() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert_eq!(r.recv(), Ok(1));
        assert_eq!(r.recv(), Ok(2));
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (s, r) = unbounded::<u32>();
        let h = std::thread::spawn(move || r.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(s);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (s, r) = unbounded();
        assert_eq!(r.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        s.send(5).unwrap();
        assert_eq!(r.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(s);
        assert_eq!(r.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (s, r) = unbounded();
        drop(r);
        assert_eq!(s.send(7), Err(SendError(7)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (s, r) = unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                s.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = r.recv() {
            got.push(v);
            if got.len() == 100 {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
