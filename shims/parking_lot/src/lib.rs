//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: non-poisoning `lock()` that returns the guard directly.
//! Poisoned std locks are recovered transparently, matching parking_lot's
//! panic-transparent semantics closely enough for this workspace.

use std::sync;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock is usable after a panicking holder");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
