//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Implements the subset of proptest this workspace's property tests use: the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros, `Strategy` with
//! `prop_map` / `prop_flat_map`, integer range strategies, tuples,
//! `any::<T>()`, and `proptest::collection::vec`. Cases are generated from a
//! deterministic per-test seed (FNV-1a of the test name), so failures
//! reproduce exactly across runs. There is **no shrinking**: a failing case
//! is reported as-is with its case index and `Debug` rendering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic source of randomness handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in `[0, bound)` for 128-bit bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Widening rejection sampling over two 64-bit draws.
        loop {
            let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
            if raw <= zone {
                return raw % bound;
            }
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// The generated inputs do not satisfy a `prop_assume!` precondition;
    /// the runner retries with fresh inputs.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (input does not satisfy a precondition).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration. Only the knobs the workspace sets are modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on total rejected cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// Default config with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Integer range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty, $uwide:ty);* $(;)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as $uwide as u128;
                (self.start as $wide + rng.below_u128(span) as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide - lo as $wide) as $uwide as u128;
                if span == u128::MAX {
                    return rng.next_u64() as $t; // full 64-bit-or-less domain
                }
                (lo as $wide + rng.below_u128(span + 1) as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_int_ranges! {
    u8 => i128, u128; u16 => i128, u128; u32 => i128, u128; u64 => i128, u128;
    usize => i128, u128;
    i8 => i128, u128; i16 => i128, u128; i32 => i128, u128; i64 => i128, u128;
    isize => i128, u128;
}

// u128/i128 ranges: sample within the span via below_u128.
impl Strategy for std::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo;
        if span == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        lo + rng.below_u128(span + 1)
    }
}

impl Strategy for std::ops::RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        (self.start..=u128::MAX).generate(rng)
    }
}

impl Strategy for std::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(span) as i128)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>() via Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Test-runner internals used by the `proptest!` macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError};
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Executes `config.cases` generated cases of `test`, panicking on the first
/// failure with a reproducible description. Called by the `proptest!` macro.
pub fn run_cases<S, F>(name: &str, config: &ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let base_seed = fnv1a(name);
    let mut rejects: u32 = 0;
    let mut attempt: u64 = 0;
    let mut passed: u32 = 0;
    while passed < config.cases {
        // Distinct deterministic stream per attempt; reproducible run-to-run.
        let mut rng = TestRng::from_seed(base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejects} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {attempt} \
                     (seed {base_seed:#x}): {msg}\n  input: {rendered}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $($strat,)+ );
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    &strategy,
                    |__proptest_values| {
                        let ( $($arg,)+ ) = __proptest_values;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Skips the current case (with a retry) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::from_seed(7);
        for _ in 0..2000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (1u128..).generate(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = super::TestRng::from_seed(3);
        let strat = super::collection::vec(0usize..10, 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, super::collection::vec(-50i64..50, 0..8));
        let mut a = super::TestRng::from_seed(42);
        let mut b = super::TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(a in 0u32..100, xs in super::collection::vec(0usize..9, 0..6)) {
            prop_assert!(a < 100);
            for x in &xs {
                prop_assert!(*x < 9);
            }
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn assume_retries(v in 0u64..32) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        super::run_cases("always_fails", &ProptestConfig::with_cases(4), &(0u64..10,), |(_v,)| {
            Err(TestCaseError::fail("forced"))
        });
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| super::collection::vec(super::collection::vec(0i64..3, c), r));
        let mut rng = super::TestRng::from_seed(11);
        for _ in 0..200 {
            let m = strat.generate(&mut rng);
            assert!(!m.is_empty());
            let c = m[0].len();
            assert!(m.iter().all(|row| row.len() == c));
        }
    }
}
