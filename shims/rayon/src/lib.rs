//! Offline stand-in for the `rayon` crate (see `crates/shims/README.md`).
//!
//! Implements the parallel-iterator subset the workspace uses with *real*
//! parallelism: `collect` fans work out over scoped OS threads that pull item
//! indices from a shared atomic counter, so a skewed item cannot serialize
//! the batch (self-balancing, like rayon's work stealing at item
//! granularity). There is no persistent pool; threads are scoped per
//! `collect`/`join` call, which is cheap relative to the coarse tasks the
//! drivers submit.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads a parallel call fans out to.
pub fn current_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(a);
        let rb = b();
        (ha.join().expect("rayon::join closure panicked"), rb)
    })
}

/// An indexable, thread-shareable work source: the internal engine behind
/// every parallel iterator below.
pub trait ParSource: Sync {
    /// Produced item type.
    type Item: Send;
    /// Number of items.
    fn length(&self) -> usize;
    /// Computes item `idx` (called from worker threads).
    fn item(&self, idx: usize) -> Self::Item;
}

fn run_source<S: ParSource>(src: &S) -> Vec<S::Item> {
    let n = src.length();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(|i| src.item(i)).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<S::Item>> = (0..n).map(|_| None).collect();
    let parts: Vec<Vec<(usize, S::Item)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = &counter;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let idx = counter.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, src.item(idx)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    for part in parts {
        for (idx, item) in part {
            slots[idx] = Some(item);
        }
    }
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

/// A parallel iterator over an indexable source.
pub struct ParIter<S> {
    src: S,
}

/// Range source: items are the range values themselves.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;
            fn length(&self) -> usize {
                self.len
            }
            fn item(&self, idx: usize) -> $t {
                self.start + idx as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSource<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                ParIter { src: RangeSource { start: self.start, len } }
            }
        }
    )*};
}

impl_range_source!(usize, u32, u64);

/// Slice source for `par_iter()` on slices and vectors.
pub struct SliceSource<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn length(&self) -> usize {
        self.items.len()
    }
    fn item(&self, idx: usize) -> &'a T {
        &self.items[idx]
    }
}

/// Chunked slice source for `par_chunks`.
pub struct ChunkSource<'a, T> {
    items: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParSource for ChunkSource<'a, T> {
    type Item = &'a [T];
    fn length(&self) -> usize {
        self.items.len().div_ceil(self.chunk)
    }
    fn item(&self, idx: usize) -> &'a [T] {
        let start = idx * self.chunk;
        &self.items[start..(start + self.chunk).min(self.items.len())]
    }
}

/// Mapped source.
pub struct MapSource<S, F> {
    src: S,
    f: F,
}

impl<S, F, R> ParSource for MapSource<S, F>
where
    S: ParSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn length(&self) -> usize {
        self.src.length()
    }
    fn item(&self, idx: usize) -> R {
        (self.f)(self.src.item(idx))
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The resulting iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecSource<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            src: VecSource {
                items: self.into_iter().map(|v| std::cell::UnsafeCell::new(Some(v))).collect(),
            },
        }
    }
}

/// Owned-vector source. Items are taken by index through interior
/// mutability; the executor's atomic counter hands each index to exactly one
/// worker, so the slots are never aliased mutably.
pub struct VecSource<T> {
    items: Vec<std::cell::UnsafeCell<Option<T>>>,
}

// SAFETY: each UnsafeCell slot is accessed by exactly one worker thread (the
// one that claimed its index from the atomic counter), and T is Send.
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T: Send> ParSource for VecSource<T> {
    type Item = T;
    fn length(&self) -> usize {
        self.items.len()
    }
    fn item(&self, idx: usize) -> T {
        // SAFETY: idx is claimed exactly once (see Sync impl note).
        unsafe { (*self.items[idx].get()).take().expect("index visited once") }
    }
}

/// Borrowing conversions (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>>;
    /// Parallel iterator over `chunk`-sized sub-slices.
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunkSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>> {
        ParIter { src: SliceSource { items: self } }
    }
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunkSource<'_, T>> {
        assert!(chunk > 0, "par_chunks chunk size must be nonzero");
        ParIter { src: ChunkSource { items: self, chunk } }
    }
}

/// Collection from a parallel iterator.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the produced items (in index order).
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<S: ParSource> ParIter<S> {
    /// Maps each item through `f`.
    pub fn map<F, R>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        F: Fn(S::Item) -> R + Sync,
        R: Send,
    {
        ParIter { src: MapSource { src: self.src, f } }
    }

    /// Executes the pipeline across worker threads and collects results in
    /// index order.
    pub fn collect<C: FromParallelIterator<S::Item>>(self) -> C {
        C::from_ordered_items(run_source(&self.src))
    }

    /// Executes the pipeline for its side effects.
    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        let mapped = MapSource { src: self.src, f: |item| f(item) };
        run_source(&mapped);
    }
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<usize> = (5..5usize).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let strings: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> = strings.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 2);
        assert_eq!(out[99], 3);
    }

    #[test]
    fn par_chunks_covers_all_items() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn skewed_items_do_not_serialize() {
        // One heavy item among many light ones: dynamic index pulling means
        // total wall time ≈ heavy item, not heavy + light in one chunk.
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map(|i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                i
            })
            .collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
