//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Keeps the bench sources compiling and runnable without the statistics
//! machinery: every benchmark runs a fixed warm-up plus a timed batch and
//! prints mean wall time per iteration. Good enough for before/after
//! comparisons on one machine; not a replacement for criterion's analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Label for a parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    /// Measured mean time per iteration, filled by `iter`.
    last: Duration,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 10;

impl Bencher {
    /// Times `f` over a fixed batch and records the mean.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.last = start.elapsed() / MEASURE_ITERS as u32;
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { last: Duration::ZERO };
        f(&mut b);
        println!("bench {name:<50} {:>12.3?}/iter", b.last);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _parent: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { last: Duration::ZERO };
        f(&mut b);
        println!("  {name:<48} {:>12.3?}/iter", b.last);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { last: Duration::ZERO };
        f(&mut b, input);
        println!("  {:<48} {:>12.3?}/iter", id.to_string(), b.last);
        self
    }

    /// Ends the group (API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
