//! # efm-suite — parallel divide-and-conquer computation of elementary flux modes
//!
//! Umbrella crate re-exporting the public API of the workspace. See the
//! individual crates for details:
//!
//! * [`numeric`] — exact arithmetic ([`numeric::DynInt`], [`numeric::Rational`]),
//! * [`bitset`] — compact support patterns,
//! * [`linalg`] — exact dense linear algebra (rank, kernel),
//! * [`metnet`] — metabolic network model, parser, compression, datasets,
//! * [`cluster`] — simulated distributed-memory cluster,
//! * [`efm`] — the Nullspace Algorithm (serial / parallel / divide-and-conquer).

pub use efm_bitset as bitset;
pub use efm_cluster as cluster;
pub use efm_core as efm;
pub use efm_linalg as linalg;
pub use efm_metnet as metnet;
pub use efm_numeric as numeric;
