//! The combinatorial parallel Nullspace Algorithm (the paper's Algorithm 2)
//! on the simulated distributed-memory cluster.
//!
//! Every rank keeps a **full copy** of the current mode matrix — exactly the
//! memory weakness the paper's divide-and-conquer addition attacks. Each
//! iteration:
//!
//! 1. `ParallelGenerateEFMCands` — the rank processes its contiguous stripe
//!    of the `pos × neg` pair grid;
//! 2. `Sort&RemoveDuplicates` — locally;
//! 3. `RankTests` — locally;
//! 4. `Communicate&Merge` — allgather of the local survivor buffers, then a
//!    global sort+dedup (duplicates *across* ranks are possible);
//! 5. `RemoveNegColumns` + append — every rank advances to the identical
//!    next state.
//!
//! Phase wall-times and per-phase work counters are recorded through the
//! cluster's instrumentation. The memory meter charges the replicated mode
//! matrix, the rank's **local stripe buffers** (whose size varies across
//! ranks), and the merged candidate buffer; a failing charge on any single
//! rank aborts the whole run through the cluster's cooperative abort
//! propagation — peers blocked in the allgather are woken with
//! [`ClusterError::Aborted`] and `run_cluster` reports the originating
//! `MemoryExceeded`.
//!
//! Rank 0 can additionally write an iteration-boundary
//! [`EngineCheckpoint`](crate::checkpoint::EngineCheckpoint) after each
//! state advance (the state is identical on every rank at that point), so
//! an aborted run resumes from the last completed iteration.

use crate::bridge::EfmScalar;
use crate::checkpoint::{problem_fingerprint, CheckpointConfig, EngineCheckpoint};
use crate::engine::{CandidateBuf, CandidateSet, Engine};
use crate::problem::EfmProblem;
use crate::types::{CandidateTest, EfmError, EfmOptions, IterationStats, RunStats};
use efm_bitset::BitPattern;
use efm_cluster::{run_cluster, ClusterConfig, ClusterError, NodeCtx};
use std::time::{Duration, Instant};

/// Phase labels used with the cluster instrumentation (match Table II rows).
pub mod phases {
    /// Candidate generation.
    pub const GENERATE: &str = "gen cand";
    /// Local sort + duplicate removal.
    pub const DEDUP: &str = "sort/dedup";
    /// Pattern-tree filtering against existing zero-row modes.
    pub const TREE: &str = "tree filter";
    /// Local rank tests.
    pub const RANK: &str = "rank test";
    /// Allgather of candidate buffers.
    pub const COMMUNICATE: &str = "communicate";
    /// Bytes shipped through allgather (work counter, not a timer).
    pub const COMM_BYTES: &str = "comm bytes";
    /// Global merge + dedup + state advance.
    pub const MERGE: &str = "merge";
}

/// Result of one rank of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterNodeOutcome {
    /// Supports in reduced-reaction indices (identical on every rank; only
    /// rank 0's copy is used by callers). Empty when the run paused at a
    /// segment boundary before finishing.
    pub supports: Vec<Vec<usize>>,
    /// This rank's run statistics (stripe-local candidate counts).
    pub stats: RunStats,
    /// Rank 0's snapshot of the (replicated) engine state when a bounded
    /// segment paused before `eng.done()`; `None` on completion and on all
    /// other ranks.
    pub checkpoint: Option<EngineCheckpoint>,
}

/// Outcome of a cluster run plus per-rank reports.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Supports in reduced-reaction indices.
    pub supports: Vec<Vec<usize>>,
    /// Global statistics: pair counts are totals over the whole grid;
    /// phase times are the *maximum* over ranks per phase (the
    /// bulk-synchronous model of wall time).
    pub stats: RunStats,
    /// Per-rank phase times in seconds, keyed by phase label.
    pub per_rank: Vec<efm_cluster::NodeReport<ClusterNodeOutcome>>,
}

/// Runs Algorithm 2 on a simulated cluster of `cfg.nodes` ranks.
pub fn cluster_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    cfg: &ClusterConfig,
) -> Result<ClusterOutcome, EfmError> {
    cluster_supports_resumable::<P, S>(problem, opts, cfg, None, None)
}

/// Runs Algorithm 2 with optional resume-from-checkpoint and optional
/// iteration-boundary checkpoint writes (performed by rank 0; the state is
/// replicated, so one rank's snapshot is everyone's).
pub fn cluster_supports_resumable<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    cfg: &ClusterConfig,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
) -> Result<ClusterOutcome, EfmError> {
    let (out, _paused) = cluster_supports_segment::<P, S>(problem, opts, cfg, resume, ckpt, None)?;
    Ok(out)
}

/// Runs Algorithm 2 up to an iteration bound: like
/// [`cluster_supports_resumable`], but when `stop_after` is `Some(k)` the
/// replicated engine pauses before executing absolute iteration `k` and
/// rank 0 captures the state as an [`EngineCheckpoint`], returned alongside
/// the (partial) outcome. The scheduler's straggler path uses this to
/// re-split a slow subset's pair grid mid-run: resume the returned
/// checkpoint under a `ClusterConfig` with more nodes and the stripes
/// re-balance automatically (`rank * pairs / nodes` is recomputed each
/// iteration). A `None` second element means the run finished.
pub fn cluster_supports_segment<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    cfg: &ClusterConfig,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
    stop_after: Option<u64>,
) -> Result<(ClusterOutcome, Option<EngineCheckpoint>), EfmError> {
    // Surface width/checkpoint errors before spawning the cluster.
    match resume {
        Some(ck) => drop(ck.restore::<P, S>(problem, opts)?),
        None => drop(Engine::<P, S>::new(problem, opts)?),
    }

    let reports =
        run_cluster(cfg, |ctx| node_body::<P, S>(ctx, problem, opts, resume, ckpt, stop_after))?;

    // Aggregate: supports from rank 0; totals across ranks. Iterations
    // replayed from a checkpoint are already totals, so only count their
    // candidates once (not once per rank).
    let mut stats = RunStats::default();
    for rep in &reports {
        stats.candidates_generated += rep.value.stats.candidates_generated;
        stats.tree_pruned += rep.value.stats.tree_pruned;
        stats.dedup_hits += rep.value.stats.dedup_hits;
        stats.rank_tests += rep.value.stats.rank_tests;
        stats.comm_messages += rep.value.stats.comm_messages;
        stats.comm_bytes += rep.value.stats.comm_bytes;
        stats.kernel_blocks += rep.value.stats.kernel_blocks;
        stats.kernel_pruned += rep.value.stats.kernel_pruned;
        stats.stream_batches += rep.value.stats.stream_batches;
        stats.spill_bytes += rep.value.stats.spill_bytes;
        stats.peak_modes = stats.peak_modes.max(rep.value.stats.peak_modes);
        stats.peak_bytes = stats.peak_bytes.max(rep.peak_memory);
        stats.peak_transient_bytes =
            stats.peak_transient_bytes.max(rep.value.stats.peak_transient_bytes);
        stats.arena_peak_bytes = stats.arena_peak_bytes.max(rep.value.stats.arena_peak_bytes);
    }
    // All ranks resolve the same tier (same binary, same host); take it
    // from rank 0.
    stats.kernel_tier = reports[0].value.stats.kernel_tier.clone();
    if let Some(ck) = resume {
        let replicas = reports.len() as u64 - 1;
        stats.candidates_generated -= ck.stats.candidates_generated * replicas;
        stats.tree_pruned -= ck.stats.tree_pruned * replicas;
        stats.dedup_hits -= ck.stats.dedup_hits * replicas;
        stats.rank_tests -= ck.stats.rank_tests * replicas;
        stats.comm_messages -= ck.stats.comm_messages * replicas;
        stats.comm_bytes -= ck.stats.comm_bytes * replicas;
        stats.kernel_blocks -= ck.stats.kernel_blocks * replicas;
        stats.kernel_pruned -= ck.stats.kernel_pruned * replicas;
        stats.stream_batches -= ck.stats.stream_batches * replicas;
        stats.spill_bytes -= ck.stats.spill_bytes * replicas;
        // Peaks are high-water marks, not additive: `rep.peak_memory`
        // above comes from the resumed segment's *fresh* meters, which
        // know nothing about the pre-checkpoint high water. A resumed run
        // must never report a lower peak than the run it continues.
        stats.peak_bytes = stats.peak_bytes.max(ck.stats.peak_bytes);
        stats.peak_modes = stats.peak_modes.max(ck.stats.peak_modes);
        stats.peak_transient_bytes = stats.peak_transient_bytes.max(ck.stats.peak_transient_bytes);
        stats.arena_peak_bytes = stats.arena_peak_bytes.max(ck.stats.arena_peak_bytes);
    }
    // Iteration records: take rank 0's skeleton, with pair counts summed
    // across ranks (each rank recorded only its stripe). On a resumed run
    // the records before the resume point came from the checkpoint and are
    // identical on every rank; sum only the records produced live.
    let resumed_iters = resume.map_or(0, |ck| ck.stats.iterations.len());
    let mut iterations = reports[0].value.stats.iterations.clone();
    for rep in &reports[1..] {
        for (acc, it) in iterations
            .iter_mut()
            .skip(resumed_iters)
            .zip(rep.value.stats.iterations.iter().skip(resumed_iters))
        {
            acc.pairs += it.pairs;
            acc.prefiltered += it.prefiltered;
            acc.deduped += it.deduped;
            acc.accepted += it.accepted;
        }
    }
    stats.iterations = iterations;
    // Bulk-synchronous wall-time model: each phase costs its slowest rank.
    let phase_max = |label: &str| {
        reports.iter().filter_map(|r| r.phase_times.get(label).copied()).max().unwrap_or_default()
    };
    stats.phases.generate = phase_max(phases::GENERATE);
    stats.phases.dedup = phase_max(phases::DEDUP);
    stats.phases.tree_filter = phase_max(phases::TREE);
    stats.phases.rank_test = phase_max(phases::RANK);
    stats.phases.communicate = phase_max(phases::COMMUNICATE);
    stats.phases.merge = phase_max(phases::MERGE);
    stats.total_time = reports.iter().map(|r| r.value.stats.total_time).max().unwrap_or_default();
    stats.final_modes = reports[0].value.supports.len();
    let supports = reports[0].value.supports.clone();
    let paused = reports[0].value.checkpoint.clone();
    Ok((ClusterOutcome { supports, stats, per_rank: reports }, paused))
}

/// This rank's half-open slice of the iteration's `pos × neg` pair grid.
/// `None` (or a weight vector whose length does not match the group) gives
/// the paper's uniform `rank·pairs/nodes` stripes; otherwise the grid is
/// split proportionally to the weights — the failover path's mechanism for
/// spreading a dead rank's share across every survivor instead of doubling
/// one neighbour's load. The proportional split uses `u128` prefix sums so
/// it is exact for genome-scale pair counts, and with uniform weights it
/// reproduces the classic `rank·pairs/nodes` bounds bit for bit (so
/// fault-free runs are unchanged by passing explicit uniform weights).
fn stripe_bounds(pairs: u64, nodes: u64, rank: u64, weights: Option<&[u64]>) -> (u64, u64) {
    if let Some(w) = weights {
        if w.len() as u64 == nodes {
            let total: u128 = w.iter().map(|&x| x.max(1) as u128).sum();
            let prefix: u128 = w[..rank as usize].iter().map(|&x| x.max(1) as u128).sum();
            let mine = w[rank as usize].max(1) as u128;
            let start = (pairs as u128 * prefix / total) as u64;
            let end = (pairs as u128 * (prefix + mine) / total) as u64;
            return (start, end);
        }
    }
    (rank * pairs / nodes, (rank + 1) * pairs / nodes)
}

/// The stripe weights a rank-0 snapshot records as provenance (EFCK v7):
/// the weights this run striped with, normalized to the explicit uniform
/// vector when none were supplied — a resumed failover then always has a
/// well-formed prior to carve the survivors' shares from.
fn stripe_provenance(opts: &EfmOptions, nodes: usize) -> Vec<u64> {
    match &opts.stripe_weights {
        Some(w) if w.len() == nodes => w.clone(),
        _ => vec![1; nodes],
    }
}

fn node_body<P: BitPattern, S: EfmScalar>(
    ctx: &NodeCtx,
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
    stop_after: Option<u64>,
) -> Result<ClusterNodeOutcome, ClusterError> {
    let t_run = Instant::now();
    let as_protocol = |e: EfmError| ClusterError::Protocol(e.to_string());
    let setup_span = efm_obs::span("setup");
    let mut eng = match resume {
        Some(ck) => ck.restore::<P, S>(problem, opts).map_err(as_protocol)?,
        None => Engine::<P, S>::new(problem, opts).map_err(as_protocol)?,
    };
    let fingerprint = problem_fingerprint(problem);
    // Rank 0 snapshots for everyone; the writes happen on a background
    // thread so the collective-synchronized iteration loop never waits on
    // disk. Dropping the writer (success *or* error return) drains it, so
    // the newest snapshot is durable before run_cluster reports back.
    let mut writer = match ckpt {
        Some(c) if ctx.rank() == 0 => Some(crate::checkpoint::CheckpointWriter::spawn(&c.path)),
        _ => None,
    };
    let rank = ctx.rank() as u64;
    let nodes = ctx.size() as u64;
    let mut accounted: u64 = 0;
    let track = |ctx: &NodeCtx, accounted: &mut u64, now: u64| -> Result<(), ClusterError> {
        ctx.memory().realloc(*accounted, now)?;
        *accounted = now;
        Ok(())
    };
    track(ctx, &mut accounted, eng.modes.approx_bytes())?;
    // Candidate-generation arena: lives for the whole run, reset (not
    // freed) each iteration, so steady-state iterations do not allocate
    // on the generation hot path.
    let mut arena = crate::engine::GenArena::new();
    drop(setup_span);

    while !eng.done() {
        // Absolute iteration index (checkpoint-stable): a resumed run
        // continues the numbering, so a fault planted at iteration k fires
        // at the same global point whether or not a restart happened.
        let iter_no = (eng.cursor - eng.free_count) as u64;
        // Segment bound: every rank computes the same iter_no from the
        // same replicated state, so all ranks pause together — no rank is
        // left blocked in a collective.
        if stop_after.is_some_and(|s| iter_no >= s) {
            break;
        }
        // One span per loop body: together with the phase spans nested
        // inside it, a rank track is covered wall-to-wall, which is what
        // lets `efm-analyze` attribute (rather than guess at) every
        // microsecond between setup and finalize.
        let _iter_span = efm_obs::span("iteration");
        ctx.fault_point("iteration", iter_no)?;
        let mut rec = IterationStats {
            position: eng.cursor,
            reaction: eng.name_at[eng.cursor].clone(),
            reversible: eng.reversible_at[eng.cursor],
            ..Default::default()
        };
        let new_stride = eng.candidate_stride();
        if opts.streaming_enabled() {
            // --- Streaming pipeline: generation, sort/dedup, tree filter
            // and the per-candidate rank test run fused per bounded batch
            // (`EfmOptions::streaming_batch` pairs), and every batch's
            // transient footprint is *charged* against the node capacity —
            // the accounting hole the legacy path below deliberately leaves
            // open (see the `transient` comment there) is closed here.
            let part = eng.partition();
            let pairs = part.pairs();
            let (start, end) = stripe_bounds(pairs, nodes, rank, opts.stripe_weights.as_deref());
            rec.pos = part.pos.len();
            rec.neg = part.neg.len();
            rec.zero = part.zero.len();
            rec.pairs = end - start;
            ctx.add_work(phases::GENERATE, end - start);
            let zero_tree =
                (eng.pattern_trees && !part.zero.is_empty()).then(|| eng.zero_support_tree(&part));
            let modes_bytes = eng.modes.approx_bytes();
            let mut local = CandidateSet::<P>::default();
            let mut transient_now: u64 = 0;
            let ss = {
                let meter = ctx.memory();
                let mut charge = |t: u64| -> Result<(), EfmError> {
                    meter.realloc(modes_bytes + transient_now, modes_bytes + t)?;
                    transient_now = t;
                    Ok(())
                };
                eng.stream_range(
                    &part,
                    start,
                    end,
                    opts.streaming_batch,
                    zero_tree.as_ref(),
                    true,
                    &mut local,
                    &mut arena,
                    &mut charge,
                )
            }
            .map_err(|e| match e {
                EfmError::Cluster(c) => c,
                other => as_protocol(other),
            })?;
            accounted = modes_bytes + transient_now;
            ctx.add_time(phases::GENERATE, ss.t_generate);
            ctx.add_time(phases::DEDUP, ss.t_dedup);
            ctx.add_time(phases::TREE, ss.t_tree);
            ctx.add_time(phases::RANK, ss.t_test);
            ctx.add_work(phases::RANK, ss.tested);
            efm_obs::hist::record("rank test batch us", ss.t_test.as_micros() as u64);
            rec.prefiltered = ss.prefiltered;
            rec.numeric_pass = local.numeric_pass;
            rec.deduped = ss.tested;
            eng.note_kernel_counters(
                local.blocks,
                rec.pairs - rec.numeric_pass,
                arena.approx_bytes(),
            );
            eng.stats.stream_batches += ss.batches;
            eng.stats.peak_transient_bytes = eng.stats.peak_transient_bytes.max(ss.transient_peak);
            efm_obs::gauge_max("peak transient bytes", ss.transient_peak);
            ctx.fault_point("generate", iter_no)?;
            ctx.fault_point("dedup", iter_no)?;
            // --- RankTests: already applied per batch for the rank test;
            // the cross-candidate adjacency test needs the merged stripe.
            let local_buf = {
                let _t = ctx.timed(phases::RANK);
                rec.accepted = if matches!(eng.test, CandidateTest::Rank) {
                    local.len() as u64
                } else {
                    eng.elementarity_filter_with(&mut local, &part, zero_tree.as_ref())
                };
                eng.materialize(&local)
            };
            drop(local);
            track(ctx, &mut accounted, eng.modes.approx_bytes() + local_buf.approx_bytes())?;
            ctx.fault_point("rank", iter_no)?;
            // --- Communicate & Merge, folded: stripes arrive one at a time
            // in rank order and merge into the accumulator as they land, so
            // no rank ever materializes all `nodes` survivor buffers at
            // once. The high-water mark is the mode matrix plus the growing
            // merge plus ONE in-flight stripe — and every step of it is
            // charged against the memory meter.
            let out_bytes = local_buf.approx_bytes();
            ctx.add_work(phases::COMM_BYTES, out_bytes * (nodes - 1));
            eng.stats.comm_messages += nodes - 1;
            eng.stats.comm_bytes += out_bytes * (nodes - 1);
            if efm_obs::enabled() {
                for dst in 0..nodes as usize {
                    if dst != ctx.rank() {
                        ctx.note_traffic(dst, out_bytes);
                    }
                }
            }
            let my_rank = ctx.rank();
            let t_comm = Instant::now();
            let mut t_merge = Duration::ZERO;
            let merged = {
                let meter = ctx.memory();
                let mut charged = accounted;
                // The outgoing buffer is handed to the fabric and consumed
                // when the fold reaches `my_rank`; until then its bytes stay
                // charged on top of accumulator + incoming stripe.
                let held = |src: usize| if src < my_rank { out_bytes } else { 0 };
                let sp = efm_obs::span(phases::COMMUNICATE);
                let folded = ctx.allgather_fold(
                    local_buf,
                    None::<CandidateBuf<P, S>>,
                    |acc, src, incoming| {
                        let Some(acc) = acc else {
                            let now = modes_bytes + incoming.approx_bytes() + held(src);
                            meter.realloc(charged, now)?;
                            charged = now;
                            return Ok(Some(incoming));
                        };
                        let now =
                            modes_bytes + acc.approx_bytes() + incoming.approx_bytes() + held(src);
                        meter.realloc(charged, now)?;
                        charged = now;
                        let t0 = Instant::now();
                        let msp = efm_obs::span(phases::MERGE);
                        let m = CandidateBuf::merge_sorted(acc, incoming);
                        drop(msp);
                        t_merge += t0.elapsed();
                        let now = modes_bytes + m.approx_bytes() + held(src);
                        meter.realloc(charged, now)?;
                        charged = now;
                        Ok(Some(m))
                    },
                )?;
                drop(sp);
                accounted = charged;
                folded.expect("cluster size is at least one rank")
            };
            ctx.add_time(phases::COMMUNICATE, t_comm.elapsed().saturating_sub(t_merge));
            ctx.add_time(phases::MERGE, t_merge);
            ctx.fault_point("communicate", iter_no)?;
            {
                let t0 = Instant::now();
                let msp = efm_obs::span(phases::MERGE);
                eng.advance(&part, merged);
                drop(msp);
                ctx.add_time(phases::MERGE, t0.elapsed());
            }
            track(ctx, &mut accounted, eng.modes.approx_bytes())?;
            ctx.fault_point("merge", iter_no)?;
        } else {
            // --- ParallelGenerateEFMCands: my stripe of the pair grid.
            let (part, mut local) = {
                let _t = ctx.timed(phases::GENERATE);
                let part = eng.partition();
                let pairs = part.pairs();
                let (start, end) =
                    stripe_bounds(pairs, nodes, rank, opts.stripe_weights.as_deref());
                rec.pos = part.pos.len();
                rec.neg = part.neg.len();
                rec.zero = part.zero.len();
                rec.pairs = end - start;
                ctx.add_work(phases::GENERATE, end - start);
                let mut set = CandidateSet::<P>::default();
                rec.prefiltered = eng.generate_range(&part, start, end, &mut set, &mut arena);
                (part, set)
            };
            rec.numeric_pass = local.numeric_pass;
            eng.note_kernel_counters(
                local.blocks,
                rec.pairs - rec.numeric_pass,
                arena.approx_bytes(),
            );
            // The raw generation output is transient, but it is real per-node
            // memory — the whole unfiltered stripe is resident until the rank
            // tests below — so it is charged against the node capacity: an
            // undersized node aborts here with a typed `MemoryExceeded`
            // instead of silently overcommitting (the accounting hole the
            // streaming path above never opens, because it holds at most one
            // batch). The dedicated gauge keeps the transient visible
            // separately from the surviving-stripe charge.
            let transient = local.approx_bytes();
            eng.stats.peak_transient_bytes = eng.stats.peak_transient_bytes.max(transient);
            efm_obs::gauge_max("peak transient bytes", transient);
            track(ctx, &mut accounted, eng.modes.approx_bytes() + transient)?;
            ctx.fault_point("generate", iter_no)?;
            // --- Sort&RemoveDuplicates (local).
            {
                let _t = ctx.timed(phases::DEDUP);
                local.sort_dedup();
            }
            ctx.fault_point("dedup", iter_no)?;
            // --- Tree filter: drop candidates duplicating existing rays. The
            // zero-mode support tree is built once and reused by the
            // elementarity test below.
            let zero_tree = {
                let _t = ctx.timed(phases::TREE);
                let zero_tree = (eng.pattern_trees && !part.zero.is_empty())
                    .then(|| eng.zero_support_tree(&part));
                match &zero_tree {
                    Some(tree) => {
                        eng.drop_duplicates_with_tree(&mut local, tree);
                    }
                    None => {
                        eng.drop_duplicates_of_existing(&mut local, &part);
                    }
                }
                rec.deduped = local.len() as u64;
                zero_tree
            };
            // --- RankTests (local).
            let t_rank = Instant::now();
            let local_buf = {
                let _t = ctx.timed(phases::RANK);
                ctx.add_work(phases::RANK, local.len() as u64);
                rec.accepted = eng.elementarity_filter_with(&mut local, &part, zero_tree.as_ref());
                eng.materialize(&local)
            };
            efm_obs::hist::record("rank test batch us", t_rank.elapsed().as_micros() as u64);
            drop(local);
            // The materialized survivor stripe is this rank's private memory
            // load — it differs across ranks, so a capacity failure here is
            // *asymmetric* and relies on the abort propagation to release the
            // peers from the collectives below.
            track(ctx, &mut accounted, eng.modes.approx_bytes() + local_buf.approx_bytes())?;
            ctx.fault_point("rank", iter_no)?;
            // --- Communicate.
            let all = {
                let _t = ctx.timed(phases::COMMUNICATE);
                // Under an α/β network model every rank ships its survivor
                // buffer to all peers; record the outgoing volume.
                let out_bytes = local_buf.approx_bytes();
                ctx.add_work(phases::COMM_BYTES, out_bytes * (nodes - 1));
                eng.stats.comm_messages += nodes - 1;
                eng.stats.comm_bytes += out_bytes * (nodes - 1);
                if efm_obs::enabled() {
                    for dst in 0..nodes as usize {
                        if dst != ctx.rank() {
                            ctx.note_traffic(dst, out_bytes);
                        }
                    }
                }
                ctx.allgather(local_buf)?
            };
            ctx.fault_point("communicate", iter_no)?;
            // --- Merge: identical on every rank.
            {
                let _t = ctx.timed(phases::MERGE);
                // Every rank's buffer arrives sorted (the local sort is
                // order-preserved by all later gather passes), so the global
                // combine is a pairwise merge of sorted runs — no re-sort.
                let merged = CandidateBuf::<P, S>::merge_sorted_many(all, new_stride);
                // Cross-rank duplicates may pass the test on two ranks; the
                // merge drops them on key collision. The merged buffer plus the
                // mode matrix is the per-node memory high-water mark.
                track(ctx, &mut accounted, eng.modes.approx_bytes() + merged.approx_bytes())?;
                eng.advance(&part, merged);
                track(ctx, &mut accounted, eng.modes.approx_bytes())?;
            }
            ctx.fault_point("merge", iter_no)?;
        }
        rec.modes_after = eng.modes.len();
        eng.stats.candidates_generated += rec.pairs;
        eng.stats.tree_pruned += rec.pairs - rec.prefiltered;
        eng.stats.dedup_hits += rec.prefiltered - rec.deduped;
        eng.stats.rank_tests += rec.deduped;
        efm_obs::counter_add("dedup hits", rec.prefiltered - rec.deduped);
        eng.note_iteration_counters(&rec);
        if ctx.rank() == 0 {
            crate::drivers::note_progress(&eng);
        }
        eng.stats.iterations.push(rec);
        // --- Iteration boundary: the state is again identical on every
        // rank, so rank 0's snapshot stands for all.
        if let (Some(c), Some(w)) = (ckpt, writer.as_mut()) {
            // Lazy mode sheds a due snapshot while the writer is busy or
            // over its time budget — the collective-synchronized loop
            // never waits on serialization, and checkpoint overhead stays
            // a bounded fraction of the run.
            if c.due(eng.cursor - eng.free_count) && (!c.lazy || w.within_budget(t_run.elapsed())) {
                // Stamp stripe provenance (EFCK v7) onto the deferred
                // snapshot: the serialization thread knows the engine
                // state but not the striping, which lives in the options.
                let weights = stripe_provenance(opts, nodes as usize);
                let job = EngineCheckpoint::capture_deferred(&eng, fingerprint);
                w.submit(move || {
                    let mut ck = job();
                    ck.stripe_weights = weights;
                    ck
                })
                .map_err(as_protocol)?;
            }
        }
    }
    if let Some(w) = writer.take() {
        w.finish().map_err(as_protocol)?;
    }

    if !eng.done() {
        // Paused at a segment boundary: no final supports yet. Rank 0's
        // snapshot (the state is replicated) lets the caller resume —
        // possibly on a differently-sized cluster.
        eng.stats.total_time = t_run.elapsed();
        let checkpoint = (ctx.rank() == 0).then(|| {
            let mut ck = EngineCheckpoint::capture(&eng, fingerprint);
            ck.stripe_weights = stripe_provenance(opts, nodes as usize);
            ck
        });
        let stats = eng.stats.clone();
        return Ok(ClusterNodeOutcome { supports: Vec::new(), stats, checkpoint });
    }

    let final_span = efm_obs::span("finalize");
    let supports: Vec<Vec<usize>> = crate::drivers::map_final_supports(problem, &eng);
    drop(final_span);
    eng.stats.final_modes = supports.len();
    eng.stats.total_time = t_run.elapsed();
    let stats = eng.stats.clone();
    Ok(ClusterNodeOutcome { supports, stats, checkpoint: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_reproduce_classic_stripes() {
        // The weighted split must be bit-identical to `rank·pairs/nodes`
        // under uniform weights — fault-free runs see no change at all.
        for pairs in [0u64, 1, 7, 100, 12_345, u32::MAX as u64] {
            for nodes in 1u64..=8 {
                let w = vec![1u64; nodes as usize];
                for rank in 0..nodes {
                    let classic = (rank * pairs / nodes, (rank + 1) * pairs / nodes);
                    assert_eq!(stripe_bounds(pairs, nodes, rank, Some(&w)), classic);
                    assert_eq!(stripe_bounds(pairs, nodes, rank, None), classic);
                }
            }
        }
    }

    #[test]
    fn weighted_stripes_cover_the_grid_without_gaps() {
        let w = [3u64, 1, 2, 2];
        for pairs in [0u64, 1, 9, 1000, 99_991] {
            let mut cursor = 0;
            for rank in 0..4u64 {
                let (start, end) = stripe_bounds(pairs, 4, rank, Some(&w));
                assert_eq!(start, cursor, "stripe {rank} must abut its predecessor");
                assert!(end >= start);
                cursor = end;
            }
            assert_eq!(cursor, pairs, "stripes must cover the whole grid");
        }
        // Proportionality: rank 0 (weight 3) gets about 3/8 of the grid.
        let (s0, e0) = stripe_bounds(8000, 4, 0, Some(&w));
        assert_eq!((s0, e0), (0, 3000));
    }

    #[test]
    fn mismatched_weight_length_falls_back_to_uniform() {
        // A weight vector for a different group size (stale provenance)
        // must not skew the stripes.
        let stale = [5u64, 1];
        assert_eq!(stripe_bounds(900, 3, 1, Some(&stale)), (300, 600));
    }
}
