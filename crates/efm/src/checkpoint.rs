//! Iteration-boundary checkpointing of the Nullspace Algorithm.
//!
//! The engine state between two iterations is exactly `(cursor,
//! rev_positions, mode matrix, statistics)` — everything else is derived
//! from the problem. A checkpoint captures that state at a row boundary so
//! an aborted run (memory cap, crash, Ctrl-C) can resume from the last
//! completed iteration instead of restarting the enumeration, the paper's
//! multi-hour Network II scenario.
//!
//! The file format is a hand-rolled little-endian binary layout in the
//! style of [`crate::io`]'s packed EFM format (`EFCK` magic, u32/u64
//! fields). Numeric values travel as text produced by
//! [`EfmScalar::encode_checkpoint`], which round-trips exactly for both
//! scalar backends (decimal digits for arbitrary-precision integers, raw
//! IEEE-754 bits for floats), so a resumed run replays *identical* state.
//! Bit patterns travel as set-bit index lists, making the file independent
//! of the pattern width the writer happened to monomorphize.
//!
//! A checkpoint is bound to its problem by a structural fingerprint
//! (dimensions, row order, reversibility, reaction names) plus the scalar
//! tag; [`EngineCheckpoint::restore`] rejects any mismatch instead of
//! resuming into a different enumeration.

use crate::bridge::EfmScalar;
use crate::engine::{Engine, ModeMatrix};
use crate::problem::EfmProblem;
use crate::types::{
    EfmError, EfmOptions, FailureClass, IterationStats, RecoveryAction, RecoveryEvent, RunStats,
};
use efm_bitset::BitPattern;
use std::io::{self, Read, Write};
use std::path::Path;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"EFCK";
/// Current write version. Version 2 adds (a) the supervisor's recovery log
/// to the serialized statistics and (b) a trailing footer — body length
/// (u64) + CRC-32 (u32) — so a file truncated *exactly* on a record
/// boundary (which field-level `read_exact` cannot notice) or silently
/// bit-flipped is rejected with a typed error instead of restoring garbage
/// state. Version 3 adds the observability counters of `RunStats`
/// (tree-prune / dedup / rank-test / comm totals, transient peak) and a
/// monotonic timestamp per recovery event. Version 4 adds a record *kind*
/// word right after the version so one container format carries both
/// engine snapshots ([`EngineCheckpoint`], kind 0) and divide-and-conquer
/// progress records ([`DncCheckpoint`], kind 1: a per-subset completion
/// bitmap plus the finished subsets' supports and statistics, so a resumed
/// run skips completed subsets entirely). Version-1 files (no footer, no
/// recovery log), version-2 files (no counters, no timestamps — they read
/// back as zero), version-3 files (no kind word, implicitly engine
/// snapshots) and version-4 files (no kernel/arena counters — they read
/// back as zero / empty tier) remain readable. Version 6 appends the
/// streaming-generation counters (`stream_batches`, `spill_bytes`);
/// version-5 files read them back as zero. Version 7 appends per-rank
/// stripe provenance (`stripe_weights`: the cost-model weights the writing
/// group striped the pair grid with, one per rank) and the failover
/// counters of `RunStats` (`failovers`, `ranks_lost`); version-6 files
/// read them back as empty/zero — an empty weight vector means uniform
/// striping, exactly what every pre-failover run used.
const VERSION: u32 = 7;

/// Record kind (v4+): an engine snapshot at an iteration boundary.
const KIND_ENGINE: u32 = 0;
/// Record kind (v4+): divide-and-conquer subset-completion progress.
const KIND_DNC: u32 = 1;

type SnapshotJob = Box<dyn FnOnce() -> EngineCheckpoint + Send>;

/// Checkpoint-writing policy for a resumable run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where snapshots are written (atomically, replacing the previous one).
    pub path: std::path::PathBuf,
    /// Snapshot every `every` completed iterations.
    pub every: usize,
    /// Skip a due snapshot while the previous one is still being written.
    /// The cadence then self-tunes to what the background writer can
    /// absorb: every iteration while states are small, as fast as the
    /// disk allows once they grow — bounding checkpoint overhead instead
    /// of the recovery replay distance. Off by default (an explicitly
    /// requested `--checkpoint` keeps strict every-`every` semantics);
    /// the supervisor turns it on.
    pub lazy: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` after every iteration.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        CheckpointConfig { path: path.into(), every: 1, lazy: false }
    }

    /// Sets the snapshot interval in iterations.
    pub fn every(mut self, n: usize) -> Self {
        self.every = n.max(1);
        self
    }

    /// Enables or disables backpressure-throttled (lazy) snapshots.
    pub fn lazy(mut self, on: bool) -> Self {
        self.lazy = on;
        self
    }

    /// Whether a snapshot is due after `iterations_done` iterations.
    pub(crate) fn due(&self, iterations_done: usize) -> bool {
        iterations_done.is_multiple_of(self.every)
    }
}

/// A width- and scalar-erased snapshot of an [`Engine`] at an iteration
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Scalar backend that wrote the snapshot ([`EfmScalar::CHECKPOINT_TAG`]).
    pub scalar_tag: String,
    /// Bit capacity of the pattern width that wrote the snapshot.
    pub pattern_bits: u32,
    /// Structural fingerprint of the problem (see [`problem_fingerprint`]).
    pub fingerprint: u64,
    /// First processed position (identity block size).
    pub free_count: u64,
    /// One past the last position to process.
    pub stop_at: u64,
    /// Next row to process.
    pub cursor: u64,
    /// Positions of the processed reversible rows, in processing order.
    pub rev_positions: Vec<u64>,
    /// Number of processed reversible rows per mode.
    pub rev_len: u64,
    /// Number of unprocessed rows per mode.
    pub tail_len: u64,
    /// Per-mode set-bit indices of the fixed-row pattern.
    pub mode_patterns: Vec<Vec<u32>>,
    /// Encoded numeric sections, flattened with stride `rev_len + tail_len`.
    pub vals: Vec<String>,
    /// Run statistics accumulated up to the snapshot.
    pub stats: RunStats,
    /// Stripe provenance (v7+): the cost-model weights the writing group
    /// striped the candidate pair grid with, one entry per rank of the
    /// group that wrote the snapshot. Empty means uniform striping (all
    /// pre-v7 files, and runs that never overrode the stripes). On
    /// failover the supervisor recovers the dead rank's share from this
    /// vector and redistributes it across the survivors.
    pub stripe_weights: Vec<u64>,
}

/// Structural fingerprint binding a checkpoint to its problem: FNV-1a over
/// the dimensions, processing order, reversibility flags, and reaction
/// names. Scalar *values* are deliberately excluded — the scalar tag covers
/// the arithmetic, and the same network imports to different matrices under
/// different scalars.
pub fn problem_fingerprint<S: EfmScalar>(problem: &EfmProblem<S>) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(problem.num_rows() as u64);
    h.write_u64(problem.num_cols() as u64);
    h.write_u64(problem.free_count as u64);
    h.write_u64(problem.stop_before as u64);
    for &c in &problem.row_order {
        h.write_u64(c as u64);
    }
    for &r in &problem.reversible {
        h.write_u64(r as u64);
    }
    for n in &problem.names {
        h.write_bytes(n.as_bytes());
        h.write_u64(0xff); // name separator
    }
    h.finish()
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl EngineCheckpoint {
    /// Snapshots an engine at an iteration boundary.
    pub fn capture<P: BitPattern, S: EfmScalar>(eng: &Engine<P, S>, fingerprint: u64) -> Self {
        EngineCheckpoint {
            scalar_tag: S::CHECKPOINT_TAG.to_string(),
            pattern_bits: P::capacity() as u32,
            fingerprint,
            free_count: eng.free_count as u64,
            stop_at: eng.stop_at as u64,
            cursor: eng.cursor as u64,
            rev_positions: eng.rev_positions.iter().map(|&p| p as u64).collect(),
            rev_len: eng.modes.rev_len as u64,
            tail_len: eng.modes.tail_len as u64,
            mode_patterns: eng
                .modes
                .patterns
                .iter()
                .map(|p| p.ones().into_iter().map(|b| b as u32).collect())
                .collect(),
            vals: eng.modes.vals.iter().map(EfmScalar::encode_checkpoint).collect(),
            stats: eng.stats.clone(),
            stripe_weights: Vec::new(),
        }
    }

    /// Like [`EngineCheckpoint::capture`], but splits the work: the
    /// synchronous part is a plain clone of the engine state (memcpy-class
    /// for the hot vectors), and the returned closure finishes the
    /// per-value text encoding — the expensive half — wherever it is
    /// called, e.g. on the [`CheckpointWriter`]'s thread instead of the
    /// collective-synchronized iteration loop.
    pub fn capture_deferred<P: BitPattern, S: EfmScalar>(
        eng: &Engine<P, S>,
        fingerprint: u64,
    ) -> impl FnOnce() -> EngineCheckpoint + Send + 'static {
        let free_count = eng.free_count as u64;
        let stop_at = eng.stop_at as u64;
        let cursor = eng.cursor as u64;
        let rev_positions: Vec<u64> = eng.rev_positions.iter().map(|&p| p as u64).collect();
        let rev_len = eng.modes.rev_len as u64;
        let tail_len = eng.modes.tail_len as u64;
        let patterns: Vec<P> = eng.modes.patterns.clone();
        let vals: Vec<S> = eng.modes.vals.clone();
        let stats = eng.stats.clone();
        move || EngineCheckpoint {
            scalar_tag: S::CHECKPOINT_TAG.to_string(),
            pattern_bits: P::capacity() as u32,
            fingerprint,
            free_count,
            stop_at,
            cursor,
            rev_positions,
            rev_len,
            tail_len,
            mode_patterns: patterns
                .iter()
                .map(|p| p.ones().into_iter().map(|b| b as u32).collect())
                .collect(),
            vals: vals.iter().map(EfmScalar::encode_checkpoint).collect(),
            stats,
            stripe_weights: Vec::new(),
        }
    }

    /// Number of iterations the snapshot has completed.
    pub fn iterations_completed(&self) -> u64 {
        self.cursor - self.free_count
    }

    /// Rebuilds an engine from the snapshot, validating that the snapshot
    /// belongs to `problem`, the scalar backend, and the pattern width the
    /// caller is resuming with.
    pub fn restore<P: BitPattern, S: EfmScalar>(
        &self,
        problem: &EfmProblem<S>,
        opts: &EfmOptions,
    ) -> Result<Engine<P, S>, EfmError> {
        let bad = |m: String| EfmError::Checkpoint(m);
        if self.scalar_tag != S::CHECKPOINT_TAG {
            return Err(bad(format!(
                "scalar mismatch: checkpoint written with {:?}, resuming with {:?}",
                self.scalar_tag,
                S::CHECKPOINT_TAG
            )));
        }
        if self.pattern_bits as usize != P::capacity() {
            return Err(bad(format!(
                "pattern width mismatch: checkpoint uses {} bits, resume dispatched {}",
                self.pattern_bits,
                P::capacity()
            )));
        }
        let fp = problem_fingerprint(problem);
        if self.fingerprint != fp {
            return Err(bad(format!(
                "problem fingerprint mismatch ({:#018x} vs {:#018x}): the checkpoint \
                 was written for a different network, ordering, or compression",
                self.fingerprint, fp
            )));
        }
        let mut eng = Engine::<P, S>::new(problem, opts)?;
        if self.free_count != eng.free_count as u64 || self.stop_at != eng.stop_at as u64 {
            return Err(bad(format!(
                "processing bounds mismatch: checkpoint [{}, {}) vs problem [{}, {})",
                self.free_count, self.stop_at, eng.free_count, eng.stop_at
            )));
        }
        if self.cursor < self.free_count || self.cursor > self.stop_at {
            return Err(bad(format!(
                "cursor {} outside processing range [{}, {}]",
                self.cursor, self.free_count, self.stop_at
            )));
        }
        if self.rev_positions.len() as u64 != self.rev_len {
            return Err(bad(format!(
                "{} reversible positions recorded but rev_len is {}",
                self.rev_positions.len(),
                self.rev_len
            )));
        }
        let stride = (self.rev_len + self.tail_len) as usize;
        let nmodes = self.mode_patterns.len();
        if self.vals.len() != nmodes * stride {
            return Err(bad(format!(
                "{} values do not fill {} modes of stride {}",
                self.vals.len(),
                nmodes,
                stride
            )));
        }
        let mut patterns = Vec::with_capacity(nmodes);
        for bits in &self.mode_patterns {
            let mut pat = P::empty();
            for &b in bits {
                if b as usize >= P::capacity() {
                    return Err(bad(format!("pattern bit {b} out of range")));
                }
                pat.set(b as usize);
            }
            patterns.push(pat);
        }
        let mut vals = Vec::with_capacity(self.vals.len());
        for v in &self.vals {
            vals.push(S::decode_checkpoint(v).map_err(&bad)?);
        }
        eng.cursor = self.cursor as usize;
        eng.rev_positions = self.rev_positions.iter().map(|&p| p as usize).collect();
        eng.modes = ModeMatrix {
            patterns,
            vals,
            rev_len: self.rev_len as usize,
            tail_len: self.tail_len as usize,
        };
        eng.stats = self.stats.clone();
        // The tier is a property of the resuming host/options, not of the
        // snapshot: re-resolve it live (pre-v5 files also read back with an
        // empty tier string).
        eng.stats.kernel_tier = eng.kernel_tier.name().to_string();
        Ok(eng)
    }

    /// Writes the binary checkpoint format (current version, with the
    /// trailing length/CRC footer).
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        self.write_body(&mut cw, VERSION)?;
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        // The footer travels outside the checksummed region.
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Writes the versioned body (everything the footer covers).
    fn write_body<W: Write>(&self, w: &mut W, version: u32) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(w, version)?;
        if version >= 4 {
            put_u32(w, KIND_ENGINE)?;
        }
        put_str(w, &self.scalar_tag)?;
        put_u32(w, self.pattern_bits)?;
        put_u64(w, self.fingerprint)?;
        put_u64(w, self.free_count)?;
        put_u64(w, self.stop_at)?;
        put_u64(w, self.cursor)?;
        put_u64(w, self.rev_positions.len() as u64)?;
        for &p in &self.rev_positions {
            put_u64(w, p)?;
        }
        put_u64(w, self.rev_len)?;
        put_u64(w, self.tail_len)?;
        put_u64(w, self.mode_patterns.len() as u64)?;
        for bits in &self.mode_patterns {
            put_u32(w, bits.len() as u32)?;
            for &b in bits {
                put_u32(w, b)?;
            }
        }
        put_u64(w, self.vals.len() as u64)?;
        for v in &self.vals {
            put_str(w, v)?;
        }
        put_stats(w, &self.stats, version)?;
        if version >= 7 {
            put_u64(w, self.stripe_weights.len() as u64)?;
            for &sw in &self.stripe_weights {
                put_u64(w, sw)?;
            }
        }
        Ok(())
    }

    /// Writes the legacy version-1 body (no footer, no recovery log) —
    /// compatibility-test helper.
    #[cfg(test)]
    pub(crate) fn write_to_v1<W: Write>(&self, mut w: W) -> io::Result<()> {
        self.write_body(&mut w, 1)
    }

    /// Writes a version-2 file (footer present, no v3 counters or event
    /// timestamps) — compatibility-test helper.
    #[cfg(test)]
    pub(crate) fn write_to_v2<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        self.write_body(&mut cw, 2)?;
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Writes a version-3 file (footer and counters present, no kind word) —
    /// compatibility-test helper.
    #[cfg(test)]
    pub(crate) fn write_to_v3<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        self.write_body(&mut cw, 3)?;
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Writes a version-5 file (no streaming counters) —
    /// compatibility-test helper.
    #[cfg(test)]
    pub(crate) fn write_to_v5<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        self.write_body(&mut cw, 5)?;
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Writes a version-6 file (no stripe provenance or failover counters) —
    /// compatibility-test helper.
    #[cfg(test)]
    pub(crate) fn write_to_v6<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        self.write_body(&mut cw, 6)?;
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Reads the binary checkpoint format (versions 1 through 4, kind 0).
    pub fn read_from<R: Read>(r: R) -> io::Result<Self> {
        let mut cr = CrcReader::new(r);
        let r = &mut cr;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data("not an EFCK checkpoint file"));
        }
        let version = get_u32(r)?;
        if version == 0 || version > VERSION {
            return Err(bad_data(format!("unsupported checkpoint version {version}")));
        }
        if version >= 4 {
            match get_u32(r)? {
                KIND_ENGINE => {}
                KIND_DNC => {
                    return Err(bad_data(
                        "divide-and-conquer progress checkpoint (load it with DncCheckpoint::load)",
                    ))
                }
                k => return Err(bad_data(format!("unknown checkpoint kind {k}"))),
            }
        }
        let scalar_tag = get_str(r)?;
        let pattern_bits = get_u32(r)?;
        let fingerprint = get_u64(r)?;
        let free_count = get_u64(r)?;
        let stop_at = get_u64(r)?;
        let cursor = get_u64(r)?;
        let nrev = checked_len(get_u64(r)?)?;
        let mut rev_positions = Vec::with_capacity(nrev);
        for _ in 0..nrev {
            rev_positions.push(get_u64(r)?);
        }
        let rev_len = get_u64(r)?;
        let tail_len = get_u64(r)?;
        let nmodes = checked_len(get_u64(r)?)?;
        let mut mode_patterns = Vec::with_capacity(nmodes);
        for _ in 0..nmodes {
            let nbits = get_u32(r)? as usize;
            let mut bits = Vec::with_capacity(nbits);
            for _ in 0..nbits {
                bits.push(get_u32(r)?);
            }
            mode_patterns.push(bits);
        }
        let nvals = checked_len(get_u64(r)?)?;
        let mut vals = Vec::with_capacity(nvals.min(1 << 20));
        for _ in 0..nvals {
            vals.push(get_str(r)?);
        }
        let stats = get_stats(r, version)?;
        let stripe_weights = if version >= 7 {
            let nw = checked_len(get_u64(r)?)?;
            let mut weights = Vec::with_capacity(nw.min(1 << 20));
            for _ in 0..nw {
                weights.push(get_u64(r)?);
            }
            weights
        } else {
            // Pre-v7 files carry no stripe provenance; an empty vector means
            // "assume the uniform split" to every consumer.
            Vec::new()
        };
        if version >= 2 {
            // Validate the footer against what was actually read: a file
            // truncated exactly on a record boundary parses cleanly up to
            // here but has no (or a short) footer; a bit flip fails the CRC.
            let (body_len, body_crc) = (cr.len, cr.crc.finish());
            let inner = cr.inner_mut();
            let footer_err =
                |what: &str| bad_data(format!("checkpoint {what} (truncated or corrupt file)"));
            let mut footer = [0u8; 12];
            inner.read_exact(&mut footer).map_err(|_| footer_err("footer missing"))?;
            let want_len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
            let want_crc = u32::from_le_bytes(footer[8..12].try_into().unwrap());
            if want_len != body_len {
                return Err(footer_err("length mismatch"));
            }
            if want_crc != body_crc {
                return Err(footer_err("CRC mismatch"));
            }
        }
        Ok(EngineCheckpoint {
            scalar_tag,
            pattern_bits,
            fingerprint,
            free_count,
            stop_at,
            cursor,
            rev_positions,
            rev_len,
            tail_len,
            mode_patterns,
            vals,
            stats,
            stripe_weights,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename), so
    /// a crash mid-write never corrupts the previous checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), EfmError> {
        let t0 = std::time::Instant::now();
        let tmp = path.with_extension("tmp");
        let write = || -> io::Result<()> {
            let f = std::fs::File::create(&tmp)?;
            // Megabyte-scale bodies: a large buffer keeps the syscall
            // count low enough that the write disappears into the
            // background thread's schedule.
            let mut w = std::io::BufWriter::with_capacity(256 << 10, f);
            self.write_to(&mut w)?;
            use std::io::Write as _;
            w.flush()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        let out = write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            EfmError::Checkpoint(format!("cannot write {}: {e}", path.display()))
        });
        efm_obs::hist::record("checkpoint write us", t0.elapsed().as_micros() as u64);
        out
    }

    /// Loads a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, EfmError> {
        let f = std::fs::File::open(path)
            .map_err(|e| EfmError::Checkpoint(format!("cannot open {}: {e}", path.display())))?;
        Self::read_from(std::io::BufReader::new(f))
            .map_err(|e| EfmError::Checkpoint(format!("cannot read {}: {e}", path.display())))
    }
}

/// One finished divide-and-conquer subset as recorded in a
/// [`DncCheckpoint`]: its supports (reduced-network indices) and the run
/// statistics of the successful attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct DncSubsetResult {
    /// Subset id (bit `i` set ⇔ partition reaction `i` must be nonzero).
    pub id: usize,
    /// Whether the subset was skipped as provably empty.
    pub skipped_empty: bool,
    /// Supports in reduced-network reaction indices.
    pub supports: Vec<Vec<usize>>,
    /// Statistics of the attempt that produced `supports`.
    pub stats: RunStats,
}

/// Divide-and-conquer progress record (EFCK v4, kind 1): which of the
/// `2^qsub` subsets have finished, plus their results, so a resumed run
/// re-enumerates only the unfinished subsets. Unlike [`EngineCheckpoint`]
/// this snapshots the *scheduler's* state, not one engine's: subsets
/// complete in any order under the concurrent schedules, and each
/// completion atomically rewrites this record.
#[derive(Debug, Clone, PartialEq)]
pub struct DncCheckpoint {
    /// Scalar backend that wrote the record ([`EfmScalar::CHECKPOINT_TAG`]).
    pub scalar_tag: String,
    /// Fingerprint binding the record to its reduced network + partition
    /// (see [`dnc_fingerprint`]).
    pub fingerprint: u64,
    /// Number of partition reactions (`2^qsub` subsets total).
    pub qsub: u32,
    /// Finished subsets, kept sorted by id.
    pub done: Vec<DncSubsetResult>,
}

/// Fingerprint binding a [`DncCheckpoint`] to its problem: FNV-1a over the
/// reduced network's shape, reversibility flags, and names, plus the
/// partition's reduced indices in order. A record written for a different
/// network, compression outcome, or partition is rejected at resume.
pub fn dnc_fingerprint(red: &efm_metnet::ReducedNetwork, partition_indices: &[usize]) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(red.stoich.rows() as u64);
    h.write_u64(red.num_reduced() as u64);
    for &r in &red.reversible {
        h.write_u64(r as u64);
    }
    for n in &red.names {
        h.write_bytes(n.as_bytes());
        h.write_u64(0xff); // name separator
    }
    for &i in partition_indices {
        h.write_u64(i as u64);
    }
    h.finish()
}

impl DncCheckpoint {
    /// An empty progress record (no subset finished yet).
    pub fn new(scalar_tag: &str, fingerprint: u64, qsub: u32) -> Self {
        DncCheckpoint { scalar_tag: scalar_tag.to_string(), fingerprint, qsub, done: Vec::new() }
    }

    /// Whether subset `id` is recorded as finished.
    pub fn is_done(&self, id: usize) -> bool {
        self.done.binary_search_by_key(&id, |s| s.id).is_ok()
    }

    /// Records a finished subset (idempotent: a re-recorded id replaces the
    /// previous entry), keeping `done` sorted by id.
    pub fn record(&mut self, result: DncSubsetResult) {
        match self.done.binary_search_by_key(&result.id, |s| s.id) {
            Ok(i) => self.done[i] = result,
            Err(i) => self.done.insert(i, result),
        }
    }

    /// The completion bitmap: bit `id` set ⇔ subset `id` finished.
    pub fn bitmap(&self) -> Vec<u64> {
        let subsets = 1usize << self.qsub;
        let mut words = vec![0u64; subsets.div_ceil(64)];
        for s in &self.done {
            words[s.id / 64] |= 1u64 << (s.id % 64);
        }
        words
    }

    /// Writes the binary record (EFCK v4 kind 1, with the trailing
    /// length/CRC footer).
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut cw = CrcWriter::new(w);
        {
            let w = &mut cw;
            w.write_all(MAGIC)?;
            put_u32(w, VERSION)?;
            put_u32(w, KIND_DNC)?;
            put_str(w, &self.scalar_tag)?;
            put_u64(w, self.fingerprint)?;
            put_u32(w, self.qsub)?;
            let bitmap = self.bitmap();
            put_u64(w, bitmap.len() as u64)?;
            for word in bitmap {
                put_u64(w, word)?;
            }
            put_u64(w, self.done.len() as u64)?;
            for s in &self.done {
                put_u64(w, s.id as u64)?;
                put_u32(w, s.skipped_empty as u32)?;
                put_u64(w, s.supports.len() as u64)?;
                for sup in &s.supports {
                    put_u64(w, sup.len() as u64)?;
                    for &r in sup {
                        put_u64(w, r as u64)?;
                    }
                }
                put_stats(w, &s.stats, VERSION)?;
            }
        }
        let (len, crc) = (cw.len, cw.crc.finish());
        let mut w = cw.into_inner();
        // The footer travels outside the checksummed region.
        put_u64(&mut w, len)?;
        put_u32(&mut w, crc)?;
        Ok(())
    }

    /// Reads a divide-and-conquer progress record (EFCK v4 kind 1 only —
    /// engine snapshots of any version are rejected with a typed error).
    pub fn read_from<R: Read>(r: R) -> io::Result<Self> {
        let mut cr = CrcReader::new(r);
        let r = &mut cr;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data("not an EFCK checkpoint file"));
        }
        let version = get_u32(r)?;
        if version == 0 || version > VERSION {
            return Err(bad_data(format!("unsupported checkpoint version {version}")));
        }
        if version < 4 {
            return Err(bad_data(
                "engine snapshot, not a divide-and-conquer progress record \
                 (load it with EngineCheckpoint::load)",
            ));
        }
        match get_u32(r)? {
            KIND_DNC => {}
            KIND_ENGINE => {
                return Err(bad_data(
                    "engine snapshot, not a divide-and-conquer progress record \
                     (load it with EngineCheckpoint::load)",
                ))
            }
            k => return Err(bad_data(format!("unknown checkpoint kind {k}"))),
        }
        let scalar_tag = get_str(r)?;
        let fingerprint = get_u64(r)?;
        let qsub = get_u32(r)?;
        if qsub > 20 {
            return Err(bad_data(format!("implausible qsub {qsub}")));
        }
        let nwords = checked_len(get_u64(r)?)?;
        let mut bitmap = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            bitmap.push(get_u64(r)?);
        }
        let ndone = checked_len(get_u64(r)?)?;
        let mut done = Vec::with_capacity(ndone.min(1 << 20));
        for _ in 0..ndone {
            let id = get_u64(r)? as usize;
            let skipped_empty = get_u32(r)? != 0;
            let nsups = checked_len(get_u64(r)?)?;
            let mut supports = Vec::with_capacity(nsups.min(1 << 20));
            for _ in 0..nsups {
                let len = checked_len(get_u64(r)?)?;
                let mut sup = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    sup.push(get_u64(r)? as usize);
                }
                supports.push(sup);
            }
            let stats = get_stats(r, VERSION)?;
            done.push(DncSubsetResult { id, skipped_empty, supports, stats });
        }
        let (body_len, body_crc) = (cr.len, cr.crc.finish());
        let inner = cr.inner_mut();
        let footer_err =
            |what: &str| bad_data(format!("checkpoint {what} (truncated or corrupt file)"));
        let mut footer = [0u8; 12];
        inner.read_exact(&mut footer).map_err(|_| footer_err("footer missing"))?;
        let want_len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let want_crc = u32::from_le_bytes(footer[8..12].try_into().unwrap());
        if want_len != body_len {
            return Err(footer_err("length mismatch"));
        }
        if want_crc != body_crc {
            return Err(footer_err("CRC mismatch"));
        }
        let ck = DncCheckpoint { scalar_tag, fingerprint, qsub, done };
        if ck.done.iter().any(|s| s.id >= 1usize << ck.qsub) {
            return Err(bad_data("subset id out of range for qsub"));
        }
        if !ck.done.windows(2).all(|w| w[0].id < w[1].id) {
            return Err(bad_data("subset entries not sorted by id (corrupt or hand-edited file)"));
        }
        // The bitmap is redundant with the entry list; a mismatch means a
        // corrupted or hand-edited file that the CRC happened to cover.
        if bitmap != ck.bitmap() {
            return Err(bad_data("completion bitmap disagrees with subset entries"));
        }
        Ok(ck)
    }

    /// Writes the record to `path` atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), EfmError> {
        let t0 = std::time::Instant::now();
        let tmp = path.with_extension("tmp");
        let write = || -> io::Result<()> {
            let f = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::with_capacity(256 << 10, f);
            self.write_to(&mut w)?;
            use std::io::Write as _;
            w.flush()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        let out = write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            EfmError::Checkpoint(format!("cannot write {}: {e}", path.display()))
        });
        efm_obs::hist::record("checkpoint write us", t0.elapsed().as_micros() as u64);
        out
    }

    /// Loads a progress record from `path`.
    pub fn load(path: &Path) -> Result<Self, EfmError> {
        let f = std::fs::File::open(path)
            .map_err(|e| EfmError::Checkpoint(format!("cannot open {}: {e}", path.display())))?;
        Self::read_from(std::io::BufReader::new(f))
            .map_err(|e| EfmError::Checkpoint(format!("cannot read {}: {e}", path.display())))
    }
}

/// Background checkpoint writer: snapshots are handed to a worker thread
/// so serialization, CRC computation, and disk I/O leave the iteration
/// critical path (the capture itself — a state clone — stays on it).
/// When the worker falls behind, a backlog collapses to the newest
/// snapshot; [`CheckpointWriter::finish`] and `Drop` drain the queue, so
/// the last submitted snapshot is always durable before the run returns —
/// including the error return the supervisor resumes from. The widened
/// crash window costs at most one extra iteration of replay beyond the
/// synchronous policy.
pub struct CheckpointWriter {
    tx: Option<std::sync::mpsc::Sender<SnapshotJob>>,
    worker: Option<std::thread::JoinHandle<Result<(), EfmError>>>,
    pending: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    busy_nanos: std::sync::Arc<std::sync::atomic::AtomicU64>,
    path: std::path::PathBuf,
}

impl CheckpointWriter {
    /// Fraction of run wall time lazy mode lets checkpointing consume.
    /// Snapshots are shed while the writer's cumulative busy time is above
    /// this share, so on a saturated machine (where "background" CPU is
    /// not free) the fault-free overhead of supervision stays bounded by
    /// construction rather than by luck.
    pub const LAZY_BUDGET: f64 = 0.03;
    /// Spawns the writer thread for `path`.
    pub fn spawn(path: impl Into<std::path::PathBuf>) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let path: std::path::PathBuf = path.into();
        let (tx, rx) = std::sync::mpsc::channel::<SnapshotJob>();
        let pending = std::sync::Arc::new(AtomicUsize::new(0));
        let busy_nanos = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let dest = path.clone();
        let inflight = std::sync::Arc::clone(&pending);
        let busy = std::sync::Arc::clone(&busy_nanos);
        let worker = std::thread::Builder::new()
            .name("efck-writer".into())
            .spawn(move || -> Result<(), EfmError> {
                while let Ok(mut job) = rx.recv() {
                    while let Ok(newer) = rx.try_recv() {
                        job = newer; // collapse a backlog: older snapshots
                        inflight.fetch_sub(1, Ordering::Release); // never encode
                    }
                    let t = std::time::Instant::now();
                    let r = job().save(&dest);
                    busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    inflight.fetch_sub(1, Ordering::Release);
                    r?;
                }
                Ok(())
            })
            .expect("spawn checkpoint writer thread");
        CheckpointWriter { tx: Some(tx), worker: Some(worker), pending, busy_nanos, path }
    }

    /// Whether no snapshot is queued or being written right now.
    pub fn is_idle(&self) -> bool {
        self.pending.load(std::sync::atomic::Ordering::Acquire) == 0
    }

    /// Whether lazy mode may submit another snapshot: the writer is idle
    /// and its cumulative busy time is within [`Self::LAZY_BUDGET`] of the
    /// run's elapsed wall time.
    pub fn within_budget(&self, elapsed: Duration) -> bool {
        self.is_idle()
            && self.busy_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64
                <= Self::LAZY_BUDGET * elapsed.as_nanos() as f64
    }

    /// Queues a snapshot job (see [`EngineCheckpoint::capture_deferred`])
    /// for encoding and writing. Surfaces the worker's error if a previous
    /// save already failed (the snapshot is then lost, exactly as a failed
    /// synchronous save would have lost it).
    pub fn submit(
        &mut self,
        job: impl FnOnce() -> EngineCheckpoint + Send + 'static,
    ) -> Result<(), EfmError> {
        self.pending.fetch_add(1, std::sync::atomic::Ordering::Release);
        if self.tx.as_ref().is_some_and(|tx| tx.send(Box::new(job)).is_ok()) {
            Ok(())
        } else {
            self.pending.fetch_sub(1, std::sync::atomic::Ordering::Release);
            self.join()
        }
    }

    /// Waits for every queued snapshot to reach disk.
    pub fn finish(mut self) -> Result<(), EfmError> {
        self.join()
    }

    fn join(&mut self) -> Result<(), EfmError> {
        self.tx = None; // close the channel: the worker drains and exits
        match self.worker.take() {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(EfmError::Checkpoint(format!(
                    "checkpoint writer panicked for {}",
                    self.path.display()
                )))
            }),
            None => Ok(()),
        }
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        let _ = self.join();
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// The table-driven CRC-32 now lives in `efm_cluster::crc`, shared with the
// cluster data plane's per-frame checksums (same IEEE 802.3 polynomial, same
// table). The wrappers below keep the checkpoint-specific accounting.
use efm_cluster::crc::Crc32;

/// Writer wrapper accumulating the running CRC and byte count of the body.
struct CrcWriter<W> {
    inner: W,
    crc: Crc32,
    len: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter { inner, crc: Crc32::new(), len: 0 }
    }

    fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader wrapper accumulating the running CRC and byte count of the body.
struct CrcReader<R> {
    inner: R,
    crc: Crc32,
    len: u64,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        CrcReader { inner, crc: Crc32::new(), len: 0 }
    }

    /// Direct access to the underlying reader (footer bytes must not enter
    /// the checksum).
    fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        self.len += n as u64;
        Ok(n)
    }
}

/// Guards length prefixes against absurd values from corrupt files so a
/// flipped byte cannot request an exabyte allocation.
fn checked_len(v: u64) -> io::Result<usize> {
    if v > (1 << 40) {
        return Err(bad_data(format!("implausible length {v}")));
    }
    Ok(v as usize)
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_str(r: &mut impl Read) -> io::Result<String> {
    let len = get_u32(r)? as usize;
    if len > (1 << 30) {
        return Err(bad_data(format!("implausible string length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad_data("non-UTF8 string"))
}

fn put_duration(w: &mut impl Write, d: Duration) -> io::Result<()> {
    put_u64(w, d.as_nanos().min(u64::MAX as u128) as u64)
}

fn get_duration(r: &mut impl Read) -> io::Result<Duration> {
    Ok(Duration::from_nanos(get_u64(r)?))
}

fn put_class(c: FailureClass) -> u32 {
    match c {
        FailureClass::Fatal => 0,
        FailureClass::Retryable => 1,
        FailureClass::Memory => 2,
        FailureClass::RankLost => 3,
    }
}

fn get_class(v: u32) -> io::Result<FailureClass> {
    Ok(match v {
        0 => FailureClass::Fatal,
        1 => FailureClass::Retryable,
        2 => FailureClass::Memory,
        3 => FailureClass::RankLost,
        other => return Err(bad_data(format!("unknown failure class {other}"))),
    })
}

fn put_action(a: RecoveryAction) -> u32 {
    match a {
        RecoveryAction::Restarted => 0,
        RecoveryAction::Escalated => 1,
        RecoveryAction::DiscardedCheckpoint => 2,
        RecoveryAction::GaveUp => 3,
        RecoveryAction::FailedOver => 4,
    }
}

fn get_action(v: u32) -> io::Result<RecoveryAction> {
    Ok(match v {
        0 => RecoveryAction::Restarted,
        1 => RecoveryAction::Escalated,
        2 => RecoveryAction::DiscardedCheckpoint,
        3 => RecoveryAction::GaveUp,
        4 => RecoveryAction::FailedOver,
        other => return Err(bad_data(format!("unknown recovery action {other}"))),
    })
}

fn put_stats(w: &mut impl Write, s: &RunStats, version: u32) -> io::Result<()> {
    put_u64(w, s.candidates_generated)?;
    put_u64(w, s.peak_modes as u64)?;
    put_u64(w, s.peak_bytes)?;
    put_u64(w, s.final_modes as u64)?;
    if version >= 3 {
        for v in [
            s.tree_pruned,
            s.dedup_hits,
            s.rank_tests,
            s.comm_messages,
            s.comm_bytes,
            s.peak_transient_bytes,
        ] {
            put_u64(w, v)?;
        }
    }
    for d in [
        s.phases.generate,
        s.phases.dedup,
        s.phases.tree_filter,
        s.phases.rank_test,
        s.phases.communicate,
        s.phases.merge,
        s.total_time,
    ] {
        put_duration(w, d)?;
    }
    put_u64(w, s.iterations.len() as u64)?;
    for it in &s.iterations {
        put_u64(w, it.position as u64)?;
        put_str(w, &it.reaction)?;
        put_u32(w, it.reversible as u32)?;
        for v in [
            it.pos as u64,
            it.neg as u64,
            it.zero as u64,
            it.pairs,
            it.numeric_pass,
            it.prefiltered,
            it.deduped,
            it.accepted,
            it.modes_after as u64,
        ] {
            put_u64(w, v)?;
        }
        for d in [it.t_generate, it.t_dedup, it.t_merge, it.t_tree_filter, it.t_test] {
            put_duration(w, d)?;
        }
    }
    if version >= 2 {
        put_u64(w, s.recovery.events.len() as u64)?;
        for e in &s.recovery.events {
            if version >= 3 {
                put_u64(w, e.at_us)?;
            }
            put_u32(w, e.attempt)?;
            put_str(w, &e.error)?;
            put_u32(w, put_class(e.class))?;
            put_u32(w, put_action(e.action))?;
            match e.resumed_from {
                Some(it) => {
                    put_u32(w, 1)?;
                    put_u64(w, it)?;
                }
                None => put_u32(w, 0)?,
            }
        }
    }
    if version >= 5 {
        put_str(w, &s.kernel_tier)?;
        put_u64(w, s.kernel_blocks)?;
        put_u64(w, s.kernel_pruned)?;
        put_u64(w, s.arena_peak_bytes)?;
    }
    if version >= 6 {
        put_u64(w, s.stream_batches)?;
        put_u64(w, s.spill_bytes)?;
    }
    if version >= 7 {
        put_u32(w, s.failovers)?;
        put_u32(w, s.ranks_lost)?;
    }
    Ok(())
}

fn get_stats(r: &mut impl Read, version: u32) -> io::Result<RunStats> {
    let mut s = RunStats {
        candidates_generated: get_u64(r)?,
        peak_modes: get_u64(r)? as usize,
        peak_bytes: get_u64(r)?,
        final_modes: get_u64(r)? as usize,
        ..Default::default()
    };
    if version >= 3 {
        s.tree_pruned = get_u64(r)?;
        s.dedup_hits = get_u64(r)?;
        s.rank_tests = get_u64(r)?;
        s.comm_messages = get_u64(r)?;
        s.comm_bytes = get_u64(r)?;
        s.peak_transient_bytes = get_u64(r)?;
    }
    s.phases.generate = get_duration(r)?;
    s.phases.dedup = get_duration(r)?;
    s.phases.tree_filter = get_duration(r)?;
    s.phases.rank_test = get_duration(r)?;
    s.phases.communicate = get_duration(r)?;
    s.phases.merge = get_duration(r)?;
    s.total_time = get_duration(r)?;
    let niter = checked_len(get_u64(r)?)?;
    for _ in 0..niter {
        let mut it = IterationStats {
            position: get_u64(r)? as usize,
            reaction: get_str(r)?,
            reversible: get_u32(r)? != 0,
            ..Default::default()
        };
        it.pos = get_u64(r)? as usize;
        it.neg = get_u64(r)? as usize;
        it.zero = get_u64(r)? as usize;
        it.pairs = get_u64(r)?;
        it.numeric_pass = get_u64(r)?;
        it.prefiltered = get_u64(r)?;
        it.deduped = get_u64(r)?;
        it.accepted = get_u64(r)?;
        it.modes_after = get_u64(r)? as usize;
        it.t_generate = get_duration(r)?;
        it.t_dedup = get_duration(r)?;
        it.t_merge = get_duration(r)?;
        it.t_tree_filter = get_duration(r)?;
        it.t_test = get_duration(r)?;
        s.iterations.push(it);
    }
    if version >= 2 {
        let nevents = checked_len(get_u64(r)?)?;
        for _ in 0..nevents {
            // v2 events carry no timestamp; they read back as 0.
            let at_us = if version >= 3 { get_u64(r)? } else { 0 };
            let attempt = get_u32(r)?;
            let error = get_str(r)?;
            let class = get_class(get_u32(r)?)?;
            let action = get_action(get_u32(r)?)?;
            let resumed_from = if get_u32(r)? != 0 { Some(get_u64(r)?) } else { None };
            s.recovery.events.push(RecoveryEvent {
                at_us,
                attempt,
                error,
                class,
                action,
                resumed_from,
            });
        }
    }
    if version >= 5 {
        s.kernel_tier = get_str(r)?;
        s.kernel_blocks = get_u64(r)?;
        s.kernel_pruned = get_u64(r)?;
        s.arena_peak_bytes = get_u64(r)?;
    }
    if version >= 6 {
        s.stream_batches = get_u64(r)?;
        s.spill_bytes = get_u64(r)?;
    }
    if version >= 7 {
        s.failovers = get_u32(r)?;
        s.ranks_lost = get_u32(r)?;
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::build_problem;
    use efm_bitset::{Pattern1, Pattern2};
    use efm_metnet::compress;
    use efm_numeric::{DynInt, F64Tol};

    fn toy_problem() -> EfmProblem<DynInt> {
        let net = efm_metnet::examples::toy_network();
        let (red, _) = compress(&net);
        build_problem::<DynInt>(&red, &EfmOptions::default()).unwrap()
    }

    #[test]
    fn capture_restore_resumes_identically() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let fp = problem_fingerprint(&problem);

        // Run halfway, snapshot, and compare a resumed finish against an
        // uninterrupted run.
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        let halfway = eng.remaining() / 2;
        for _ in 0..halfway {
            eng.step();
        }
        let ck = EngineCheckpoint::capture(&eng, fp);
        assert_eq!(ck.iterations_completed(), halfway as u64);

        let mut resumed = ck.restore::<Pattern1, DynInt>(&problem, &opts).unwrap();
        assert_eq!(resumed.cursor, eng.cursor);
        assert_eq!(resumed.modes.len(), eng.modes.len());
        while !eng.done() {
            eng.step();
            resumed.step();
        }
        let direct: Vec<_> = eng.final_supports();
        let from_ck: Vec<_> = resumed.final_supports();
        assert_eq!(direct, from_ck);
        assert_eq!(eng.stats.candidates_generated, resumed.stats.candidates_generated);
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn rejects_mismatches() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));

        // Wrong scalar backend.
        let fproblem = {
            let net = efm_metnet::examples::toy_network();
            let (red, _) = compress(&net);
            build_problem::<F64Tol>(&red, &opts).unwrap()
        };
        match ck.restore::<Pattern1, F64Tol>(&fproblem, &opts).err() {
            Some(EfmError::Checkpoint(m)) => assert!(m.contains("scalar"), "{m}"),
            other => panic!("expected scalar mismatch, got {other:?}"),
        }

        // Wrong pattern width.
        match ck.restore::<Pattern2, DynInt>(&problem, &opts).err() {
            Some(EfmError::Checkpoint(m)) => assert!(m.contains("width"), "{m}"),
            other => panic!("expected width mismatch, got {other:?}"),
        }

        // Wrong problem (perturbed fingerprint).
        let mut wrong = ck.clone();
        wrong.fingerprint ^= 1;
        match wrong.restore::<Pattern1, DynInt>(&problem, &opts).err() {
            Some(EfmError::Checkpoint(m)) => assert!(m.contains("fingerprint"), "{m}"),
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_corruption() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(EngineCheckpoint::read_from(&buf[..]).is_err());
        let mut buf2 = Vec::new();
        ck.write_to(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 5);
        assert!(EngineCheckpoint::read_from(&buf2[..]).is_err());
    }

    #[test]
    fn truncation_at_any_point_yields_typed_error() {
        // Every prefix of a valid file — including prefixes landing exactly
        // on record boundaries, which field-level read_exact alone cannot
        // notice — must fail to parse, never panic or restore garbage.
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                EngineCheckpoint::read_from(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes parsed as a valid checkpoint",
                buf.len()
            );
        }
        assert!(EngineCheckpoint::read_from(&buf[..]).is_ok());
    }

    #[test]
    fn truncated_file_on_disk_yields_typed_checkpoint_error() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let dir = std::env::temp_dir().join(format!("efm-ckpt-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.efck");
        ck.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut right before the footer: the body parses, the footer is gone.
        std::fs::write(&path, &full[..full.len() - 12]).unwrap();
        match EngineCheckpoint::load(&path) {
            Err(EfmError::Checkpoint(m)) => {
                assert!(m.contains("footer") || m.contains("truncat"), "{m}")
            }
            other => panic!("expected typed checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_fails_the_crc() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        // Flip a bit inside a numeric payload (past the header) — the field
        // parses fine, only the CRC notices.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        let err = EngineCheckpoint::read_from(&buf[..]).unwrap_err();
        let msg = err.to_string();
        // Either an earlier length/utf8 check or the CRC must reject it.
        assert!(!msg.is_empty());
    }

    #[test]
    fn reads_legacy_v1_files() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut v1 = Vec::new();
        ck.write_to_v1(&mut v1).unwrap();
        let back = EngineCheckpoint::read_from(&v1[..]).unwrap();
        // v1 predates the kernel/arena counters: they read back zeroed.
        assert_eq!(back.stats.kernel_tier, "");
        assert_eq!(back.stats.kernel_blocks, 0);
        let mut want = ck.clone();
        want.stats.kernel_tier = String::new();
        want.stats.kernel_blocks = 0;
        want.stats.kernel_pruned = 0;
        want.stats.arena_peak_bytes = 0;
        assert_eq!(back, want);
        // And a resumed engine from the legacy file finishes identically.
        let mut resumed = back.restore::<Pattern1, DynInt>(&problem, &opts).unwrap();
        let mut direct = ck.restore::<Pattern1, DynInt>(&problem, &opts).unwrap();
        while !direct.done() {
            direct.step();
            resumed.step();
        }
        assert_eq!(direct.final_supports(), resumed.final_supports());
    }

    #[test]
    fn recovery_log_roundtrips_in_v2() {
        use crate::types::{FailureClass, RecoveryAction, RecoveryEvent};
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        ck.stats.recovery.events.push(RecoveryEvent {
            at_us: 1_234_567,
            attempt: 2,
            error: "rank 1: injected crash at communicate[3]".to_string(),
            class: FailureClass::Retryable,
            action: RecoveryAction::Restarted,
            resumed_from: Some(3),
        });
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.stats.recovery.events.len(), 1);
        assert_eq!(back.stats.recovery.events[0].at_us, 1_234_567);
    }

    #[test]
    fn v3_counters_roundtrip() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        ck.stats.tree_pruned = 11;
        ck.stats.dedup_hits = 22;
        ck.stats.rank_tests = 33;
        ck.stats.comm_messages = 44;
        ck.stats.comm_bytes = 55;
        ck.stats.peak_transient_bytes = 66;
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.stats.tree_pruned, 11);
        assert_eq!(back.stats.peak_transient_bytes, 66);
    }

    #[test]
    fn v6_streaming_counters_roundtrip() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        ck.stats.stream_batches = 19;
        ck.stats.spill_bytes = 4096;
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.stats.stream_batches, 19);
        assert_eq!(back.stats.spill_bytes, 4096);
    }

    #[test]
    fn v5_files_read_back_with_zeroed_v6_fields() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        // These fields don't exist in a v5 file and must come back zeroed.
        ck.stats.stream_batches = 7;
        ck.stats.spill_bytes = 512;
        ck.stats.kernel_blocks = 3;
        let mut buf = Vec::new();
        ck.write_to_v5(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        // v5 fields survive; v6 fields are zeroed.
        assert_eq!(back.stats.kernel_blocks, 3);
        assert_eq!(back.stats.stream_batches, 0);
        assert_eq!(back.stats.spill_bytes, 0);
        let mut want = ck.clone();
        want.stats.stream_batches = 0;
        want.stats.spill_bytes = 0;
        assert_eq!(back, want);
    }

    #[test]
    fn v7_stripe_provenance_and_failover_counters_roundtrip() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        ck.stripe_weights = vec![3, 1, 2, 2];
        ck.stats.failovers = 2;
        ck.stats.ranks_lost = 1;
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.stripe_weights, vec![3, 1, 2, 2]);
        assert_eq!(back.stats.failovers, 2);
        assert_eq!(back.stats.ranks_lost, 1);
    }

    #[test]
    fn v6_files_read_back_with_zeroed_v7_fields() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        // These fields don't exist in a v6 file and must come back empty/zero.
        ck.stripe_weights = vec![5, 5];
        ck.stats.failovers = 3;
        ck.stats.ranks_lost = 2;
        ck.stats.stream_batches = 11;
        let mut buf = Vec::new();
        ck.write_to_v6(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        // v6 fields survive; v7 fields are absent.
        assert_eq!(back.stats.stream_batches, 11);
        assert!(back.stripe_weights.is_empty());
        assert_eq!(back.stats.failovers, 0);
        assert_eq!(back.stats.ranks_lost, 0);
        let mut want = ck.clone();
        want.stripe_weights = Vec::new();
        want.stats.failovers = 0;
        want.stats.ranks_lost = 0;
        assert_eq!(back, want);
    }

    #[test]
    fn v2_files_read_back_with_zeroed_v3_fields() {
        use crate::types::{FailureClass, RecoveryAction, RecoveryEvent};
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        // These fields don't exist in a v2 file and must come back zeroed.
        ck.stats.tree_pruned = 7;
        ck.stats.comm_bytes = 9;
        ck.stats.peak_transient_bytes = 13;
        ck.stats.recovery.events.push(RecoveryEvent {
            at_us: 777,
            attempt: 1,
            error: "injected".to_string(),
            class: FailureClass::Retryable,
            action: RecoveryAction::Restarted,
            resumed_from: None,
        });
        let mut buf = Vec::new();
        ck.write_to_v2(&mut buf).unwrap();
        let back = EngineCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back.stats.tree_pruned, 0);
        assert_eq!(back.stats.comm_bytes, 0);
        assert_eq!(back.stats.peak_transient_bytes, 0);
        assert_eq!(back.stats.recovery.events.len(), 1);
        assert_eq!(back.stats.recovery.events[0].at_us, 0);
        assert_eq!(back.stats.recovery.events[0].attempt, 1);
    }

    #[test]
    fn reads_legacy_v3_files() {
        // A v3 file has no kind word; it must read back as an engine
        // snapshot, field for field.
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let mut ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        ck.stats.tree_pruned = 5;
        ck.stats.comm_bytes = 17;
        let mut v3 = Vec::new();
        ck.write_to_v3(&mut v3).unwrap();
        let back = EngineCheckpoint::read_from(&v3[..]).unwrap();
        // v3 predates the kernel/arena counters: they read back zeroed.
        let mut want = ck.clone();
        want.stats.kernel_tier = String::new();
        want.stats.kernel_blocks = 0;
        want.stats.kernel_pruned = 0;
        want.stats.arena_peak_bytes = 0;
        assert_eq!(back, want);
        // And it is *not* a divide-and-conquer progress record.
        let err = DncCheckpoint::read_from(&v3[..]).unwrap_err().to_string();
        assert!(err.contains("engine snapshot"), "{err}");
    }

    #[test]
    fn dnc_checkpoint_roundtrips_with_bitmap() {
        let mut ck = DncCheckpoint::new("dynint", 0xfeed, 2);
        assert!(!ck.is_done(3));
        ck.record(DncSubsetResult {
            id: 3,
            skipped_empty: false,
            supports: vec![vec![0, 2, 5], vec![1, 4]],
            stats: RunStats { candidates_generated: 42, final_modes: 2, ..Default::default() },
        });
        ck.record(DncSubsetResult {
            id: 1,
            skipped_empty: true,
            supports: vec![],
            stats: RunStats::default(),
        });
        // Entries stay sorted by id whatever the completion order was.
        assert_eq!(ck.done.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(ck.bitmap(), vec![0b1010]);
        assert!(ck.is_done(1) && ck.is_done(3));
        assert!(!ck.is_done(0) && !ck.is_done(2));
        // Re-recording an id replaces, never duplicates.
        ck.record(DncSubsetResult {
            id: 3,
            skipped_empty: false,
            supports: vec![vec![7]],
            stats: RunStats::default(),
        });
        assert_eq!(ck.done.len(), 2);
        assert_eq!(ck.done[1].supports, vec![vec![7]]);

        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = DncCheckpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
        // Every truncation fails with a typed error, as for engine files.
        for cut in 0..buf.len() {
            assert!(DncCheckpoint::read_from(&buf[..cut]).is_err(), "prefix {cut} parsed");
        }
        // A bit flip in the payload fails the CRC.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(DncCheckpoint::read_from(&buf[..]).is_err());
    }

    #[test]
    fn dnc_checkpoint_saves_and_loads_on_disk() {
        let mut ck = DncCheckpoint::new("f64tol", 7, 1);
        ck.record(DncSubsetResult {
            id: 0,
            skipped_empty: false,
            supports: vec![vec![1, 2]],
            stats: RunStats::default(),
        });
        let dir = std::env::temp_dir().join(format!("efm-dnc-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("progress.efck");
        ck.save(&path).unwrap();
        assert_eq!(DncCheckpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_reader_rejects_dnc_records_with_typed_error() {
        // The two kinds share magic + version; each reader must name the
        // other's loader instead of mis-parsing the payload.
        let ck = DncCheckpoint::new("dynint", 1, 1);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let err = EngineCheckpoint::read_from(&buf[..]).unwrap_err().to_string();
        assert!(err.contains("DncCheckpoint"), "{err}");

        let problem = toy_problem();
        let opts = EfmOptions::default();
        let eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        let eck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let mut ebuf = Vec::new();
        eck.write_to(&mut ebuf).unwrap();
        let err = DncCheckpoint::read_from(&ebuf[..]).unwrap_err().to_string();
        assert!(err.contains("EngineCheckpoint"), "{err}");
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let problem = toy_problem();
        let opts = EfmOptions::default();
        let mut eng = Engine::<Pattern1, DynInt>::new(&problem, &opts).unwrap();
        eng.step();
        let ck = EngineCheckpoint::capture(&eng, problem_fingerprint(&problem));
        let dir = std::env::temp_dir().join(format!("efm-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.efck");
        ck.save(&path).unwrap();
        let back = EngineCheckpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_distinguishes_problems() {
        let problem = toy_problem();
        let other = {
            let net = efm_metnet::generator::parallel_branches(4);
            let (red, _) = compress(&net);
            build_problem::<DynInt>(&red, &EfmOptions::default()).unwrap()
        };
        assert_ne!(problem_fingerprint(&problem), problem_fingerprint(&other));
    }
}
