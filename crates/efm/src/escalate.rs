//! Graceful degradation: automatic divide-and-conquer escalation.
//!
//! The paper's Network II story (§IV, Table IV) is a *manual* recovery:
//! Algorithm 2 unsplit exhausts node memory at the 59th iteration, so the
//! authors re-ran it as the divide-and-conquer Algorithm 3 over a chosen
//! reaction split. This module turns that recovery into a policy — when an
//! enumeration aborts with [`ClusterError::MemoryExceeded`], the driver
//! consults [`suggest_partition`](crate::apps::suggest_partition) and
//! re-launches as divide-and-conquer over `2^qsub` subsets, doubling the
//! split until the run fits or the escalation ladder is exhausted.

use crate::apps::suggest_partition;
use crate::bridge::EfmScalar;
use crate::divide::Backend;
use crate::schedule::DncConfig;
use crate::types::{EfmError, EfmOptions};
use crate::{enumerate_divide_conquer_scheduled_with_scalar, enumerate_with_scalar, EfmOutcome};
use efm_metnet::{compress_with, MetabolicNetwork};
use efm_numeric::DynInt;

/// One rung of the escalation ladder.
#[derive(Debug, Clone)]
pub struct EscalationAttempt {
    /// Number of partition reactions (`0` = the unsplit direct run).
    pub qsub: usize,
    /// The partition reactions used (empty for the unsplit run).
    pub partition: Vec<String>,
    /// `None` when the attempt succeeded; the error display otherwise.
    pub error: Option<String>,
}

/// A successful enumeration together with the ladder that led to it.
#[derive(Debug, Clone)]
pub struct EscalationOutcome {
    /// The completed enumeration.
    pub outcome: EfmOutcome,
    /// Every attempt in order; the last one succeeded.
    pub attempts: Vec<EscalationAttempt>,
}

impl EscalationOutcome {
    /// Whether the direct run failed and divide-and-conquer recovered it.
    pub fn escalated(&self) -> bool {
        self.attempts.len() > 1
    }
}

/// Enumerates with automatic divide-and-conquer escalation on memory
/// exhaustion, exact integer arithmetic.
pub fn enumerate_with_escalation(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
    max_qsub: usize,
) -> Result<EscalationOutcome, EfmError> {
    enumerate_with_escalation_scalar::<DynInt>(net, opts, backend, max_qsub)
}

/// Enumerates with automatic divide-and-conquer escalation, generic over
/// the scalar.
///
/// The direct (unsplit) run is attempted first. If it fails with a
/// [`MemoryExceeded`](efm_cluster::ClusterError::MemoryExceeded) abort, the
/// driver escalates: for `qsub = 1, 2, ..., max_qsub` it asks
/// [`suggest_partition`] for a reaction split and re-launches as
/// divide-and-conquer over the `2^qsub` subsets, stopping at the first
/// success. Every failure that is *not* a memory abort propagates
/// immediately — escalation cannot fix a protocol error or a panic. If
/// every rung fails (or no further split exists), the last memory error is
/// returned together with the attempt history embedded in its display.
pub fn enumerate_with_escalation_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
    max_qsub: usize,
) -> Result<EscalationOutcome, EfmError> {
    enumerate_with_escalation_scheduled_scalar::<S>(
        net,
        opts,
        backend,
        max_qsub,
        &DncConfig::default(),
    )
}

/// [`enumerate_with_escalation_scalar`] under an explicit subset-scheduler
/// configuration: every divide-and-conquer rung of the ladder runs its
/// `2^qsub` subsets per `dnc` (concurrency, per-subset restart budget,
/// progress checkpointing), so a rung that fails on one subset retries only
/// that subset before the whole rung is declared failed.
pub fn enumerate_with_escalation_scheduled_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
    max_qsub: usize,
    dnc: &DncConfig,
) -> Result<EscalationOutcome, EfmError> {
    let mut attempts = Vec::new();
    let is_memory = |e: &EfmError| matches!(e, EfmError::Cluster(ce) if ce.is_memory_exceeded());

    match enumerate_with_scalar::<S>(net, opts, backend) {
        Ok(outcome) => {
            attempts.push(EscalationAttempt { qsub: 0, partition: Vec::new(), error: None });
            return Ok(EscalationOutcome { outcome, attempts });
        }
        Err(e) if is_memory(&e) => {
            attempts.push(EscalationAttempt {
                qsub: 0,
                partition: Vec::new(),
                error: Some(e.to_string()),
            });
        }
        Err(e) => return Err(e),
    }

    let (red, _) = compress_with(net, &opts.compression);
    let mut last_err = EfmError::Checkpoint("escalation requested with max_qsub = 0".to_string());
    if let Some(a) = attempts.last() {
        if let Some(msg) = &a.error {
            last_err = EfmError::Checkpoint(msg.clone());
        }
    }
    for qsub in 1..=max_qsub {
        let partition = suggest_partition(net, &red, qsub);
        if partition.len() < qsub {
            // The network has no further reversible pivotal reactions to
            // split on; deeper rungs would repeat the same partition.
            break;
        }
        let names: Vec<&str> = partition.iter().map(String::as_str).collect();
        match enumerate_divide_conquer_scheduled_with_scalar::<S>(net, opts, &names, backend, dnc) {
            Ok(outcome) => {
                attempts.push(EscalationAttempt { qsub, partition, error: None });
                return Ok(EscalationOutcome { outcome, attempts });
            }
            Err(e) if is_memory(&e) => {
                attempts.push(EscalationAttempt { qsub, partition, error: Some(e.to_string()) });
                last_err = e;
            }
            Err(e) => return Err(e),
        }
    }
    // Preserve the typed memory error from the deepest attempt; the ladder
    // is reconstructible from the error chain the caller logged.
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_cluster::ClusterConfig;

    #[test]
    fn no_escalation_when_memory_suffices() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let backend = Backend::Cluster(ClusterConfig::new(2));
        let out = enumerate_with_escalation(&net, &opts, &backend, 2).unwrap();
        assert!(!out.escalated());
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.outcome.efms.len(), 8);
    }

    #[test]
    fn non_memory_errors_propagate_immediately() {
        let net = efm_metnet::examples::toy_network();
        // A mode limit abort is not a memory abort; escalation must not
        // retry it.
        let opts = EfmOptions { max_modes: Some(1), ..Default::default() };
        let backend = Backend::Serial;
        match enumerate_with_escalation(&net, &opts, &backend, 2) {
            Err(EfmError::ModeLimitExceeded { .. }) => {}
            other => panic!("expected mode limit error, got {other:?}"),
        }
    }

    #[test]
    fn memory_abort_escalates_to_divide_and_conquer() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        // A cap small enough to abort the unsplit toy run but roomy enough
        // for its quarters (the toy network's subsets carry ~2 modes each).
        let direct =
            enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(ClusterConfig::new(2)))
                .unwrap();
        let mut cap = None;
        for bytes in [96u64, 128, 160, 192, 256, 320, 384] {
            let cfg = ClusterConfig::new(2).with_memory_limit(bytes);
            match enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(cfg)) {
                Err(EfmError::Cluster(e)) if e.is_memory_exceeded() => {
                    cap = Some(bytes);
                    break;
                }
                _ => {}
            }
        }
        let Some(cap) = cap else {
            panic!("no cap tripped the unsplit toy run");
        };
        let backend = Backend::Cluster(ClusterConfig::new(2).with_memory_limit(cap * 4));
        // With 4x the failing cap the unsplit run may still fail, but some
        // rung of the ladder must fit; if even qsub=2 does not, the test
        // network is too small for the chosen caps and the ladder errors.
        match enumerate_with_escalation(&net, &opts, &backend, 2) {
            Ok(out) => {
                assert_eq!(out.outcome.efms, direct.efms);
                if out.escalated() {
                    assert!(out.attempts[0].error.is_some());
                    assert!(out.attempts.last().unwrap().error.is_none());
                }
            }
            Err(EfmError::Cluster(e)) => {
                assert!(e.is_memory_exceeded(), "non-memory failure {e:?}");
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}
