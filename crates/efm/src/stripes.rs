//! Compressed, spillable storage for survivor-support stripes.
//!
//! The divide-and-conquer scheduler holds every completed subset's support
//! list until final assembly. On large networks that survivor set — not the
//! in-flight candidate buffers — dominates resident memory, because each
//! support is kept as a `Vec<usize>` (8 bytes per set bit plus allocator
//! overhead). A [`StripeStore`] keeps each completed stripe as
//! delta/run-length compressed patterns ([`CompressedPattern`]) and, once a
//! resident-byte budget is exceeded, serializes whole stripes to an
//! anonymous spill file. Assembly streams them back one stripe at a time —
//! the store is read (and written) through an `mmap` window on Unix, with a
//! plain seek-and-read fallback elsewhere — so the peak survivor-set cost
//! is one decoded stripe plus the compressed residents, never the full
//! concatenated list.

use crate::types::EfmError;
use efm_bitset::CompressedPattern;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// One subset's survivor supports, either resident (compressed) or spilled.
enum Stripe {
    /// Compressed in memory.
    Resident(Vec<CompressedPattern>),
    /// Serialized into the spill file at `[offset, offset + len)`.
    Spilled { offset: u64, len: u64 },
}

/// Compressed survivor-support stripes with a resident-byte budget and a
/// disk spill path. Stripe ids are the scheduler's subset ids.
pub struct StripeStore {
    slots: Vec<Option<Stripe>>,
    /// Bytes held by resident (compressed) stripes.
    resident_bytes: u64,
    /// Budget above which the largest resident stripes spill to disk.
    budget: u64,
    /// Lazily created append-only spill file.
    spill: Option<SpillFile>,
    /// Total bytes ever written to the spill file (monotone counter).
    spill_bytes: u64,
    /// Number of stripes spilled (monotone counter).
    spilled: u64,
}

struct SpillFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn io_err(what: &str, e: std::io::Error) -> EfmError {
    EfmError::Checkpoint(format!("stripe spill {what}: {e}"))
}

impl StripeStore {
    /// A store for `slots` stripes that starts spilling once the resident
    /// compressed stripes exceed `budget` bytes (`0` spills everything).
    pub fn new(slots: usize, budget: u64) -> Self {
        StripeStore {
            slots: (0..slots).map(|_| None).collect(),
            resident_bytes: 0,
            budget,
            spill: None,
            spill_bytes: 0,
            spilled: 0,
        }
    }

    /// Number of stripe slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no stripe has been stored.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Bytes currently held by resident compressed stripes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Total bytes ever written to the spill file.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Number of stripes spilled to disk.
    pub fn stripes_spilled(&self) -> u64 {
        self.spilled
    }

    /// Compresses and stores stripe `id`, spilling older stripes if the
    /// resident budget is now exceeded. Each support must be a strictly
    /// ascending index list (the enumeration emits them sorted).
    pub fn put(&mut self, id: usize, supports: &[Vec<usize>]) -> Result<(), EfmError> {
        let stripe: Vec<CompressedPattern> =
            supports.iter().map(|s| CompressedPattern::from_indices(s.iter().copied())).collect();
        self.resident_bytes += stripe_bytes(&stripe);
        self.slots[id] = Some(Stripe::Resident(stripe));
        self.enforce_budget()?;
        if efm_obs::enabled() {
            efm_obs::gauge_max("stripe resident bytes", self.resident_bytes);
            efm_obs::gauge_max("spill bytes", self.spill_bytes);
        }
        Ok(())
    }

    /// Removes and decodes stripe `id`; `None` when the slot was never
    /// stored (a resumed or inline subset).
    pub fn take(&mut self, id: usize) -> Result<Option<Vec<Vec<usize>>>, EfmError> {
        match self.slots[id].take() {
            None => Ok(None),
            Some(Stripe::Resident(stripe)) => {
                self.resident_bytes -= stripe_bytes(&stripe);
                Ok(Some(stripe.iter().map(|p| p.iter_ones().collect()).collect()))
            }
            Some(Stripe::Spilled { offset, len }) => {
                let spill = self.spill.as_mut().expect("spilled stripe implies spill file");
                let bytes = spill.read(offset, len)?;
                let stripe = decode_stripe(&bytes)?;
                Ok(Some(stripe.iter().map(|p| p.iter_ones().collect()).collect()))
            }
        }
    }

    /// Spills the largest resident stripes until the budget holds.
    fn enforce_budget(&mut self) -> Result<(), EfmError> {
        while self.resident_bytes > self.budget {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Some(Stripe::Resident(st)) => Some((i, stripe_bytes(st))),
                    _ => None,
                })
                .max_by_key(|&(_, b)| b);
            let Some((id, bytes)) = victim else { break };
            let Some(Stripe::Resident(stripe)) = self.slots[id].take() else { unreachable!() };
            let encoded = encode_stripe(&stripe);
            let spill = match self.spill.as_mut() {
                Some(s) => s,
                None => self.spill.insert(SpillFile::create()?),
            };
            let offset = spill.append(&encoded)?;
            self.slots[id] = Some(Stripe::Spilled { offset, len: encoded.len() as u64 });
            self.resident_bytes -= bytes;
            self.spill_bytes += encoded.len() as u64;
            self.spilled += 1;
            efm_obs::counter_add("stripes spilled", 1);
        }
        Ok(())
    }
}

/// Approximate resident cost of a compressed stripe.
fn stripe_bytes(stripe: &[CompressedPattern]) -> u64 {
    stripe.iter().map(|p| p.approx_bytes() as u64).sum::<u64>()
        + std::mem::size_of_val(stripe) as u64
}

/// Stripe wire format: u32 pattern count, then per pattern u32 ones-count,
/// u32 encoded length, encoded bytes.
fn encode_stripe(stripe: &[CompressedPattern]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(stripe.len() as u32).to_le_bytes());
    for p in stripe {
        out.extend_from_slice(&p.count().to_le_bytes());
        out.extend_from_slice(&(p.encoded_len() as u32).to_le_bytes());
        out.extend_from_slice(p.encoded());
    }
    out
}

fn decode_stripe(bytes: &[u8]) -> Result<Vec<CompressedPattern>, EfmError> {
    let bad = || EfmError::Checkpoint("corrupt spilled stripe".to_string());
    let u32_at = |pos: usize| -> Result<u32, EfmError> {
        let end = pos.checked_add(4).filter(|&e| e <= bytes.len()).ok_or_else(bad)?;
        Ok(u32::from_le_bytes(bytes[pos..end].try_into().expect("4-byte slice")))
    };
    let n = u32_at(0)? as usize;
    let mut pos = 4;
    let mut stripe = Vec::with_capacity(n);
    for _ in 0..n {
        let count = u32_at(pos)?;
        let len = u32_at(pos + 4)? as usize;
        let start = pos + 8;
        let end = start.checked_add(len).filter(|&e| e <= bytes.len()).ok_or_else(bad)?;
        let p =
            CompressedPattern::from_encoded(bytes[start..end].to_vec(), count).ok_or_else(bad)?;
        stripe.push(p);
        pos = end;
    }
    Ok(stripe)
}

impl SpillFile {
    fn create() -> Result<Self, EfmError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("efm-spill-{}-{}.bin", std::process::id(), seq));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        Ok(SpillFile { file, path, len: 0 })
    }

    /// Appends `bytes` at the end; returns the record's offset.
    fn append(&mut self, bytes: &[u8]) -> Result<u64, EfmError> {
        let t0 = std::time::Instant::now();
        let offset = self.len;
        self.file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        self.file.write_all(bytes).map_err(|e| io_err("write", e))?;
        self.len += bytes.len() as u64;
        efm_obs::hist::record("spill write us", t0.elapsed().as_micros() as u64);
        Ok(offset)
    }

    /// Reads back `[offset, offset + len)` — through a transient `mmap`
    /// window on Unix, falling back to seek-and-read when mapping fails.
    fn read(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, EfmError> {
        let t0 = std::time::Instant::now();
        #[cfg(unix)]
        if let Some(bytes) = mmap::read(&self.file, self.len, offset, len) {
            efm_obs::hist::record("spill read us", t0.elapsed().as_micros() as u64);
            return Ok(bytes);
        }
        self.file.seek(SeekFrom::Start(offset)).map_err(|e| io_err("seek", e))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact(&mut buf).map_err(|e| io_err("read", e))?;
        efm_obs::hist::record("spill read us", t0.elapsed().as_micros() as u64);
        Ok(buf)
    }
}

/// Minimal read-only `mmap` shim over raw libc symbols (std already links
/// libc on Unix, so no extra crate is needed). Any failure makes the caller
/// fall back to buffered reads.
#[cfg(unix)]
mod mmap {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Maps the whole file, copies `[offset, offset + len)` out, unmaps.
    pub fn read(file: &File, file_len: u64, offset: u64, len: u64) -> Option<Vec<u8>> {
        let end = offset.checked_add(len)?;
        if end > file_len || file_len == 0 || file_len > usize::MAX as u64 {
            return None;
        }
        let map_len = file_len as usize;
        // SAFETY: read-only private mapping of a file we own for the
        // duration of the copy; the pointer is checked against MAP_FAILED
        // and unmapped before return.
        unsafe {
            let ptr =
                mmap(std::ptr::null_mut(), map_len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0);
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            let slice = std::slice::from_raw_parts(ptr as *const u8, map_len);
            let bytes = slice[offset as usize..end as usize].to_vec();
            munmap(ptr, map_len);
            Some(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| (0..40).filter(|j| (i + j) % 3 == 0).collect()).collect()
    }

    #[test]
    fn resident_round_trip() {
        let mut store = StripeStore::new(4, u64::MAX);
        let sups = sample(7);
        store.put(2, &sups).unwrap();
        assert_eq!(store.stripes_spilled(), 0);
        assert!(store.resident_bytes() > 0);
        assert_eq!(store.take(2).unwrap().unwrap(), sups);
        assert_eq!(store.resident_bytes(), 0);
        assert!(store.take(2).unwrap().is_none());
        assert!(store.take(0).unwrap().is_none());
    }

    #[test]
    fn zero_budget_spills_everything_and_reads_back() {
        let mut store = StripeStore::new(3, 0);
        let a = sample(5);
        let b = vec![vec![0usize, 63, 64], Vec::new(), vec![7]];
        store.put(0, &a).unwrap();
        store.put(2, &b).unwrap();
        assert_eq!(store.stripes_spilled(), 2);
        assert_eq!(store.resident_bytes(), 0);
        assert!(store.spill_bytes() > 0);
        assert_eq!(store.take(2).unwrap().unwrap(), b);
        assert_eq!(store.take(0).unwrap().unwrap(), a);
    }

    #[test]
    fn budget_spills_largest_first() {
        let mut store = StripeStore::new(2, 1);
        let big = sample(50);
        store.put(0, &big).unwrap();
        let small = sample(1);
        store.put(1, &small).unwrap();
        // Both exceed the 1-byte budget and spill; order doesn't matter for
        // correctness, both must read back intact.
        assert!(store.stripes_spilled() >= 1);
        assert_eq!(store.take(0).unwrap().unwrap(), big);
        assert_eq!(store.take(1).unwrap().unwrap(), small);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let mut store = StripeStore::new(1, 0);
        store.put(0, &sample(3)).unwrap();
        let path = store.spill.as_ref().unwrap().path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn corrupt_spill_record_is_a_typed_error() {
        assert!(matches!(decode_stripe(&[9, 0, 0, 0]), Err(EfmError::Checkpoint(_))));
    }

    #[test]
    fn dnc_spill_matches_inline_assembly() {
        let net = efm_metnet::examples::toy_network();
        let dnc = crate::DncConfig::default();
        let part = ["r6r", "r8r"];
        let base = crate::enumerate_divide_conquer_scheduled(
            &net,
            &crate::EfmOptions::default(),
            &part,
            &crate::Backend::Serial,
            &dnc,
        )
        .unwrap();
        // Budget 0 forces every completed stripe through compress + spill
        // + stream-back; the assembled EFM set must be identical.
        let spill_opts = crate::EfmOptions { spill_budget: Some(0), ..Default::default() };
        let spilled = crate::enumerate_divide_conquer_scheduled(
            &net,
            &spill_opts,
            &part,
            &crate::Backend::Serial,
            &dnc,
        )
        .unwrap();
        assert_eq!(base.efms, spilled.efms);
        assert!(spilled.stats.spill_bytes > 0, "expected spilled stripe bytes in stats");
        assert_eq!(base.stats.spill_bytes, 0);
    }
}
