//! The iteration engine of the Nullspace Algorithm.
//!
//! State is a *binary-plus-numeric* representation of each intermediate
//! mode, following the structure of the paper's Fig. 2 columns:
//!
//! * a **bit pattern** over the rows whose sign can never change again —
//!   the identity block and every processed *irreversible* row (all live
//!   modes are nonnegative there and positive combinations cannot cancel);
//! * exact **numeric values** for the processed *reversible* rows (kept
//!   negative columns make cancellation possible there, so bits would
//!   overstate supports) and for the unprocessed tail rows.
//!
//! One iteration (Algorithm 1, loop body):
//!
//! 1. partition modes by the sign of the current row's value;
//! 2. pair every positive with every negative mode — `|pos|·|neg|` is the
//!    paper's "generated candidate modes" count;
//! 3. summary rejection: a candidate whose support exceeds `m+1` entries
//!    cannot have nullity 1;
//! 4. sort + remove duplicate candidates (by support);
//! 5. elementarity test (algebraic rank test, or the combinatorial
//!    support-minimality test for the ablation);
//! 6. advance: keep zero and positive modes, keep negative modes only for
//!    reversible rows, append accepted candidates.
//!
//! The engine is driver-agnostic: candidate generation takes an explicit
//! pair-index range, so the serial driver passes the full grid, the rayon
//! driver splits it into chunks, and the cluster driver stripes it across
//! ranks exactly like the paper's combinatorial parallelization.

use crate::bridge::EfmScalar;
use crate::problem::EfmProblem;
use crate::types::{CandidateTest, EfmError, EfmOptions, IterationStats, RunStats};
use efm_bitset::{BitPattern, KernelTier, PatternTree};
use efm_linalg::{nullity_of_cols, Mat};

/// Absolute tolerance of the floating-point rank test (columns are
/// max-scaled first).
pub const RANK_TOL: f64 = 1e-9;

use efm_numeric::Scalar;

/// Struct-of-arrays storage for intermediate modes.
///
/// Each mode owns `rev_len + tail_len` numeric values: first the processed
/// reversible rows (in processing order), then the unprocessed rows (in
/// position order). The value of the *current* row is `vals[rev_len]`.
#[derive(Debug, Clone, Default)]
pub struct ModeMatrix<P, S> {
    /// Bit patterns over identity + processed irreversible rows.
    pub patterns: Vec<P>,
    /// Numeric sections, flattened with stride `rev_len + tail_len`.
    pub vals: Vec<S>,
    /// Number of processed reversible rows.
    pub rev_len: usize,
    /// Number of unprocessed rows.
    pub tail_len: usize,
}

impl<P: BitPattern, S: Scalar> ModeMatrix<P, S> {
    /// Values per mode.
    #[inline]
    pub fn stride(&self) -> usize {
        self.rev_len + self.tail_len
    }

    /// Number of modes.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether there are no modes.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The numeric section of mode `i`.
    #[inline]
    pub fn vals(&self, i: usize) -> &[S] {
        let s = self.stride();
        &self.vals[i * s..(i + 1) * s]
    }

    /// Approximate resident bytes (for the cluster memory meter).
    pub fn approx_bytes(&self) -> u64 {
        (self.patterns.len() * std::mem::size_of::<P>()
            + self.vals.len() * std::mem::size_of::<S>()) as u64
    }
}

/// Candidate modes produced within one iteration, struct-of-arrays.
#[derive(Debug, Clone)]
pub struct CandidateBuf<P, S> {
    /// Pattern over fixed rows (union of the parents').
    pub patterns: Vec<P>,
    /// Support bits of the numeric section (bit `k` ⇔ `vals[k]` nonzero) —
    /// the second half of the dedup key.
    pub val_sups: Vec<P>,
    /// Numeric sections, flattened with stride `stride`.
    pub vals: Vec<S>,
    /// Values per candidate.
    pub stride: usize,
}

impl<P: BitPattern, S: Scalar> CandidateBuf<P, S> {
    /// Empty buffer for candidates with the given numeric stride.
    pub fn new(stride: usize) -> Self {
        CandidateBuf { patterns: Vec::new(), val_sups: Vec::new(), vals: Vec::new(), stride }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The numeric section of candidate `i`.
    #[inline]
    pub fn vals(&self, i: usize) -> &[S] {
        &self.vals[i * self.stride..(i + 1) * self.stride]
    }

    /// Appends all candidates of `other` (same stride).
    pub fn append(&mut self, other: &mut CandidateBuf<P, S>) {
        assert_eq!(self.stride, other.stride, "stride mismatch");
        self.patterns.append(&mut other.patterns);
        self.val_sups.append(&mut other.val_sups);
        self.vals.append(&mut other.vals);
    }

    /// Sorts by `(pattern, value support)` and removes duplicates, keeping
    /// the first occurrence. Two candidates with equal support describe
    /// the same ray, so survivors are unaffected.
    pub fn sort_dedup(&mut self) {
        let n = self.len();
        if n <= 1 {
            return;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.patterns[a]
                .cmp(&self.patterns[b])
                .then_with(|| self.val_sups[a].cmp(&self.val_sups[b]))
        });
        order.dedup_by(|&mut a, &mut b| {
            let (a, b) = (a as usize, b as usize);
            self.patterns[a] == self.patterns[b] && self.val_sups[a] == self.val_sups[b]
        });
        self.gather(&order);
    }

    /// Keeps only the candidates at the given indices, in order. Filter
    /// passes produce strictly ascending index lists, which compact the
    /// buffers in place without allocating; arbitrary permutations (the
    /// sort path) fall back to a rebuild.
    pub fn gather(&mut self, keep: &[u32]) {
        let stride = self.stride;
        if is_strictly_ascending(keep) {
            for (dst, &src) in keep.iter().enumerate() {
                let src = src as usize;
                if src != dst {
                    self.patterns[dst] = self.patterns[src];
                    self.val_sups[dst] = self.val_sups[src];
                    for t in 0..stride {
                        let v = self.vals[src * stride + t].clone();
                        self.vals[dst * stride + t] = v;
                    }
                }
            }
            self.patterns.truncate(keep.len());
            self.val_sups.truncate(keep.len());
            self.vals.truncate(keep.len() * stride);
            return;
        }
        let mut patterns = Vec::with_capacity(keep.len());
        let mut val_sups = Vec::with_capacity(keep.len());
        let mut vals = Vec::with_capacity(keep.len() * stride);
        for &i in keep {
            let i = i as usize;
            patterns.push(self.patterns[i]);
            val_sups.push(self.val_sups[i]);
            vals.extend_from_slice(self.vals(i));
        }
        self.patterns = patterns;
        self.val_sups = val_sups;
        self.vals = vals;
    }

    /// Merges two buffers sorted by `(pattern, value support)` into one,
    /// dropping key duplicates (keeping `a`'s copy — equal keys describe
    /// the same ray). Linear in the combined length.
    pub fn merge_sorted(a: CandidateBuf<P, S>, b: CandidateBuf<P, S>) -> CandidateBuf<P, S> {
        assert_eq!(a.stride, b.stride, "stride mismatch");
        debug_assert!(is_sorted_by_key(&a.patterns, &a.val_sups));
        debug_assert!(is_sorted_by_key(&b.patterns, &b.val_sups));
        if a.is_empty() {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        let stride = a.stride;
        let mut out = CandidateBuf::new(stride);
        out.patterns.reserve(a.len() + b.len());
        out.val_sups.reserve(a.len() + b.len());
        out.vals.reserve(a.vals.len() + b.vals.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let take_a = if i == a.len() {
                false
            } else if j == b.len() {
                true
            } else {
                match a.patterns[i]
                    .cmp(&b.patterns[j])
                    .then_with(|| a.val_sups[i].cmp(&b.val_sups[j]))
                {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        j += 1; // duplicate key: skip b's copy
                        true
                    }
                }
            };
            let (src, k) = if take_a { (&a, i) } else { (&b, j) };
            out.patterns.push(src.patterns[k]);
            out.val_sups.push(src.val_sups[k]);
            out.vals.extend_from_slice(src.vals(k));
            if take_a {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Merges any number of sorted buffers by pairwise rounds.
    pub fn merge_sorted_many(bufs: Vec<CandidateBuf<P, S>>, stride: usize) -> CandidateBuf<P, S> {
        let mut runs = bufs;
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(CandidateBuf::merge_sorted(a, b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_else(|| CandidateBuf::new(stride))
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> u64 {
        (self.patterns.len() * 2 * std::mem::size_of::<P>()
            + self.vals.len() * std::mem::size_of::<S>()) as u64
    }
}

/// Whether `keep` is a strictly ascending index list (the shape every
/// filter pass produces) — the trigger for allocation-free compaction.
#[inline]
fn is_strictly_ascending(keep: &[u32]) -> bool {
    keep.windows(2).all(|w| w[0] < w[1])
}

/// Debug check: the `(pattern, val_sup)` keys are sorted ascending.
fn is_sorted_by_key<P: BitPattern>(patterns: &[P], val_sups: &[P]) -> bool {
    (1..patterns.len()).all(|i| {
        patterns[i - 1].cmp(&patterns[i]).then_with(|| val_sups[i - 1].cmp(&val_sups[i])).is_le()
    })
}

/// Lightweight candidate records produced by the generation pass: support
/// information plus parent indices, **without** numeric values. Values are
/// recomputed only for the (few) candidates that survive deduplication and
/// the elementarity test ([`Engine::materialize`]), which avoids writing
/// kilobytes of exact integers per rejected candidate.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet<P> {
    /// Pattern over fixed rows (union of the parents').
    pub patterns: Vec<P>,
    /// Support bits of the numeric section.
    pub val_sups: Vec<P>,
    /// `(positive parent, negative parent)` mode indices.
    pub parents: Vec<(u32, u32)>,
    /// Pairs that reached the numeric combination pass (prefilter hits) —
    /// instrumentation for tuning the cheap bounds.
    pub numeric_pass: u64,
    /// Cache blocks the generation kernel processed to produce this set —
    /// instrumentation for the blocked sweep (merged like `numeric_pass`).
    pub blocks: u64,
}

impl<P: BitPattern> CandidateSet<P> {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Appends all candidates of `other`.
    pub fn append(&mut self, other: &mut CandidateSet<P>) {
        self.patterns.append(&mut other.patterns);
        self.val_sups.append(&mut other.val_sups);
        self.parents.append(&mut other.parents);
        self.numeric_pass += other.numeric_pass;
        self.blocks += other.blocks;
    }

    /// Sorts by `(pattern, value support)` and removes duplicates.
    pub fn sort_dedup(&mut self) {
        let n = self.len();
        if n <= 1 {
            return;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.patterns[a]
                .cmp(&self.patterns[b])
                .then_with(|| self.val_sups[a].cmp(&self.val_sups[b]))
        });
        order.dedup_by(|&mut a, &mut b| {
            let (a, b) = (a as usize, b as usize);
            self.patterns[a] == self.patterns[b] && self.val_sups[a] == self.val_sups[b]
        });
        self.gather(&order);
    }

    /// Keeps only the candidates at the given indices, in order. Strictly
    /// ascending index lists (every filter pass) compact in place without
    /// allocating; permutations (the sort path) rebuild.
    pub fn gather(&mut self, keep: &[u32]) {
        if is_strictly_ascending(keep) {
            for (dst, &src) in keep.iter().enumerate() {
                let src = src as usize;
                if src != dst {
                    self.patterns[dst] = self.patterns[src];
                    self.val_sups[dst] = self.val_sups[src];
                    self.parents[dst] = self.parents[src];
                }
            }
            self.patterns.truncate(keep.len());
            self.val_sups.truncate(keep.len());
            self.parents.truncate(keep.len());
            return;
        }
        let mut patterns = Vec::with_capacity(keep.len());
        let mut val_sups = Vec::with_capacity(keep.len());
        let mut parents = Vec::with_capacity(keep.len());
        for &i in keep {
            let i = i as usize;
            patterns.push(self.patterns[i]);
            val_sups.push(self.val_sups[i]);
            parents.push(self.parents[i]);
        }
        self.patterns = patterns;
        self.val_sups = val_sups;
        self.parents = parents;
    }

    /// Merges two sets sorted by `(pattern, value support)` into one,
    /// dropping key duplicates (keeping `a`'s copy). Linear in the combined
    /// length — the building block of the parallel run-merge that replaced
    /// the post-generation global sort.
    pub fn merge_sorted(a: CandidateSet<P>, b: CandidateSet<P>) -> CandidateSet<P> {
        debug_assert!(is_sorted_by_key(&a.patterns, &a.val_sups));
        debug_assert!(is_sorted_by_key(&b.patterns, &b.val_sups));
        let numeric_pass = a.numeric_pass + b.numeric_pass;
        let blocks = a.blocks + b.blocks;
        if a.is_empty() {
            return CandidateSet { numeric_pass, blocks, ..b };
        }
        if b.is_empty() {
            return CandidateSet { numeric_pass, blocks, ..a };
        }
        let cap = a.len() + b.len();
        let mut out = CandidateSet {
            patterns: Vec::with_capacity(cap),
            val_sups: Vec::with_capacity(cap),
            parents: Vec::with_capacity(cap),
            numeric_pass,
            blocks,
        };
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let take_a = if i == a.len() {
                false
            } else if j == b.len() {
                true
            } else {
                match a.patterns[i]
                    .cmp(&b.patterns[j])
                    .then_with(|| a.val_sups[i].cmp(&b.val_sups[j]))
                {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        j += 1; // duplicate key: skip b's copy
                        true
                    }
                }
            };
            let (src, k) = if take_a { (&a, i) } else { (&b, j) };
            out.patterns.push(src.patterns[k]);
            out.val_sups.push(src.val_sups[k]);
            out.parents.push(src.parents[k]);
            if take_a {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> u64 {
        (self.patterns.len() * (2 * std::mem::size_of::<P>() + 8)) as u64
    }
}

/// Sign partition of the current row: indices of modes with positive,
/// negative, and zero value.
#[derive(Debug, Clone, Default)]
pub struct SignPartition<P> {
    /// Modes with positive entry.
    pub pos: Vec<u32>,
    /// Modes with negative entry.
    pub neg: Vec<u32>,
    /// Modes with zero entry.
    pub zero: Vec<u32>,
    /// Patterns of the negative modes, gathered contiguously so the hot
    /// pair loop streams a dense slice instead of chasing indices.
    pub neg_pats: Vec<P>,
    /// Value-section supports of the negative modes (current-row slot
    /// excluded), aligned with `neg_pats`. Slots where exactly one parent
    /// is nonzero survive any positive combination, so
    /// `xor_count(pos_sup, neg_sup)` is a true lower bound on the
    /// candidate's tail nonzeros — a second cheap rejection level.
    pub neg_tail_sups: Vec<P>,
}

impl<P> SignPartition<P> {
    /// Total candidate pairs of this iteration.
    pub fn pairs(&self) -> u64 {
        self.pos.len() as u64 * self.neg.len() as u64
    }
}

/// Bump-arena-style scratch for the candidate-generation kernel.
///
/// A driver owns one arena per worker and carries it across iterations:
/// every buffer is *reset* (cleared) at the start of a sweep, never freed,
/// so steady-state generation performs no heap allocation — the buffers
/// grow to the high-water mark of the run and stay there. The hoisted
/// positive-row data (`pos_*`) lets the cache-blocked sweep revisit a row
/// once per negative block without re-deriving its pattern, tail support
/// or combination coefficient each time.
#[derive(Debug)]
pub struct GenArena<P, S> {
    /// Hoisted patterns of the positive rows covered by the active range.
    pos_pats: Vec<P>,
    /// Hoisted tail supports of those rows.
    pos_sups: Vec<P>,
    /// Hoisted negative-parent coefficients (`−v_p` per positive row).
    pos_coeffs: Vec<S>,
    /// Positive row index the hoisted vectors start at.
    row_base: usize,
    /// Prefilter bound buffer (one `u32` per pair of the active block).
    bounds: Vec<u32>,
    /// Surviving pair indices of the active (row, block) sweep.
    hits: Vec<u32>,
    /// Candidate numeric-section scratch for the exact-arithmetic pass.
    scratch: Vec<S>,
}

impl<P, S> Default for GenArena<P, S> {
    fn default() -> Self {
        GenArena {
            pos_pats: Vec::new(),
            pos_sups: Vec::new(),
            pos_coeffs: Vec::new(),
            row_base: 0,
            bounds: Vec::new(),
            hits: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl<P, S> GenArena<P, S> {
    /// A fresh (empty) arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate resident bytes across all buffers (capacities, since
    /// the arena's point is retained capacity).
    pub fn approx_bytes(&self) -> u64 {
        (self.pos_pats.capacity() * std::mem::size_of::<P>()
            + self.pos_sups.capacity() * std::mem::size_of::<P>()
            + self.pos_coeffs.capacity() * std::mem::size_of::<S>()
            + self.bounds.capacity() * std::mem::size_of::<u32>()
            + self.hits.capacity() * std::mem::size_of::<u32>()
            + self.scratch.capacity() * std::mem::size_of::<S>()) as u64
    }
}

/// Counters and phase timings of one bounded streaming generation pass
/// ([`Engine::stream_range`]).
///
/// The pass interleaves all pipeline phases per batch, so timings are
/// accumulated here and folded into the driver's phase breakdown afterwards
/// (an RAII phase timer per batch would misattribute the interleaving).
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Bounded batches processed.
    pub batches: u64,
    /// Pairs that survived the summary rejection (raw candidates).
    pub prefiltered: u64,
    /// Candidates reaching the elementarity test after per-batch dedup and
    /// the duplicate-of-existing drop (cross-batch duplicates count once
    /// per batch they appear in).
    pub tested: u64,
    /// High-water transient footprint in bytes: accumulated survivors +
    /// in-flight batch + generation arena, maximised over batches. This is
    /// exactly what the pass reports to its `charge` hook.
    pub transient_peak: u64,
    /// Time spent generating candidates.
    pub t_generate: std::time::Duration,
    /// Time spent in per-batch sort/dedup.
    pub t_dedup: std::time::Duration,
    /// Time spent in the duplicate-of-existing drop.
    pub t_tree: std::time::Duration,
    /// Time spent in the per-batch elementarity test.
    pub t_test: std::time::Duration,
}

/// The engine: problem data plus evolving mode matrix.
pub struct Engine<P: BitPattern, S: EfmScalar> {
    /// Stoichiometry used by rank tests.
    pub stoich: Mat<S>,
    /// `m + 1`: maximum support size a nullity-1 candidate can have.
    pub max_support: usize,
    /// Position → column map (the kernel row order).
    pub row_order: Vec<usize>,
    /// Reversibility per *position*.
    pub reversible_at: Vec<bool>,
    /// Display names per position.
    pub name_at: Vec<String>,
    /// First processed position (identity block size).
    pub free_count: usize,
    /// One past the last position to process.
    pub stop_at: usize,
    /// Current position (next row to process).
    pub cursor: usize,
    /// Positions of the processed reversible rows, in processing order
    /// (indexes the `rev` section of every mode's numeric values).
    pub rev_positions: Vec<usize>,
    /// The evolving mode matrix.
    pub modes: ModeMatrix<P, S>,
    /// Elementarity test.
    pub test: CandidateTest,
    /// Whether rank tests run in exact arithmetic (see
    /// [`EfmOptions::exact_rank_test`]).
    pub exact_rank_test: bool,
    /// Whether subset/duplicate scans use bit-pattern trees (see
    /// [`EfmOptions::pattern_trees`]).
    pub pattern_trees: bool,
    /// Instruction tier the generation kernel dispatches to, resolved once
    /// from [`EfmOptions::kernel`] + runtime CPU detection.
    pub kernel_tier: KernelTier,
    /// Run statistics.
    pub stats: RunStats,
    /// Column-major, column-max-scaled f64 copy of `stoich` for the
    /// numerical rank test (`stoich_f64[c*m + r]`).
    stoich_f64: Vec<f64>,
    /// Per-column bitmask of nonzero rows (active-row pruning); empty when
    /// the stoichiometry has more than 128 rows.
    row_masks: Vec<u128>,
}

impl<P: BitPattern, S: EfmScalar> Engine<P, S> {
    /// Builds the start state from a problem. Fails when the pattern width
    /// cannot hold the subproblem's columns.
    pub fn new(problem: &EfmProblem<S>, opts: &EfmOptions) -> Result<Self, EfmError> {
        let q = problem.num_cols();
        if q > P::capacity() {
            return Err(EfmError::TooManyReactions { got: q, max: P::capacity() });
        }
        let d = problem.free_count;
        let tail_len = q - d;
        let mut patterns = Vec::with_capacity(d);
        let mut vals = Vec::with_capacity(d * tail_len);
        for j in 0..problem.kernel.cols() {
            let mut pat = P::empty();
            pat.set(j);
            patterns.push(pat);
            for k in 0..tail_len {
                let col = problem.row_order[d + k];
                vals.push(problem.kernel.get(col, j).clone());
            }
        }
        let reversible_at: Vec<bool> =
            problem.row_order.iter().map(|&c| problem.reversible[c]).collect();
        let name_at: Vec<String> =
            problem.row_order.iter().map(|&c| problem.names[c].clone()).collect();
        // Cache a scaled f64 copy of the stoichiometry and per-column
        // nonzero-row masks for the hot numerical rank test.
        let m = problem.num_rows();
        let qc = problem.stoich.cols();
        let mut stoich_f64 = vec![0.0f64; m * qc];
        let mut row_masks = Vec::new();
        for c in 0..qc {
            let mut maxabs = 0.0f64;
            for r in 0..m {
                let v = problem.stoich.get(r, c).to_f64();
                stoich_f64[c * m + r] = v;
                maxabs = maxabs.max(v.abs());
            }
            if maxabs > 0.0 {
                for r in 0..m {
                    stoich_f64[c * m + r] /= maxabs;
                }
            }
        }
        if m <= 128 {
            row_masks = (0..qc)
                .map(|c| {
                    let mut mask = 0u128;
                    for r in 0..m {
                        if stoich_f64[c * m + r] != 0.0 {
                            mask |= 1u128 << r;
                        }
                    }
                    mask
                })
                .collect();
        }
        let mut engine = Engine {
            stoich: problem.stoich.clone(),
            max_support: problem.num_rows() + 1,
            row_order: problem.row_order.clone(),
            reversible_at,
            name_at,
            free_count: d,
            stop_at: q - problem.stop_before,
            cursor: d,
            rev_positions: Vec::new(),
            modes: ModeMatrix { patterns, vals, rev_len: 0, tail_len },
            test: opts.test,
            exact_rank_test: opts.exact_rank_test,
            pattern_trees: opts.pattern_trees,
            kernel_tier: opts.kernel.resolve(),
            stats: RunStats::default(),
            stoich_f64,
            row_masks,
        };
        engine.stats.peak_modes = engine.modes.len();
        engine.stats.kernel_tier = engine.kernel_tier.name().to_string();
        if efm_obs::enabled() {
            efm_obs::meta_set("kernel_tier", engine.kernel_tier.name());
            efm_obs::meta_set("kernel_block_pairs", &P::block_pairs().to_string());
            efm_obs::meta_set("pattern_words", &(P::capacity() / 64).to_string());
        }
        Ok(engine)
    }

    /// Whether all rows have been processed.
    pub fn done(&self) -> bool {
        self.cursor >= self.stop_at
    }

    /// Number of iterations remaining.
    pub fn remaining(&self) -> usize {
        self.stop_at - self.cursor
    }

    /// Whether the current row is reversible.
    #[inline]
    pub fn current_reversible(&self) -> bool {
        self.reversible_at[self.cursor]
    }

    /// Stride candidates of the current iteration will have: unchanged for
    /// a reversible row (the zero entry stays, reinterpreted as part of the
    /// rev section), one less for an irreversible row.
    #[inline]
    pub fn candidate_stride(&self) -> usize {
        if self.current_reversible() {
            self.modes.stride()
        } else {
            self.modes.stride() - 1
        }
    }

    /// Sign-partitions the current row.
    pub fn partition(&self) -> SignPartition<P> {
        let mut p = SignPartition::default();
        let stride = self.modes.stride();
        let head = self.modes.rev_len;
        for i in 0..self.modes.len() {
            match self.modes.vals[i * stride + head].signum() {
                1 => p.pos.push(i as u32),
                -1 => p.neg.push(i as u32),
                _ => p.zero.push(i as u32),
            }
        }
        p.neg_pats = p.neg.iter().map(|&i| self.modes.patterns[i as usize]).collect();
        p.neg_tail_sups = p.neg.iter().map(|&i| self.val_support(i as usize)).collect();
        p
    }

    /// Support bits of a mode's value section, current-row slot excluded.
    fn val_support(&self, i: usize) -> P {
        let head = self.modes.rev_len;
        let mut s = P::empty();
        for (t, v) in self.modes.vals(i).iter().enumerate() {
            if t != head && !v.is_zero() {
                s.set(t);
            }
        }
        s
    }

    /// Generates candidates for the pair-index range `[start, end)` of the
    /// `pos × neg` grid (pair `k` = `(pos[k / |neg|], neg[k % |neg|])`).
    /// Survivors of the summary rejection are appended to `out`.
    /// Returns the number of surviving pairs.
    ///
    /// The sweep is cache-blocked: the range decomposes into a leading
    /// partial row, a body of full rows and a trailing partial row; each
    /// piece is tiled into L1-sized negative-side blocks
    /// ([`BitPattern::block_pairs`] pairs wide) with the positive-side row
    /// data hoisted into the arena once per call, so the vectorized
    /// prefilter streams dense pattern slices block by block. Candidates
    /// come out block-major rather than row-major — every consumer
    /// sorts/dedups before use, so only the order within `out` differs
    /// from the classical sweep, never the surviving set.
    pub fn generate_range(
        &self,
        part: &SignPartition<P>,
        start: u64,
        end: u64,
        out: &mut CandidateSet<P>,
        arena: &mut GenArena<P, S>,
    ) -> u64 {
        let nneg = part.neg.len() as u64;
        if nneg == 0 || start >= end {
            return 0;
        }
        let head = self.modes.rev_len;
        let a0 = (start / nneg) as usize;
        let a1 = ((end - 1) / nneg) as usize; // inclusive last row
        let b0 = (start % nneg) as usize;
        let b1 = ((end - 1) % nneg + 1) as usize; // exclusive col end of last row
                                                  // Hoist the positive-side data for all rows of the range: the
                                                  // blocked sweep revisits each row once per negative block, and
                                                  // recomputing the tail support there would re-scan the numeric
                                                  // section per block instead of once per call.
        arena.row_base = a0;
        arena.pos_pats.clear();
        arena.pos_sups.clear();
        arena.pos_coeffs.clear();
        for a in a0..=a1 {
            let pi = part.pos[a] as usize;
            arena.pos_pats.push(self.modes.patterns[pi]);
            arena.pos_sups.push(self.val_support(pi));
            arena.pos_coeffs.push(self.modes.vals(pi)[head].neg());
        }
        let nneg = nneg as usize;
        if a0 == a1 {
            self.generate_tiles(part, a0..a0 + 1, b0, b1, out, arena)
        } else {
            let mut survivors = self.generate_tiles(part, a0..a0 + 1, b0, nneg, out, arena);
            survivors += self.generate_tiles(part, a0 + 1..a1, 0, nneg, out, arena);
            survivors += self.generate_tiles(part, a1..a1 + 1, 0, b1, out, arena);
            survivors
        }
    }

    /// Cache-blocked sweep over rows `rows` × columns `[ca, cb)` of the
    /// pair grid. The negative-side streams are cut into
    /// [`BitPattern::block_pairs`]-sized blocks; for each block every
    /// hoisted positive row runs the batched prefilter
    /// ([`BitPattern::prefilter_block`], SIMD for inline widths) and only
    /// surviving pairs reach the exact-arithmetic pass. The bound is exact
    /// for settled rows (pattern union) and uses the one-parent-nonzero
    /// guarantee for value slots (XOR of tail supports).
    fn generate_tiles(
        &self,
        part: &SignPartition<P>,
        rows: std::ops::Range<usize>,
        ca: usize,
        cb: usize,
        out: &mut CandidateSet<P>,
        arena: &mut GenArena<P, S>,
    ) -> u64 {
        if rows.is_empty() || ca >= cb {
            return 0;
        }
        let stride = self.modes.stride();
        let head = self.modes.rev_len;
        let max_nz = self.max_support as u32;
        let reversible = self.current_reversible();
        let block = P::block_pairs();
        let GenArena { pos_pats, pos_sups, pos_coeffs, row_base, bounds, hits, scratch } =
            &mut *arena;
        let mut survivors = 0u64;
        let mut cs = ca;
        while cs < cb {
            let ce = (cs + block).min(cb);
            out.blocks += 1;
            let negs = &part.neg_pats[cs..ce];
            let nsups = &part.neg_tail_sups[cs..ce];
            for a in rows.clone() {
                let r = a - *row_base;
                let pat_p = pos_pats[r];
                let pi = part.pos[a] as usize;
                let vals_p = self.modes.vals(pi);
                let coeff_n = &pos_coeffs[r]; // multiplies the negative parent (−v_p)
                hits.clear();
                P::prefilter_block(
                    self.kernel_tier,
                    &pat_p,
                    &pos_sups[r],
                    negs,
                    nsups,
                    max_nz,
                    cs as u32,
                    bounds,
                    hits,
                );
                out.numeric_pass += hits.len() as u64;
                // Numeric pass on prefilter survivors only; values go to
                // the arena scratch — only the support bits are recorded.
                'hits: for &bidx in hits.iter() {
                    let ni = part.neg[bidx as usize] as usize;
                    let pat_n = &self.modes.patterns[ni];
                    let base = pat_p.union_count(pat_n);
                    let vals_n = self.modes.vals(ni);
                    let coeff_p = vals_n[head].neg(); // = −v_n > 0
                    let mut nz = base;
                    scratch.clear();
                    let mut sup = P::empty();
                    for t in 0..stride {
                        if t == head {
                            continue;
                        }
                        let v = S::fused_comb(&coeff_p, &vals_p[t], coeff_n, &vals_n[t]);
                        if !v.is_zero() {
                            nz += 1;
                            if nz > max_nz {
                                continue 'hits;
                            }
                            sup.set(scratch.len());
                        }
                        scratch.push(v);
                    }
                    // On reversible rows the (zero) current-row slot stays
                    // part of the numeric section; its support bit is never
                    // set, but slot indices must account for it.
                    if reversible {
                        let mut shifted = P::empty();
                        sup.for_each_one(|slot| {
                            shifted.set(if slot >= head { slot + 1 } else { slot });
                        });
                        sup = shifted;
                    }
                    out.patterns.push(pat_p.union(pat_n));
                    out.val_sups.push(sup);
                    out.parents.push((pi as u32, ni as u32));
                    survivors += 1;
                }
            }
            cs = ce;
        }
        survivors
    }

    /// [`Engine::drop_duplicates_of_existing`] against a prebuilt support
    /// set — the hash-set fallback the streaming pass builds once per call
    /// instead of once per batch.
    fn drop_duplicates_with_set(
        &self,
        buf: &mut CandidateSet<P>,
        zero_sups: &std::collections::HashSet<P>,
    ) -> u64 {
        if buf.is_empty() || zero_sups.is_empty() {
            return 0;
        }
        let keep: Vec<u32> = (0..buf.len())
            .filter(|&i| !zero_sups.contains(&self.candidate_support(buf, i)))
            .map(|i| i as u32)
            .collect();
        let dropped = buf.len() as u64 - keep.len() as u64;
        if dropped > 0 {
            buf.gather(&keep);
        }
        dropped
    }

    /// Streaming counterpart of [`Engine::generate_range`]: the pair range
    /// is processed in bounded batches of at most `batch_pairs` pairs, and
    /// each batch flows through sort/dedup → duplicate-of-existing drop →
    /// (for the rank test) the per-candidate elementarity test *before* the
    /// next batch is generated. Only survivors accumulate in `out`, so the
    /// transient footprint is one batch plus the accumulated survivor set
    /// — not the full materialized pair range.
    ///
    /// `charge` is invoked once per batch with the current transient
    /// footprint in bytes (survivors + in-flight batch + arena); a driver
    /// charges it against its memory meter and returns an error to abort
    /// generation with a typed failure instead of OOM-ing.
    ///
    /// The surviving set is identical to the materialize-then-filter path:
    /// the rank test is a per-candidate function of the support columns, so
    /// batch-local verdicts agree with global ones, and cross-batch
    /// duplicates receive equal verdicts and collapse in the sorted merge
    /// (which keeps the first copy, exactly like the global sort+dedup).
    /// The cross-candidate adjacency test cannot run batch-locally, so with
    /// `filter` set it is deferred to the caller on the merged set.
    #[allow(clippy::too_many_arguments)] // driver-facing orchestration point: range + scratch + accounting hook
    pub fn stream_range(
        &self,
        part: &SignPartition<P>,
        start: u64,
        end: u64,
        batch_pairs: u64,
        zero_tree: Option<&PatternTree<P>>,
        filter: bool,
        out: &mut CandidateSet<P>,
        arena: &mut GenArena<P, S>,
        charge: &mut dyn FnMut(u64) -> Result<(), EfmError>,
    ) -> Result<StreamStats, EfmError> {
        use std::time::Instant;
        let mut ss = StreamStats::default();
        if start >= end || part.neg.is_empty() {
            return Ok(ss);
        }
        let batch_pairs = batch_pairs.max(1);
        // Hash-set fallback of the duplicate-of-existing drop, built once
        // per pass (the tree variant receives its tree from the caller).
        let zero_sups: Option<std::collections::HashSet<P>> = (zero_tree.is_none()
            && !part.zero.is_empty())
        .then(|| part.zero.iter().map(|&i| self.mode_support(i as usize)).collect());
        let per_batch_filter = filter && matches!(self.test, CandidateTest::Rank);
        let mut s = start;
        while s < end {
            let e = (s + batch_pairs).min(end);
            ss.batches += 1;
            let t0 = Instant::now();
            let sp = efm_obs::span(crate::cluster_algo::phases::GENERATE);
            let mut batch = CandidateSet::default();
            ss.prefiltered += self.generate_range(part, s, e, &mut batch, arena);
            drop(sp);
            let t1 = Instant::now();
            let sp = efm_obs::span(crate::cluster_algo::phases::DEDUP);
            batch.sort_dedup();
            drop(sp);
            let t2 = Instant::now();
            let sp = efm_obs::span(crate::cluster_algo::phases::TREE);
            match (&zero_tree, &zero_sups) {
                (Some(tree), _) => {
                    self.drop_duplicates_with_tree(&mut batch, tree);
                }
                (None, Some(sups)) => {
                    self.drop_duplicates_with_set(&mut batch, sups);
                }
                _ => {}
            }
            drop(sp);
            let t3 = Instant::now();
            ss.tested += batch.len() as u64;
            if per_batch_filter {
                let sp = efm_obs::span(crate::cluster_algo::phases::RANK);
                let keep = self.rank_filter_range(&batch, 0..batch.len());
                batch.gather(&keep);
                drop(sp);
            }
            let t4 = Instant::now();
            let transient = out.approx_bytes() + batch.approx_bytes() + arena.approx_bytes();
            ss.transient_peak = ss.transient_peak.max(transient);
            charge(transient)?;
            *out = CandidateSet::merge_sorted(std::mem::take(out), batch);
            ss.t_generate += t1 - t0;
            ss.t_dedup += t2 - t1;
            ss.t_tree += t3 - t2;
            ss.t_test += t4 - t3;
            s = e;
        }
        Ok(ss)
    }

    /// Runs one full iteration with the bounded streaming pipeline
    /// ([`Engine::stream_range`]) instead of materialize-then-filter. The
    /// surviving mode set is identical to [`Engine::step_with`]; only the
    /// transient footprint (and hence `peak_transient_bytes`, which this
    /// path both bounds and charges via `charge`) differs.
    pub fn step_streaming(
        &mut self,
        arena: &mut GenArena<P, S>,
        batch_pairs: u64,
        charge: &mut dyn FnMut(u64) -> Result<(), EfmError>,
    ) -> Result<IterationStats, EfmError> {
        use std::time::Instant;
        debug_assert!(!self.done());
        let mut rec = IterationStats {
            position: self.cursor,
            reaction: self.name_at[self.cursor].clone(),
            reversible: self.current_reversible(),
            ..Default::default()
        };
        let part = self.partition();
        rec.pos = part.pos.len();
        rec.neg = part.neg.len();
        rec.zero = part.zero.len();
        rec.pairs = part.pairs();
        let modes_bytes = self.modes.approx_bytes();
        let zero_tree =
            (self.pattern_trees && !part.zero.is_empty()).then(|| self.zero_support_tree(&part));
        let mut set = CandidateSet::default();
        let ss = self.stream_range(
            &part,
            0,
            part.pairs(),
            batch_pairs,
            zero_tree.as_ref(),
            true,
            &mut set,
            arena,
            charge,
        )?;
        rec.prefiltered = ss.prefiltered;
        rec.numeric_pass = set.numeric_pass;
        rec.deduped = ss.tested;
        let t_accept = Instant::now();
        rec.accepted = if matches!(self.test, CandidateTest::Rank) {
            set.len() as u64
        } else {
            // Adjacency is a cross-candidate test: it needs the merged
            // survivor set of the whole iteration.
            self.elementarity_filter_with(&mut set, &part, zero_tree.as_ref())
        };
        let t_extra = t_accept.elapsed();
        let sp = efm_obs::span(crate::cluster_algo::phases::MERGE);
        let buf = self.materialize(&set);
        self.advance(&part, buf);
        drop(sp);
        rec.modes_after = self.modes.len();
        rec.t_generate = ss.t_generate;
        rec.t_merge = ss.t_dedup;
        rec.t_tree_filter = ss.t_tree;
        rec.t_dedup = ss.t_dedup + ss.t_tree;
        rec.t_test = ss.t_test + t_extra;
        self.stats.phases.generate += ss.t_generate;
        self.stats.phases.dedup += ss.t_dedup;
        self.stats.phases.tree_filter += ss.t_tree;
        self.stats.phases.rank_test += ss.t_test + t_extra;
        self.stats.candidates_generated += rec.pairs;
        self.stats.tree_pruned += rec.pairs - rec.prefiltered;
        self.stats.dedup_hits += ss.prefiltered - ss.tested;
        self.stats.rank_tests += ss.tested;
        self.stats.stream_batches += ss.batches;
        self.stats.peak_transient_bytes = self.stats.peak_transient_bytes.max(ss.transient_peak);
        // Honest charged peak: resident modes plus the bounded transient.
        let resident = self.modes.approx_bytes();
        self.stats.peak_bytes =
            self.stats.peak_bytes.max(modes_bytes + ss.transient_peak).max(resident);
        self.note_kernel_counters(set.blocks, rec.pairs - rec.numeric_pass, arena.approx_bytes());
        if efm_obs::enabled() {
            efm_obs::counter_add("dedup hits", ss.prefiltered - ss.tested);
            efm_obs::gauge_max("peak transient bytes", ss.transient_peak);
        }
        self.note_iteration_counters(&rec);
        self.stats.iterations.push(rec.clone());
        Ok(rec)
    }

    /// Recomputes the numeric sections for the surviving candidates (their
    /// parents are still alive) and produces the buffer [`Engine::advance`]
    /// consumes. Values are gcd-normalized here, once per survivor.
    pub fn materialize(&self, set: &CandidateSet<P>) -> CandidateBuf<P, S> {
        let stride = self.modes.stride();
        let head = self.modes.rev_len;
        let reversible = self.current_reversible();
        let out_stride = self.candidate_stride();
        let mut buf = CandidateBuf::new(out_stride);
        buf.patterns = set.patterns.clone();
        buf.val_sups = set.val_sups.clone();
        buf.vals.reserve(set.len() * out_stride);
        for &(pi, ni) in &set.parents {
            let vals_p = self.modes.vals(pi as usize);
            let vals_n = self.modes.vals(ni as usize);
            let coeff_n = vals_p[head].neg();
            let coeff_p = vals_n[head].neg();
            let vstart = buf.vals.len();
            for t in 0..stride {
                if t == head {
                    if reversible {
                        buf.vals.push(S::zero());
                    }
                    continue;
                }
                buf.vals.push(S::fused_comb(&coeff_p, &vals_p[t], &coeff_n, &vals_n[t]));
            }
            S::normalize_vec(&mut buf.vals[vstart..]);
        }
        buf
    }

    /// The stoichiometry column index a value-section slot maps to. Slots
    /// `0..rev_len` are processed reversible rows; slots `rev_len..` are
    /// unprocessed positions starting at the cursor. `extra_shift` is 1
    /// for candidate sections on irreversible rows (their section skips
    /// the current row).
    #[inline]
    fn val_slot_col(&self, slot: usize, candidate: bool) -> usize {
        let head = self.modes.rev_len;
        let pos = if slot < head {
            self.rev_positions[slot]
        } else if candidate && !self.current_reversible() {
            // Candidate sections on irreversible rows skip the current row.
            self.cursor + 1 + (slot - head)
        } else if candidate {
            // Reversible rows keep the (zero) current-row slot in place.
            self.cursor + (slot - head)
        } else {
            self.cursor + (slot - head)
        };
        self.row_order[pos]
    }

    /// Support column indices (into `stoich`) of candidate `i` in `buf`.
    fn candidate_support_cols(&self, buf: &CandidateSet<P>, i: usize, cols: &mut Vec<usize>) {
        cols.clear();
        buf.patterns[i].for_each_one(|pos| cols.push(self.row_order[pos]));
        buf.val_sups[i].for_each_one(|slot| cols.push(self.val_slot_col(slot, true)));
    }

    /// Full support (positions) of a live mode.
    pub(crate) fn mode_support(&self, i: usize) -> P {
        let head = self.modes.rev_len;
        let mut s = self.modes.patterns[i];
        for (slot, v) in self.modes.vals(i).iter().enumerate() {
            if !v.is_zero() {
                let pos = if slot < head {
                    self.rev_positions[slot]
                } else {
                    self.cursor + (slot - head)
                };
                s.set(pos);
            }
        }
        s
    }

    /// Full support (positions) of a candidate.
    pub(crate) fn candidate_support(&self, buf: &CandidateSet<P>, i: usize) -> P {
        let head = self.modes.rev_len;
        let reversible = self.current_reversible();
        let mut s = buf.patterns[i];
        buf.val_sups[i].for_each_one(|slot| {
            let pos = if slot < head {
                self.rev_positions[slot]
            } else if reversible {
                self.cursor + (slot - head)
            } else {
                self.cursor + 1 + (slot - head)
            };
            s.set(pos);
        });
        s
    }

    /// Drops candidates whose full support equals an existing zero-row
    /// mode's support: cancellation at processed reversible rows can make a
    /// combination reproduce an existing ray (both have nullity-1 supports,
    /// hence are the same ray). Positive/negative modes carry the
    /// current-row position and can never collide. Returns the number
    /// dropped.
    pub fn drop_duplicates_of_existing(
        &self,
        buf: &mut CandidateSet<P>,
        part: &SignPartition<P>,
    ) -> u64 {
        if buf.is_empty() || part.zero.is_empty() {
            return 0;
        }
        if self.pattern_trees {
            let tree = self.zero_support_tree(part);
            return self.drop_duplicates_with_tree(buf, &tree);
        }
        let zero_sups: std::collections::HashSet<P> =
            part.zero.iter().map(|&i| self.mode_support(i as usize)).collect();
        let keep: Vec<u32> = (0..buf.len())
            .filter(|&i| !zero_sups.contains(&self.candidate_support(buf, i)))
            .map(|i| i as u32)
            .collect();
        let dropped = buf.len() as u64 - keep.len() as u64;
        if dropped > 0 {
            buf.gather(&keep);
        }
        dropped
    }

    /// [`Engine::drop_duplicates_of_existing`] against a prebuilt zero-mode
    /// support tree, so one tree serves both this drop and the adjacency
    /// test within an iteration.
    pub fn drop_duplicates_with_tree(
        &self,
        buf: &mut CandidateSet<P>,
        tree: &PatternTree<P>,
    ) -> u64 {
        if buf.is_empty() || tree.is_empty() {
            return 0;
        }
        let keep: Vec<u32> = (0..buf.len())
            .filter(|&i| !tree.contains(&self.candidate_support(buf, i)))
            .map(|i| i as u32)
            .collect();
        let dropped = buf.len() as u64 - keep.len() as u64;
        if dropped > 0 {
            buf.gather(&keep);
        }
        dropped
    }

    /// Builds the bit-pattern tree over the zero-row modes' full supports.
    /// Built once per iteration and shared between the duplicate drop
    /// (exact-membership queries) and the adjacency test (subset queries);
    /// parallel drivers query it concurrently.
    pub fn zero_support_tree(&self, part: &SignPartition<P>) -> PatternTree<P> {
        PatternTree::from_patterns(
            part.zero.iter().map(|&i| self.mode_support(i as usize)).collect(),
        )
    }

    /// Applies the elementarity test, keeping only accepted candidates.
    /// Returns the number accepted.
    pub fn elementarity_filter(&self, buf: &mut CandidateSet<P>, part: &SignPartition<P>) -> u64 {
        self.elementarity_filter_with(buf, part, None)
    }

    /// [`Engine::elementarity_filter`] with an optional prebuilt zero-mode
    /// support tree (built once per iteration by the drivers and shared
    /// with the duplicate drop).
    pub fn elementarity_filter_with(
        &self,
        buf: &mut CandidateSet<P>,
        part: &SignPartition<P>,
        zero_tree: Option<&PatternTree<P>>,
    ) -> u64 {
        match self.test {
            CandidateTest::Rank => {
                let keep = self.rank_filter_range(buf, 0..buf.len());
                let n = keep.len() as u64;
                buf.gather(&keep);
                n
            }
            CandidateTest::Adjacency if self.pattern_trees => match zero_tree {
                Some(tree) => self.adjacency_filter_tree(buf, tree),
                None => {
                    let tree = self.zero_support_tree(part);
                    self.adjacency_filter_tree(buf, &tree)
                }
            },
            CandidateTest::Adjacency => self.adjacency_filter_naive(buf, part),
        }
    }

    /// Fast numerical nullity-1 test on selected columns: uses the cached
    /// scaled f64 stoichiometry and prunes rows that are zero across the
    /// whole support (they cannot affect the rank).
    fn nullity_is_one_f64(&self, cols: &[usize], scratch: &mut Vec<f64>) -> bool {
        let m = self.stoich.rows();
        let nc = cols.len();
        if nc == 0 {
            return false;
        }
        if !self.row_masks.is_empty() {
            let mut mask = 0u128;
            for &c in cols {
                mask |= self.row_masks[c];
            }
            let nr = mask.count_ones() as usize;
            // nullity = nc − rank and rank ≤ nr: with too few active rows
            // the candidate cannot be elementary.
            if nr + 1 < nc {
                return false;
            }
            scratch.clear();
            scratch.resize(nr * nc, 0.0);
            let mut r_out = 0;
            let mut rest = mask;
            while rest != 0 {
                let r = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                for (j, &c) in cols.iter().enumerate() {
                    scratch[r_out * nc + j] = self.stoich_f64[c * m + r];
                }
                r_out += 1;
            }
            let rank = efm_linalg::gauss_rank_in_place_f64(scratch, nr, nc, RANK_TOL);
            nc - rank == 1
        } else {
            scratch.clear();
            scratch.resize(m * nc, 0.0);
            for (j, &c) in cols.iter().enumerate() {
                for r in 0..m {
                    scratch[r * nc + j] = self.stoich_f64[c * m + r];
                }
            }
            let rank = efm_linalg::gauss_rank_in_place_f64(scratch, m, nc, RANK_TOL);
            nc - rank == 1
        }
    }

    /// Rank test on a sub-range of candidates: returns indices (relative
    /// to the buffer) that pass. Used by parallel drivers.
    pub fn rank_filter_range(
        &self,
        buf: &CandidateSet<P>,
        range: std::ops::Range<usize>,
    ) -> Vec<u32> {
        let mut cols = Vec::with_capacity(self.max_support);
        let mut keep = Vec::new();
        if self.exact_rank_test {
            let mut scratch = Vec::new();
            for i in range {
                self.candidate_support_cols(buf, i, &mut cols);
                if nullity_of_cols(&self.stoich, &cols, &mut scratch) == 1 {
                    keep.push(i as u32);
                }
            }
        } else {
            // The paper's rank test is numerical ("LU, QR or SVD"); exact
            // integer elimination would blow up on genome-scale entries.
            let mut scratch: Vec<f64> = Vec::new();
            for i in range {
                self.candidate_support_cols(buf, i, &mut cols);
                if self.nullity_is_one_f64(&cols, &mut scratch) {
                    keep.push(i as u32);
                }
            }
        }
        keep
    }

    /// Combinatorial (support-minimality) test, the classical alternative
    /// to the rank test: a candidate survives iff no *other* mode of the
    /// next generation has support strictly contained in the candidate's.
    ///
    /// Modes kept with a nonzero current-row entry (positive, and negative
    /// on reversible rows) carry the current-row position in their support
    /// while candidates never do, so they cannot be subsets; only zero-row
    /// modes and the other candidates can reject. Candidates are
    /// deduplicated beforehand, so subset means strict subset.
    ///
    /// Classical linear-scan adjacency test, slab-vectorized: subset
    /// probes run over dense count-sorted support slabs with the batched
    /// kernel. A subset has at most as many bits as its superset — and a
    /// *proper* subset strictly fewer — so sorting each slab by popcount
    /// lets every probe scan only the prefix that can possibly reject,
    /// instead of the full `O(|zero|·|cand| + |cand|²)` pair grid. The
    /// oracle the tree variant is verified against.
    fn adjacency_filter_naive(&self, buf: &mut CandidateSet<P>, part: &SignPartition<P>) -> u64 {
        let tier = self.kernel_tier;
        let by_count = |sups: Vec<P>| -> (Vec<P>, Vec<u32>) {
            let mut order: Vec<usize> = (0..sups.len()).collect();
            order.sort_by_key(|&i| sups[i].count());
            let sorted: Vec<P> = order.iter().map(|&i| sups[i]).collect();
            let counts: Vec<u32> = sorted.iter().map(P::count).collect();
            (sorted, counts)
        };
        let (zero_sorted, zero_counts) =
            by_count(part.zero.iter().map(|&i| self.mode_support(i as usize)).collect());
        let cand_sups: Vec<P> = (0..buf.len()).map(|i| self.candidate_support(buf, i)).collect();
        let (cand_sorted, cand_counts) = by_count(cand_sups.clone());
        let mut keep = Vec::new();
        for (i, cs) in cand_sups.iter().enumerate() {
            let k = cs.count();
            // Zero-row modes reject on any subset (equality included):
            // probe the prefix with count ≤ k.
            let zp = zero_counts.partition_point(|&c| c <= k);
            if P::subset_any(tier, &zero_sorted[..zp], cs) {
                continue;
            }
            // Candidates are pairwise distinct after dedup, so a rejecting
            // candidate is a *proper* subset: count < k. The strict prefix
            // also excludes `cs` itself without an index check.
            let cp = cand_counts.partition_point(|&c| c < k);
            if P::subset_any(tier, &cand_sorted[..cp], cs) {
                continue;
            }
            keep.push(i as u32);
        }
        let n = keep.len() as u64;
        buf.gather(&keep);
        n
    }

    /// Tree-backed adjacency test: one pattern tree over the zero-row
    /// supports, one over the candidate supports, then one pruned subset
    /// query per candidate against each. Candidate supports are pairwise
    /// distinct after dedup (the `(pattern, val_sup)` key decomposes the
    /// support injectively), so "another candidate's support ⊆ mine"
    /// is exactly a proper-subset hit in the candidate tree.
    fn adjacency_filter_tree(&self, buf: &mut CandidateSet<P>, zero_tree: &PatternTree<P>) -> u64 {
        let cand_sups: Vec<P> = (0..buf.len()).map(|i| self.candidate_support(buf, i)).collect();
        let cand_tree = PatternTree::from_patterns(cand_sups.clone());
        let keep = self.adjacency_keep_range(zero_tree, &cand_tree, &cand_sups, 0..cand_sups.len());
        let n = keep.len() as u64;
        buf.gather(&keep);
        n
    }

    /// Adjacency verdicts for a sub-range of candidates given prebuilt
    /// trees: returns the passing indices. Used by parallel drivers to
    /// query one shared tree pair from many workers.
    pub fn adjacency_keep_range(
        &self,
        zero_tree: &PatternTree<P>,
        cand_tree: &PatternTree<P>,
        cand_sups: &[P],
        range: std::ops::Range<usize>,
    ) -> Vec<u32> {
        range
            .filter(|&i| {
                let cs = &cand_sups[i];
                !zero_tree.contains_subset_of(cs) && !cand_tree.contains_proper_subset_of(cs)
            })
            .map(|i| i as u32)
            .collect()
    }

    /// Completes the iteration: installs the survivor set and advances the
    /// cursor. `part` must be the partition used for generation,
    /// `accepted` the filtered candidate buffer.
    pub fn advance(&mut self, part: &SignPartition<P>, accepted: CandidateBuf<P, S>) {
        let stride = self.modes.stride();
        let head = self.modes.rev_len;
        let reversible = self.current_reversible();
        if reversible {
            // Nothing is dropped and no slot is removed: the current row's
            // value slot is reinterpreted as the last rev-section slot.
            debug_assert_eq!(accepted.stride, stride);
            self.modes.patterns.extend_from_slice(&accepted.patterns);
            self.modes.vals.extend_from_slice(&accepted.vals);
            self.modes.rev_len += 1;
            self.modes.tail_len -= 1;
            self.rev_positions.push(self.cursor);
        } else {
            // Rebuild: drop negatives, drop the current-row slot, set the
            // pattern bit on positives.
            let new_stride = stride - 1;
            let total = part.zero.len() + part.pos.len() + accepted.len();
            let mut patterns = Vec::with_capacity(total);
            let mut vals = Vec::with_capacity(total * new_stride);
            let push_old = |idx: u32, set_bit: bool, patterns: &mut Vec<P>, vals: &mut Vec<S>| {
                let i = idx as usize;
                let mut pat = self.modes.patterns[i];
                if set_bit {
                    pat.set(self.cursor);
                }
                patterns.push(pat);
                let v = self.modes.vals(i);
                vals.extend_from_slice(&v[..head]);
                vals.extend_from_slice(&v[head + 1..]);
            };
            for &i in &part.zero {
                push_old(i, false, &mut patterns, &mut vals);
            }
            for &i in &part.pos {
                push_old(i, true, &mut patterns, &mut vals);
            }
            patterns.extend_from_slice(&accepted.patterns);
            vals.extend_from_slice(&accepted.vals);
            self.modes =
                ModeMatrix { patterns, vals, rev_len: head, tail_len: self.modes.tail_len - 1 };
        }
        self.stats.peak_modes = self.stats.peak_modes.max(self.modes.len());
        self.cursor += 1;
    }

    /// Runs one full iteration in-place with a throwaway arena. Tests and
    /// one-shot callers use this; drivers carry a persistent arena across
    /// iterations via [`Engine::step_with`].
    pub fn step(&mut self) -> IterationStats {
        let mut arena = GenArena::new();
        self.step_with(&mut arena)
    }

    /// Runs one full iteration in-place (used by the serial driver and by
    /// tests; parallel drivers orchestrate the pieces themselves). The
    /// arena is reset, not freed, so a driver-owned arena makes the
    /// generation pass allocation-free in steady state.
    pub fn step_with(&mut self, arena: &mut GenArena<P, S>) -> IterationStats {
        use std::time::Instant;
        debug_assert!(!self.done());
        let mut rec = IterationStats {
            position: self.cursor,
            reaction: self.name_at[self.cursor].clone(),
            reversible: self.current_reversible(),
            ..Default::default()
        };
        let t0 = Instant::now();
        let sp = efm_obs::span(crate::cluster_algo::phases::GENERATE);
        let part = self.partition();
        rec.pos = part.pos.len();
        rec.neg = part.neg.len();
        rec.zero = part.zero.len();
        rec.pairs = part.pairs();
        let mut set = CandidateSet::default();
        rec.prefiltered = self.generate_range(&part, 0, part.pairs(), &mut set, arena);
        rec.numeric_pass = set.numeric_pass;
        let raw = set.len() as u64;
        drop(sp);
        let t1 = Instant::now();
        let sp = efm_obs::span(crate::cluster_algo::phases::DEDUP);
        set.sort_dedup();
        drop(sp);
        let t2 = Instant::now();
        let sp = efm_obs::span(crate::cluster_algo::phases::TREE);
        // One zero-mode support tree per iteration, shared between the
        // duplicate drop (exact membership) and the adjacency test (subset
        // queries).
        let zero_tree =
            (self.pattern_trees && !part.zero.is_empty()).then(|| self.zero_support_tree(&part));
        match &zero_tree {
            Some(tree) => {
                self.drop_duplicates_with_tree(&mut set, tree);
            }
            None => {
                self.drop_duplicates_of_existing(&mut set, &part);
            }
        }
        rec.deduped = set.len() as u64;
        drop(sp);
        let t3 = Instant::now();
        let sp = efm_obs::span(crate::cluster_algo::phases::RANK);
        rec.accepted = self.elementarity_filter_with(&mut set, &part, zero_tree.as_ref());
        drop(sp);
        let t4 = Instant::now();
        let sp = efm_obs::span(crate::cluster_algo::phases::MERGE);
        let buf = self.materialize(&set);
        self.advance(&part, buf);
        drop(sp);
        let t5 = Instant::now();
        rec.modes_after = self.modes.len();
        rec.t_generate = t1 - t0;
        rec.t_merge = t2 - t1;
        rec.t_tree_filter = t3 - t2;
        rec.t_dedup = t3 - t1;
        rec.t_test = (t4 - t3) + (t5 - t4);
        self.stats.phases.generate += t1 - t0;
        self.stats.phases.dedup += t2 - t1;
        self.stats.phases.tree_filter += t3 - t2;
        self.stats.phases.rank_test += t4 - t3;
        self.stats.candidates_generated += rec.pairs;
        self.stats.tree_pruned += rec.pairs - rec.prefiltered;
        self.stats.dedup_hits += raw - rec.deduped;
        self.stats.rank_tests += rec.deduped;
        self.note_kernel_counters(set.blocks, rec.pairs - rec.numeric_pass, arena.approx_bytes());
        efm_obs::counter_add("dedup hits", raw - rec.deduped);
        self.note_iteration_counters(&rec);
        self.stats.iterations.push(rec.clone());
        rec
    }

    /// Folds one generation pass's kernel instrumentation into the run
    /// stats and (when tracing) the telemetry counters: blocks processed,
    /// pairs pruned by the vectorized prefilter, and the arena footprint.
    pub(crate) fn note_kernel_counters(&mut self, blocks: u64, pruned: u64, arena_bytes: u64) {
        self.stats.kernel_blocks += blocks;
        self.stats.kernel_pruned += pruned;
        self.stats.arena_peak_bytes = self.stats.arena_peak_bytes.max(arena_bytes);
        if efm_obs::enabled() {
            efm_obs::counter_add("kernel blocks", blocks);
            efm_obs::counter_add_dyn(format!("kernel pruned ({})", self.kernel_tier), pruned);
            efm_obs::gauge_max("arena bytes", arena_bytes);
        }
    }

    /// Samples the per-iteration counters into the trace (no-op unless
    /// tracing is enabled).
    pub(crate) fn note_iteration_counters(&self, rec: &IterationStats) {
        if !efm_obs::enabled() {
            return;
        }
        efm_obs::counter_add("candidates", rec.pairs);
        efm_obs::counter_add("tree pruned", rec.pairs - rec.prefiltered);
        efm_obs::counter_add("rank tests", rec.deduped);
        efm_obs::gauge_set("survivors", rec.modes_after as u64);
        efm_obs::gauge_max("peak modes", self.stats.peak_modes as u64);
        efm_obs::gauge_max("peak bytes", self.modes.approx_bytes());
    }

    /// Extracts the final supports as patterns over *positions*; when the
    /// run stopped early (divide-and-conquer), only modes whose remaining
    /// tail is everywhere nonzero are kept (Proposition 1), with all
    /// numeric-section positions added to the support.
    pub fn final_supports(&self) -> Vec<P> {
        let head = self.modes.rev_len;
        let mut out = Vec::new();
        'mode: for i in 0..self.modes.len() {
            let mut pat = self.modes.patterns[i];
            for (slot, v) in self.modes.vals(i).iter().enumerate() {
                if slot < head {
                    // Processed reversible row: nonzero → support member.
                    if !v.is_zero() {
                        pat.set(self.rev_positions[slot]);
                    }
                } else {
                    // Unprocessed forced row: must be nonzero.
                    if v.is_zero() {
                        continue 'mode;
                    }
                    pat.set(self.cursor + (slot - head));
                }
            }
            out.push(pat);
        }
        out
    }

    /// Maps a position-space support pattern to subproblem column indices.
    pub fn support_to_cols(&self, pat: &P) -> Vec<usize> {
        let mut v = Vec::new();
        pat.for_each_one(|p| v.push(self.row_order[p]));
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::build_problem;
    use crate::types::EfmOptions;
    use efm_bitset::Pattern1;
    use efm_metnet::compress;
    use efm_numeric::DynInt;

    fn toy_engine() -> Engine<Pattern1, DynInt> {
        let net = efm_metnet::examples::toy_network();
        let (red, _) = compress(&net);
        let opts = EfmOptions::default();
        let problem = build_problem::<DynInt>(&red, &opts).unwrap();
        Engine::new(&problem, &opts).unwrap()
    }

    #[test]
    fn initial_state_is_identity_patterned() {
        let eng = toy_engine();
        assert_eq!(eng.modes.len(), 4, "kernel dimension of the reduced toy network");
        for j in 0..eng.modes.len() {
            assert!(eng.modes.patterns[j].get(j), "mode {j} carries its identity bit");
            assert_eq!(eng.modes.patterns[j].count(), 1);
        }
        assert_eq!(eng.modes.rev_len, 0);
        assert_eq!(eng.modes.tail_len, 4);
        assert_eq!(eng.cursor, eng.free_count);
        assert!(!eng.done());
        assert_eq!(eng.remaining(), 4);
    }

    #[test]
    fn partition_is_a_partition() {
        let eng = toy_engine();
        let p = eng.partition();
        assert_eq!(p.pos.len() + p.neg.len() + p.zero.len(), eng.modes.len());
        assert_eq!(p.neg_pats.len(), p.neg.len());
        assert_eq!(p.neg_tail_sups.len(), p.neg.len());
        let head = eng.modes.rev_len;
        for &i in &p.pos {
            assert_eq!(eng.modes.vals(i as usize)[head].signum(), 1);
        }
        for &i in &p.neg {
            assert_eq!(eng.modes.vals(i as usize)[head].signum(), -1);
        }
        for &i in &p.zero {
            assert_eq!(eng.modes.vals(i as usize)[head].signum(), 0);
        }
    }

    #[test]
    fn striped_generation_equals_full_generation() {
        // Run two iterations so pairs exist, then compare the full range
        // against a 3-way stripe at the same iteration.
        let mut eng = toy_engine();
        while !eng.done() {
            let part = eng.partition();
            if part.pairs() >= 2 {
                let mut full = CandidateSet::default();
                let mut arena = GenArena::new();
                let total = part.pairs();
                eng.generate_range(&part, 0, total, &mut full, &mut arena);
                assert!(full.blocks >= 1, "full sweep records its blocks");
                let mut striped = CandidateSet::default();
                let bounds = [0, total / 3, 2 * total / 3, total];
                for w in bounds.windows(2) {
                    eng.generate_range(&part, w[0], w[1], &mut striped, &mut arena);
                }
                full.sort_dedup();
                striped.sort_dedup();
                assert_eq!(full.patterns, striped.patterns);
                assert_eq!(full.val_sups, striped.val_sups);
                assert!(arena.approx_bytes() > 0, "arena retains capacity after use");
                return; // compared once, done
            }
            eng.step();
        }
        panic!("toy network has an iteration with at least two pairs");
    }

    #[test]
    fn advance_reversible_keeps_negatives_and_grows_rev_section() {
        let mut eng = toy_engine();
        // Process until the first reversible row.
        while !eng.current_reversible() {
            eng.step();
        }
        let part = eng.partition();
        let before = eng.modes.len();
        let negs = part.neg.len();
        let rev_before = eng.modes.rev_len;
        eng.step();
        assert_eq!(eng.modes.rev_len, rev_before + 1);
        assert!(eng.modes.len() >= before.min(before), "negatives kept");
        let _ = negs;
        assert_eq!(eng.rev_positions.last().copied(), Some(eng.cursor - 1));
    }

    #[test]
    fn advance_irreversible_drops_negatives() {
        let mut eng = toy_engine();
        // Find an irreversible iteration with at least one negative mode.
        loop {
            assert!(!eng.done(), "toy run has an irreversible row with negatives");
            let part = eng.partition();
            if !eng.current_reversible() && !part.neg.is_empty() {
                let stride_before = eng.modes.stride();
                let rec = eng.step();
                assert_eq!(eng.modes.stride(), stride_before - 1);
                // zero + pos + accepted = survivors.
                assert_eq!(rec.modes_after, rec.zero + rec.pos + rec.accepted as usize);
                return;
            }
            eng.step();
        }
    }

    #[test]
    fn mode_limit_check_in_types() {
        // The engine itself has no limit; drivers enforce it. Covered in
        // lib tests; here assert peak tracking works.
        let mut eng = toy_engine();
        while !eng.done() {
            eng.step();
        }
        assert_eq!(eng.stats.peak_modes, 8);
        assert_eq!(eng.modes.len(), 8);
        assert_eq!(eng.final_supports().len(), 8);
    }

    #[test]
    fn streaming_step_matches_step_with() {
        let mut legacy = toy_engine();
        let mut streaming = toy_engine();
        let mut arena_a = GenArena::new();
        let mut arena_b = GenArena::new();
        while !legacy.done() {
            legacy.step_with(&mut arena_a);
        }
        let mut charges = 0u64;
        while !streaming.done() {
            // Tiny batches force multiple charge/merge rounds per iteration.
            streaming
                .step_streaming(&mut arena_b, 2, &mut |_bytes| {
                    charges += 1;
                    Ok(())
                })
                .unwrap();
        }
        assert_eq!(legacy.final_supports(), streaming.final_supports());
        assert_eq!(legacy.modes.len(), streaming.modes.len());
        assert!(charges > 0, "streaming pass reports its transient footprint");
        assert!(streaming.stats.peak_transient_bytes > 0);
        assert!(streaming.stats.peak_bytes >= streaming.modes.approx_bytes());
        // Pair totals are identical; only transient bookkeeping may differ.
        assert_eq!(legacy.stats.candidates_generated, streaming.stats.candidates_generated);
    }

    #[test]
    fn streaming_step_matches_step_with_adjacency() {
        let net = efm_metnet::examples::toy_network();
        let (red, _) = compress(&net);
        let opts = EfmOptions { test: CandidateTest::Adjacency, ..Default::default() };
        let problem = build_problem::<DynInt>(&red, &opts).unwrap();
        let mut legacy: Engine<Pattern1, DynInt> = Engine::new(&problem, &opts).unwrap();
        let mut streaming: Engine<Pattern1, DynInt> = Engine::new(&problem, &opts).unwrap();
        let mut arena = GenArena::new();
        while !legacy.done() {
            legacy.step_with(&mut arena);
        }
        while !streaming.done() {
            streaming.step_streaming(&mut arena, 3, &mut |_| Ok(())).unwrap();
        }
        assert_eq!(legacy.final_supports(), streaming.final_supports());
    }

    #[test]
    fn streaming_charge_error_aborts_iteration() {
        let mut eng = toy_engine();
        let err = loop {
            assert!(!eng.done(), "toy run generates pairs before finishing");
            if let Err(e) = eng.step_streaming(&mut GenArena::new(), 1, &mut |bytes| {
                if bytes > 0 {
                    Err(EfmError::Checkpoint("cap".into()))
                } else {
                    Ok(())
                }
            }) {
                break e;
            }
        };
        assert!(matches!(err, EfmError::Checkpoint(_)));
    }

    use crate::types::CandidateTest;

    #[test]
    fn candidate_buf_append_and_gather() {
        let mut a = CandidateBuf::<Pattern1, DynInt>::new(2);
        a.patterns = vec![Pattern1::from_indices([0]), Pattern1::from_indices([1])];
        a.val_sups = vec![Pattern1::empty(), Pattern1::from_indices([0])];
        a.vals = vec![
            DynInt::from_i64(1),
            DynInt::from_i64(2),
            DynInt::from_i64(3),
            DynInt::from_i64(4),
        ];
        let mut b = a.clone();
        a.append(&mut b);
        assert_eq!(a.len(), 4);
        a.gather(&[3, 0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.patterns[0], Pattern1::from_indices([1]));
        assert_eq!(a.vals(1), &[DynInt::from_i64(1), DynInt::from_i64(2)]);
    }

    #[test]
    fn candidate_set_sort_dedup_keeps_distinct_supports() {
        let mut s = CandidateSet::<Pattern1> {
            patterns: vec![
                Pattern1::from_indices([0]),
                Pattern1::from_indices([0]),
                Pattern1::from_indices([1]),
            ],
            val_sups: vec![
                Pattern1::from_indices([2]),
                Pattern1::from_indices([2]),
                Pattern1::from_indices([2]),
            ],
            parents: vec![(0, 1), (2, 3), (4, 5)],
            ..Default::default()
        };
        s.sort_dedup();
        assert_eq!(s.len(), 2, "equal (pattern, val_sup) keys collapse");
    }
}
