//! Bridging exact rational network data into the algorithm's scalar type.
//!
//! Networks carry exact rational stoichiometry. The enumeration core runs
//! over a [`Scalar`] — [`DynInt`] by default (exact) or [`F64Tol`]
//! (efmtool-style). Each scalar needs its own way of importing a rational
//! matrix:
//!
//! * integers: scale each row (stoichiometry) or column (kernel basis) to a
//!   primitive integer vector — row scaling preserves rank/nullity and
//!   column scaling preserves the spanned ray;
//! * floats: convert entrywise.

use efm_linalg::Mat;
use efm_numeric::{to_primitive_integer_vec, DynInt, F64Tol, Rational, Scalar};

/// Scalars usable by the EFM enumeration core.
pub trait EfmScalar: Scalar {
    /// Imports a stoichiometry matrix (row-wise canonicalization allowed).
    fn import_stoich(n: &Mat<Rational>) -> Mat<Self>;
    /// Imports a kernel basis (column-wise canonicalization allowed).
    fn import_kernel(k: &Mat<Rational>) -> Mat<Self>;
}

impl EfmScalar for DynInt {
    fn import_stoich(n: &Mat<Rational>) -> Mat<Self> {
        let mut out = Mat::<DynInt>::zeros(n.rows(), n.cols());
        for r in 0..n.rows() {
            let ints = to_primitive_integer_vec(n.row(r));
            for (c, v) in ints.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }

    fn import_kernel(k: &Mat<Rational>) -> Mat<Self> {
        let mut out = Mat::<DynInt>::zeros(k.rows(), k.cols());
        for c in 0..k.cols() {
            let ints = to_primitive_integer_vec(&k.col(c));
            for (r, v) in ints.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }
}

impl EfmScalar for F64Tol {
    fn import_stoich(n: &Mat<Rational>) -> Mat<Self> {
        n.map(|v| F64Tol(v.to_f64()))
    }

    fn import_kernel(k: &Mat<Rational>) -> Mat<Self> {
        let mut out = k.map(|v| F64Tol(v.to_f64()));
        // Normalize each column by its max magnitude for stability.
        for c in 0..out.cols() {
            let mut col: Vec<F64Tol> = out.col(c);
            F64Tol::normalize_vec(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_linalg::rational_mat;

    #[test]
    fn dynint_stoich_rows_are_primitive() {
        let n = rational_mat(&[&[2, 4, -6], &[1, 1, 1]]);
        let m = DynInt::import_stoich(&n);
        assert_eq!(m.get(0, 0), &DynInt::from_i64(1));
        assert_eq!(m.get(0, 2), &DynInt::from_i64(-3));
        assert_eq!(m.get(1, 0), &DynInt::from_i64(1));
    }

    #[test]
    fn dynint_kernel_cols_are_primitive() {
        use efm_numeric::Rational;
        let mut k = Mat::<Rational>::zeros(2, 1);
        k.set(0, 0, Rational::new(DynInt::from_i64(1), DynInt::from_i64(2)));
        k.set(1, 0, Rational::new(DynInt::from_i64(-1), DynInt::from_i64(3)));
        let m = DynInt::import_kernel(&k);
        assert_eq!(m.get(0, 0), &DynInt::from_i64(3));
        assert_eq!(m.get(1, 0), &DynInt::from_i64(-2));
    }

    #[test]
    fn f64_import_is_entrywise() {
        let n = rational_mat(&[&[2, -4]]);
        let m = F64Tol::import_stoich(&n);
        assert_eq!(m.get(0, 0).0, 2.0);
        assert_eq!(m.get(0, 1).0, -4.0);
    }
}
