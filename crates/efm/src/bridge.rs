//! Bridging exact rational network data into the algorithm's scalar type.
//!
//! Networks carry exact rational stoichiometry. The enumeration core runs
//! over a [`Scalar`] — [`DynInt`] by default (exact) or [`F64Tol`]
//! (efmtool-style). Each scalar needs its own way of importing a rational
//! matrix:
//!
//! * integers: scale each row (stoichiometry) or column (kernel basis) to a
//!   primitive integer vector — row scaling preserves rank/nullity and
//!   column scaling preserves the spanned ray;
//! * floats: convert entrywise.

use efm_linalg::Mat;
use efm_numeric::{to_primitive_integer_vec, DynInt, F64Tol, Rational, Scalar};

/// Scalars usable by the EFM enumeration core.
pub trait EfmScalar: Scalar {
    /// Tag identifying this scalar type inside checkpoint files; resuming
    /// with a different scalar than the one that wrote the checkpoint is a
    /// validation error, not a silent reinterpretation.
    const CHECKPOINT_TAG: &'static str;
    /// Imports a stoichiometry matrix (row-wise canonicalization allowed).
    fn import_stoich(n: &Mat<Rational>) -> Mat<Self>;
    /// Imports a kernel basis (column-wise canonicalization allowed).
    fn import_kernel(k: &Mat<Rational>) -> Mat<Self>;
    /// Encodes one value for a checkpoint. Must round-trip exactly through
    /// [`EfmScalar::decode_checkpoint`] — bit-for-bit for floats, digit-for-
    /// digit for integers — so a resumed run replays the identical state.
    fn encode_checkpoint(&self) -> String;
    /// Decodes a value written by [`EfmScalar::encode_checkpoint`].
    fn decode_checkpoint(s: &str) -> Result<Self, String>;
}

impl EfmScalar for DynInt {
    const CHECKPOINT_TAG: &'static str = "dynint";

    fn import_stoich(n: &Mat<Rational>) -> Mat<Self> {
        let mut out = Mat::<DynInt>::zeros(n.rows(), n.cols());
        for r in 0..n.rows() {
            let ints = to_primitive_integer_vec(n.row(r));
            for (c, v) in ints.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }

    fn import_kernel(k: &Mat<Rational>) -> Mat<Self> {
        let mut out = Mat::<DynInt>::zeros(k.rows(), k.cols());
        for c in 0..k.cols() {
            let ints = to_primitive_integer_vec(&k.col(c));
            for (r, v) in ints.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }

    fn encode_checkpoint(&self) -> String {
        // Decimal digits round-trip arbitrary-precision integers exactly.
        self.to_string()
    }

    fn decode_checkpoint(s: &str) -> Result<Self, String> {
        s.parse::<DynInt>().map_err(|e| format!("bad integer {s:?}: {e}"))
    }
}

impl EfmScalar for F64Tol {
    const CHECKPOINT_TAG: &'static str = "f64tol";

    fn import_stoich(n: &Mat<Rational>) -> Mat<Self> {
        n.map(|v| F64Tol(v.to_f64()))
    }

    fn import_kernel(k: &Mat<Rational>) -> Mat<Self> {
        let mut out = k.map(|v| F64Tol(v.to_f64()));
        // Normalize each column by its max magnitude for stability.
        for c in 0..out.cols() {
            let mut col: Vec<F64Tol> = out.col(c);
            F64Tol::normalize_vec(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }

    fn encode_checkpoint(&self) -> String {
        // Raw IEEE-754 bits in hex: exact even where decimal formatting
        // would round (and total — NaN payloads and signed zeros survive).
        format!("{:016x}", self.0.to_bits())
    }

    fn decode_checkpoint(s: &str) -> Result<Self, String> {
        u64::from_str_radix(s, 16)
            .map(|bits| F64Tol(f64::from_bits(bits)))
            .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_linalg::rational_mat;

    #[test]
    fn dynint_stoich_rows_are_primitive() {
        let n = rational_mat(&[&[2, 4, -6], &[1, 1, 1]]);
        let m = DynInt::import_stoich(&n);
        assert_eq!(m.get(0, 0), &DynInt::from_i64(1));
        assert_eq!(m.get(0, 2), &DynInt::from_i64(-3));
        assert_eq!(m.get(1, 0), &DynInt::from_i64(1));
    }

    #[test]
    fn dynint_kernel_cols_are_primitive() {
        use efm_numeric::Rational;
        let mut k = Mat::<Rational>::zeros(2, 1);
        k.set(0, 0, Rational::new(DynInt::from_i64(1), DynInt::from_i64(2)));
        k.set(1, 0, Rational::new(DynInt::from_i64(-1), DynInt::from_i64(3)));
        let m = DynInt::import_kernel(&k);
        assert_eq!(m.get(0, 0), &DynInt::from_i64(3));
        assert_eq!(m.get(1, 0), &DynInt::from_i64(-2));
    }

    #[test]
    fn dynint_checkpoint_roundtrip() {
        // Exercise both the inline and the promoted (big) representation.
        let big: DynInt = "123456789012345678901234567890123456789".parse().unwrap();
        for v in [DynInt::from_i64(0), DynInt::from_i64(-17), big] {
            let enc = v.encode_checkpoint();
            assert_eq!(DynInt::decode_checkpoint(&enc).unwrap(), v);
        }
    }

    #[test]
    fn f64_checkpoint_roundtrip_is_bit_exact() {
        for v in [0.0f64, -0.0, 1.0 / 3.0, -2.5e-300, f64::MAX] {
            let enc = F64Tol(v).encode_checkpoint();
            let back = F64Tol::decode_checkpoint(&enc).unwrap();
            assert_eq!(back.0.to_bits(), v.to_bits());
        }
        assert!(F64Tol::decode_checkpoint("xyz").is_err());
    }

    #[test]
    fn f64_import_is_entrywise() {
        let n = rational_mat(&[&[2, -4]]);
        let m = F64Tol::import_stoich(&n);
        assert_eq!(m.get(0, 0).0, 2.0);
        assert_eq!(m.get(0, 1).0, -4.0);
    }
}
