//! Serial and shared-memory (rayon) drivers — the paper's Algorithm 1 and
//! the EFMTools-style multithreaded variant it cites as prior work.

use crate::bridge::EfmScalar;
use crate::engine::{CandidateSet, Engine};
use crate::problem::EfmProblem;
use crate::types::{CandidateTest, EfmError, EfmOptions, RunStats};
use efm_bitset::BitPattern;
use rayon::prelude::*;
use std::time::Instant;

/// Supports (in reduced-network reaction indices) plus run statistics.
pub type SupportsAndStats = (Vec<Vec<usize>>, RunStats);

fn check_limit<P: BitPattern, S: EfmScalar>(
    eng: &Engine<P, S>,
    opts: &EfmOptions,
) -> Result<(), EfmError> {
    if let Some(limit) = opts.max_modes {
        if eng.modes.len() > limit {
            return Err(EfmError::ModeLimitExceeded { limit, at_iteration: eng.cursor });
        }
    }
    Ok(())
}

/// Maps the engine's final position-space supports into reduced-network
/// reaction indices, dropping two-cycle artifacts of split reversible
/// columns (a mode using both direction twins of one reaction).
pub(crate) fn map_final_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    eng: &Engine<P, S>,
) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = eng
        .final_supports()
        .iter()
        .filter_map(|p| {
            let cols = eng.support_to_cols(p);
            let twin_pair = cols.iter().any(|&c| {
                problem.twin_of[c].is_some_and(|t| cols.binary_search(&t).is_ok())
            });
            if twin_pair {
                return None;
            }
            let mut sup: Vec<usize> = cols.iter().map(|&c| problem.col_to_reduced[c]).collect();
            sup.sort_unstable();
            sup.dedup();
            Some(sup)
        })
        .collect();
    // An all-reversible-support EFM is enumerated in both directions when a
    // split column is involved; the two directions share one support.
    out.sort_unstable();
    out.dedup();
    out
}

fn finalize<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    mut eng: Engine<P, S>,
    t0: Instant,
) -> SupportsAndStats {
    let sups = map_final_supports(problem, &eng);
    eng.stats.final_modes = sups.len();
    eng.stats.total_time = t0.elapsed();
    (sups, eng.stats)
}

/// Runs the serial Nullspace Algorithm (Algorithm 1 of the paper).
pub fn serial_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
) -> Result<SupportsAndStats, EfmError> {
    let t0 = Instant::now();
    let mut eng = Engine::<P, S>::new(problem, opts)?;
    while !eng.done() {
        check_limit(&eng, opts)?;
        eng.step();
    }
    Ok(finalize(problem, eng, t0))
}

/// Runs the serial algorithm, invoking `on_iteration` after every step —
/// the trace hook used to reproduce the paper's Fig. 2 walk-through.
pub fn serial_supports_traced<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    mut on_iteration: impl FnMut(&crate::types::IterationStats),
) -> Result<SupportsAndStats, EfmError> {
    let t0 = Instant::now();
    let mut eng = Engine::<P, S>::new(problem, opts)?;
    while !eng.done() {
        check_limit(&eng, opts)?;
        let rec = eng.step();
        on_iteration(&rec);
    }
    Ok(finalize(problem, eng, t0))
}

/// Runs the shared-memory parallel variant: the pair grid and the rank
/// tests of each iteration are split across the rayon pool.
pub fn rayon_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
) -> Result<SupportsAndStats, EfmError> {
    let t0 = Instant::now();
    let mut eng = Engine::<P, S>::new(problem, opts)?;
    while !eng.done() {
        check_limit(&eng, opts)?;
        rayon_step(&mut eng);
    }
    Ok(finalize(problem, eng, t0))
}

/// One parallel iteration (exposed for tests).
pub fn rayon_step<P: BitPattern, S: EfmScalar>(eng: &mut Engine<P, S>) {
    let mut rec = crate::types::IterationStats {
        position: eng.cursor,
        reaction: eng.name_at[eng.cursor].clone(),
        reversible: eng.reversible_at[eng.cursor],
        ..Default::default()
    };
    let t0 = Instant::now();
    let part = eng.partition();
    rec.pos = part.pos.len();
    rec.neg = part.neg.len();
    rec.zero = part.zero.len();
    rec.pairs = part.pairs();

    let pairs = part.pairs();
    let nchunks = (rayon::current_num_threads() * 4).max(1) as u64;
    let chunk = pairs.div_ceil(nchunks).max(1);
    let results: Vec<(CandidateSet<P>, u64)> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let start = c * chunk;
            let end = (start + chunk).min(pairs);
            let mut set = CandidateSet::default();
            let mut scratch = Vec::new();
            let survivors = if start < end {
                eng.generate_range(&part, start, end, &mut set, &mut scratch)
            } else {
                0
            };
            (set, survivors)
        })
        .collect();
    let mut set = CandidateSet::default();
    for (mut b, s) in results {
        rec.prefiltered += s;
        set.append(&mut b);
    }
    let t1 = Instant::now();
    set.sort_dedup();
    eng.drop_duplicates_of_existing(&mut set, &part);
    rec.deduped = set.len() as u64;
    let t2 = Instant::now();

    match eng.test {
        CandidateTest::Rank => {
            let n = set.len();
            let rchunk = n.div_ceil(rayon::current_num_threads().max(1)).max(1);
            let keeps: Vec<Vec<u32>> = (0..n)
                .into_par_iter()
                .step_by(rchunk)
                .map(|s| eng.rank_filter_range(&set, s..(s + rchunk).min(n)))
                .collect();
            let keep: Vec<u32> = keeps.into_iter().flatten().collect();
            rec.accepted = keep.len() as u64;
            set.gather(&keep);
        }
        CandidateTest::Adjacency => {
            rec.accepted = eng.elementarity_filter(&mut set, &part);
        }
    }
    let t3 = Instant::now();
    let buf = eng.materialize(&set);
    eng.advance(&part, buf);
    rec.modes_after = eng.modes.len();
    eng.stats.phases.generate += t1 - t0;
    eng.stats.phases.dedup += t2 - t1;
    eng.stats.phases.rank_test += t3 - t2;
    eng.stats.candidates_generated += rec.pairs;
    eng.stats.iterations.push(rec);
}
