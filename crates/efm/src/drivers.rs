//! Serial and shared-memory (rayon) drivers — the paper's Algorithm 1 and
//! the EFMTools-style multithreaded variant it cites as prior work.

use crate::bridge::EfmScalar;
use crate::checkpoint::{problem_fingerprint, CheckpointConfig, EngineCheckpoint};
use crate::engine::{CandidateSet, Engine};
use crate::problem::EfmProblem;
use crate::types::{CandidateTest, EfmError, EfmOptions, RunStats};
use efm_bitset::BitPattern;
use rayon::prelude::*;
use std::time::Instant;

/// Supports (in reduced-network reaction indices) plus run statistics.
pub type SupportsAndStats = (Vec<Vec<usize>>, RunStats);

fn check_limit<P: BitPattern, S: EfmScalar>(
    eng: &Engine<P, S>,
    opts: &EfmOptions,
) -> Result<(), EfmError> {
    if let Some(limit) = opts.max_modes {
        if eng.modes.len() > limit {
            return Err(EfmError::ModeLimitExceeded { limit, at_iteration: eng.cursor });
        }
    }
    Ok(())
}

/// Maps the engine's final position-space supports into reduced-network
/// reaction indices, dropping two-cycle artifacts of split reversible
/// columns (a mode using both direction twins of one reaction).
pub(crate) fn map_final_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    eng: &Engine<P, S>,
) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = eng
        .final_supports()
        .iter()
        .filter_map(|p| {
            let cols = eng.support_to_cols(p);
            let twin_pair = cols
                .iter()
                .any(|&c| problem.twin_of[c].is_some_and(|t| cols.binary_search(&t).is_ok()));
            if twin_pair {
                return None;
            }
            let mut sup: Vec<usize> = cols.iter().map(|&c| problem.col_to_reduced[c]).collect();
            sup.sort_unstable();
            sup.dedup();
            Some(sup)
        })
        .collect();
    // An all-reversible-support EFM is enumerated in both directions when a
    // split column is involved; the two directions share one support.
    out.sort_unstable();
    out.dedup();
    out
}

fn finalize<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    mut eng: Engine<P, S>,
    t0: Instant,
) -> SupportsAndStats {
    let sups = map_final_supports(problem, &eng);
    eng.stats.final_modes = sups.len();
    eng.stats.total_time = t0.elapsed();
    (sups, eng.stats)
}

/// Shared resumable loop: builds the engine (fresh or from a checkpoint),
/// runs `step` until done, snapshotting at iteration boundaries per `ckpt`.
fn run_resumable<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
    mut step: impl FnMut(&mut Engine<P, S>) -> Result<(), EfmError>,
) -> Result<SupportsAndStats, EfmError> {
    let t0 = Instant::now();
    let fingerprint = problem_fingerprint(problem);
    let mut eng = match resume {
        Some(ck) => ck.restore::<P, S>(problem, opts)?,
        None => Engine::<P, S>::new(problem, opts)?,
    };
    while !eng.done() {
        check_limit(&eng, opts)?;
        {
            let _span = efm_obs::span("iteration");
            step(&mut eng)?;
        }
        note_progress(&eng);
        if let Some(c) = ckpt {
            if c.due(eng.cursor - eng.free_count) {
                let _span = efm_obs::span("checkpoint");
                EngineCheckpoint::capture(&eng, fingerprint).save(&c.path)?;
            }
        }
    }
    Ok(finalize(problem, eng, t0))
}

/// Emits the human `--progress` line for the engine's latest iteration
/// (no-op unless progress reporting is enabled). Shared by the serial and
/// rayon drivers here and by the cluster driver's rank 0.
pub(crate) fn note_progress<P: BitPattern, S: EfmScalar>(eng: &Engine<P, S>) {
    if !efm_obs::progress::progress_enabled() {
        return;
    }
    let done = (eng.cursor - eng.free_count) as u64;
    let total = (eng.stop_at - eng.free_count) as u64;
    let last_pairs = eng.stats.iterations.last().map_or(0, |r| r.pairs);
    // Cumulative pairs *examined*, summed from the iteration records so
    // the ETA's cost-per-unit and remaining-work legs share one unit.
    // (Dividing by a passed-candidate total here once inflated the ETA
    // by the prefilter ratio.)
    let pairs_done: u64 = eng.stats.iterations.iter().map(|r| r.pairs).sum();
    efm_obs::progress::progress(done, total, eng.modes.len() as u64, last_pairs, pairs_done);
}

/// Runs the serial Nullspace Algorithm (Algorithm 1 of the paper).
pub fn serial_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
) -> Result<SupportsAndStats, EfmError> {
    serial_supports_resumable::<P, S>(problem, opts, None, None)
}

/// Serial Algorithm 1 with optional resume-from-checkpoint and optional
/// iteration-boundary checkpoint writes.
pub fn serial_supports_resumable<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
) -> Result<SupportsAndStats, EfmError> {
    // One arena for the whole run: reset (not freed) each iteration, so
    // steady-state iterations perform no candidate-buffer allocation.
    let mut arena = crate::engine::GenArena::new();
    let streaming = opts.streaming_enabled();
    let batch = opts.streaming_batch;
    run_resumable::<P, S>(problem, opts, resume, ckpt, move |eng| {
        if streaming {
            eng.step_streaming(&mut arena, batch, &mut |_| Ok(())).map(|_| ())
        } else {
            eng.step_with(&mut arena);
            Ok(())
        }
    })
}

/// Runs the serial algorithm, invoking `on_iteration` after every step —
/// the trace hook used to reproduce the paper's Fig. 2 walk-through.
pub fn serial_supports_traced<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    mut on_iteration: impl FnMut(&crate::types::IterationStats),
) -> Result<SupportsAndStats, EfmError> {
    let t0 = Instant::now();
    let mut eng = Engine::<P, S>::new(problem, opts)?;
    let mut arena = crate::engine::GenArena::new();
    while !eng.done() {
        check_limit(&eng, opts)?;
        let rec = eng.step_with(&mut arena);
        on_iteration(&rec);
    }
    Ok(finalize(problem, eng, t0))
}

/// Serial Algorithm 1 that can *grow* mid-run: once `grow()` first returns
/// true the remaining iterations run as [`rayon_step`]s on the shared
/// pool. The divide-and-conquer scheduler uses this as its straggler path
/// for the serial backend — while other subsets are queued, each runs
/// single-threaded (maximum throughput across subsets); when workers go
/// idle because the queue is drained, the survivors' pair grids are
/// re-split across the pool instead of leaving cores parked. The serial
/// and rayon steps advance the engine through identical states (property-
/// tested), so the switch point cannot change the result.
pub fn adaptive_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    mut grow: impl FnMut() -> bool,
) -> Result<SupportsAndStats, EfmError> {
    let mut grown = false;
    let mut arena = crate::engine::GenArena::new();
    let streaming = opts.streaming_enabled();
    let batch = opts.streaming_batch;
    run_resumable::<P, S>(problem, opts, None, None, move |eng| {
        if !grown && grow() {
            grown = true;
            efm_obs::instant("dnc grow to pool");
            efm_obs::counter_add("dnc resplits", 1);
        }
        match (grown, streaming) {
            (true, true) => rayon_step_streaming::<P, S>(eng, batch),
            (true, false) => {
                rayon_step::<P, S>(eng);
                Ok(())
            }
            (false, true) => eng.step_streaming(&mut arena, batch, &mut |_| Ok(())).map(|_| ()),
            (false, false) => {
                eng.step_with(&mut arena);
                Ok(())
            }
        }
    })
}

/// Runs the shared-memory parallel variant: the pair grid and the rank
/// tests of each iteration are split across the rayon pool.
pub fn rayon_supports<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
) -> Result<SupportsAndStats, EfmError> {
    rayon_supports_resumable::<P, S>(problem, opts, None, None)
}

/// Shared-memory parallel variant with optional resume-from-checkpoint and
/// optional iteration-boundary checkpoint writes.
pub fn rayon_supports_resumable<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    resume: Option<&EngineCheckpoint>,
    ckpt: Option<&CheckpointConfig>,
) -> Result<SupportsAndStats, EfmError> {
    let streaming = opts.streaming_enabled();
    let batch = opts.streaming_batch;
    run_resumable::<P, S>(problem, opts, resume, ckpt, move |eng| {
        if streaming {
            rayon_step_streaming::<P, S>(eng, batch)
        } else {
            rayon_step::<P, S>(eng);
            Ok(())
        }
    })
}

/// Block size for parallel per-candidate work: small enough that uneven
/// per-candidate cost cannot strand one worker with all the hard cases,
/// large enough to amortize scheduling overhead.
fn rank_block_size(n: usize) -> usize {
    let target = 8 * rayon::current_num_threads().max(1);
    n.div_ceil(target.max(1)).clamp(1, 64)
}

/// Merges sorted candidate runs by parallel pairwise rounds: each round
/// halves the number of runs, with every pair merged on its own worker.
/// `log2(runs)` rounds replace the serial whole-set sort the runs came
/// from; the final round is a single two-way merge, but by then each
/// element has been touched only `log2(runs)` times instead of the
/// `log(n)` comparisons of a full re-sort.
fn merge_runs_parallel<P: BitPattern>(mut runs: Vec<CandidateSet<P>>) -> CandidateSet<P> {
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = pairs
            .into_par_iter()
            .map(|(a, b)| match b {
                Some(b) => CandidateSet::merge_sorted(a, b),
                None => a,
            })
            .collect();
    }
    runs.pop().unwrap_or_default()
}

/// Splits `0..n` into fine-grained blocks, runs `f` on each block in
/// parallel, and concatenates the per-block index lists in order.
fn par_blocks<F>(n: usize, f: F) -> Vec<u32>
where
    F: Fn(std::ops::Range<usize>) -> Vec<u32> + Sync,
{
    let block = rank_block_size(n);
    let keeps: Vec<Vec<u32>> = (0..n.div_ceil(block))
        .into_par_iter()
        .map(|b| f(b * block..((b + 1) * block).min(n)))
        .collect();
    keeps.into_iter().flatten().collect()
}

/// One parallel iteration (exposed for tests).
///
/// Pipeline: chunked pair generation with per-chunk local sorts, parallel
/// pairwise merge of the sorted runs (no serial whole-set sort barrier),
/// tree-backed duplicate drop, then the elementarity test on fine-grained
/// parallel blocks.
pub fn rayon_step<P: BitPattern, S: EfmScalar>(eng: &mut Engine<P, S>) {
    let mut rec = crate::types::IterationStats {
        position: eng.cursor,
        reaction: eng.name_at[eng.cursor].clone(),
        reversible: eng.reversible_at[eng.cursor],
        ..Default::default()
    };
    let t0 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::GENERATE);
    let part = eng.partition();
    rec.pos = part.pos.len();
    rec.neg = part.neg.len();
    rec.zero = part.zero.len();
    rec.pairs = part.pairs();

    let pairs = part.pairs();
    let nchunks = (rayon::current_num_threads() * 4).max(1) as u64;
    let chunk = pairs.div_ceil(nchunks).max(1);
    let results: Vec<(CandidateSet<P>, u64, u64, u64)> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let start = c * chunk;
            let end = (start + chunk).min(pairs);
            let mut set = CandidateSet::default();
            let mut arena = crate::engine::GenArena::new();
            let survivors = if start < end {
                eng.generate_range(&part, start, end, &mut set, &mut arena)
            } else {
                0
            };
            let raw = set.len() as u64;
            // Local sort while the chunk is still cache-resident: the
            // runs leave this map already sorted, so the join below is a
            // merge, not a re-sort.
            set.sort_dedup();
            (set, survivors, raw, arena.approx_bytes())
        })
        .collect();
    let mut runs = Vec::with_capacity(results.len());
    let mut raw = 0u64;
    let mut arena_bytes = 0u64;
    for (b, s, r, a) in results {
        rec.prefiltered += s;
        raw += r;
        arena_bytes = arena_bytes.max(a);
        runs.push(b);
    }
    drop(sp);
    let t1 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::DEDUP);
    let mut set = merge_runs_parallel(runs);
    rec.numeric_pass = set.numeric_pass;
    let blocks = set.blocks;
    drop(sp);
    let t2 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::TREE);

    // One shared tree over the zero-row mode supports, built once per
    // iteration and queried from all workers concurrently — first for the
    // duplicate drop, then again by the adjacency test below.
    let zero_tree =
        (eng.pattern_trees && !part.zero.is_empty()).then(|| eng.zero_support_tree(&part));
    if !set.is_empty() && !part.zero.is_empty() {
        if let Some(tree) = &zero_tree {
            let keep = par_blocks(set.len(), |range| {
                range
                    .filter(|&i| !tree.contains(&eng.candidate_support(&set, i)))
                    .map(|i| i as u32)
                    .collect()
            });
            if keep.len() < set.len() {
                set.gather(&keep);
            }
        } else {
            eng.drop_duplicates_of_existing(&mut set, &part);
        }
    }
    rec.deduped = set.len() as u64;
    drop(sp);
    let t3 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::RANK);

    match eng.test {
        CandidateTest::Rank => {
            // Fine-grained blocks (not one coarse chunk per thread): rank
            // tests have highly variable cost per candidate, so small blocks
            // claimed dynamically keep every worker busy until the end.
            let keep = par_blocks(set.len(), |range| eng.rank_filter_range(&set, range));
            rec.accepted = keep.len() as u64;
            set.gather(&keep);
        }
        CandidateTest::Adjacency if eng.pattern_trees => {
            let n = set.len();
            let zero_tree = zero_tree.unwrap_or_default();
            let block = rank_block_size(n);
            let sup_blocks: Vec<Vec<P>> = (0..n.div_ceil(block))
                .into_par_iter()
                .map(|b| {
                    (b * block..((b + 1) * block).min(n))
                        .map(|i| eng.candidate_support(&set, i))
                        .collect()
                })
                .collect();
            let cand_sups: Vec<P> = sup_blocks.into_iter().flatten().collect();
            let cand_tree = efm_bitset::PatternTree::from_patterns(cand_sups.clone());
            let keep = par_blocks(n, |range| {
                eng.adjacency_keep_range(&zero_tree, &cand_tree, &cand_sups, range)
            });
            rec.accepted = keep.len() as u64;
            set.gather(&keep);
        }
        CandidateTest::Adjacency => {
            rec.accepted = eng.elementarity_filter(&mut set, &part);
        }
    }
    drop(sp);
    let t4 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::MERGE);
    let buf = eng.materialize(&set);
    eng.advance(&part, buf);
    drop(sp);
    let t5 = Instant::now();
    rec.modes_after = eng.modes.len();
    rec.t_generate = t1 - t0;
    rec.t_merge = t2 - t1;
    rec.t_tree_filter = t3 - t2;
    rec.t_dedup = t3 - t1;
    rec.t_test = t5 - t3;
    eng.stats.phases.generate += t1 - t0;
    eng.stats.phases.dedup += t2 - t1;
    eng.stats.phases.tree_filter += t3 - t2;
    eng.stats.phases.rank_test += t4 - t3;
    efm_obs::hist::record("rank test batch us", (t4 - t3).as_micros() as u64);
    eng.stats.candidates_generated += rec.pairs;
    eng.stats.tree_pruned += rec.pairs - rec.prefiltered;
    eng.stats.dedup_hits += raw - rec.deduped;
    eng.stats.rank_tests += rec.deduped;
    efm_obs::counter_add("dedup hits", raw - rec.deduped);
    eng.note_kernel_counters(blocks, rec.pairs - rec.numeric_pass, arena_bytes);
    eng.note_iteration_counters(&rec);
    eng.stats.iterations.push(rec);
}

/// Per-chunk result of the parallel streaming sweep: surviving candidate
/// set, its stream stats, and the chunk's transient high-water mark.
type StreamChunk<P> = (CandidateSet<P>, crate::engine::StreamStats, u64);

/// One parallel iteration through the bounded streaming pipeline
/// ([`Engine::stream_range`]): each chunk of the pair grid flows batch by
/// batch through generate → dedup → duplicate drop → rank test on its
/// worker, so no worker ever materializes its full chunk. The per-worker
/// transient peaks are *summed* into the charged footprint (chunks run
/// concurrently), and survivor runs merge in parallel pairwise rounds
/// exactly like [`rayon_step`] — the surviving set is identical.
pub fn rayon_step_streaming<P: BitPattern, S: EfmScalar>(
    eng: &mut Engine<P, S>,
    batch_pairs: u64,
) -> Result<(), EfmError> {
    use crate::engine::StreamStats;
    let mut rec = crate::types::IterationStats {
        position: eng.cursor,
        reaction: eng.name_at[eng.cursor].clone(),
        reversible: eng.reversible_at[eng.cursor],
        ..Default::default()
    };
    let t0 = Instant::now();
    let part = eng.partition();
    rec.pos = part.pos.len();
    rec.neg = part.neg.len();
    rec.zero = part.zero.len();
    rec.pairs = part.pairs();
    let modes_bytes = eng.modes.approx_bytes();
    // One shared tree over the zero-row mode supports, queried from all
    // workers concurrently by the per-batch duplicate drop.
    let zero_tree =
        (eng.pattern_trees && !part.zero.is_empty()).then(|| eng.zero_support_tree(&part));

    let pairs = part.pairs();
    let nchunks = (rayon::current_num_threads() * 4).max(1) as u64;
    let chunk = pairs.div_ceil(nchunks).max(1);
    let results: Vec<Result<StreamChunk<P>, EfmError>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let start = c * chunk;
            let end = (start + chunk).min(pairs);
            let mut set = CandidateSet::default();
            let mut arena = crate::engine::GenArena::new();
            let ss = if start < end {
                eng.stream_range(
                    &part,
                    start,
                    end,
                    batch_pairs,
                    zero_tree.as_ref(),
                    true,
                    &mut set,
                    &mut arena,
                    &mut |_| Ok(()),
                )?
            } else {
                StreamStats::default()
            };
            Ok((set, ss, arena.approx_bytes()))
        })
        .collect();
    let mut runs = Vec::with_capacity(results.len());
    let mut ss_tot = StreamStats::default();
    let mut transient_total = 0u64;
    let mut arena_bytes = 0u64;
    for r in results {
        let (set, ss, ab) = r?;
        ss_tot.batches += ss.batches;
        ss_tot.prefiltered += ss.prefiltered;
        ss_tot.tested += ss.tested;
        transient_total += ss.transient_peak;
        ss_tot.t_generate += ss.t_generate;
        ss_tot.t_dedup += ss.t_dedup;
        ss_tot.t_tree += ss.t_tree;
        ss_tot.t_test += ss.t_test;
        arena_bytes = arena_bytes.max(ab);
        runs.push(set);
    }
    rec.prefiltered = ss_tot.prefiltered;
    rec.deduped = ss_tot.tested;
    let t1 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::DEDUP);
    let mut set = merge_runs_parallel(runs);
    rec.numeric_pass = set.numeric_pass;
    let blocks = set.blocks;
    drop(sp);
    let t2 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::RANK);
    match eng.test {
        // Rank verdicts are batch-local; survivors are already filtered.
        CandidateTest::Rank => rec.accepted = set.len() as u64,
        // Adjacency is cross-candidate: run it on the merged set, with the
        // same shared trees as the materialized path.
        CandidateTest::Adjacency if eng.pattern_trees => {
            let n = set.len();
            let zero_tree = zero_tree.unwrap_or_default();
            let block = rank_block_size(n);
            let sup_blocks: Vec<Vec<P>> = (0..n.div_ceil(block))
                .into_par_iter()
                .map(|b| {
                    (b * block..((b + 1) * block).min(n))
                        .map(|i| eng.candidate_support(&set, i))
                        .collect()
                })
                .collect();
            let cand_sups: Vec<P> = sup_blocks.into_iter().flatten().collect();
            let cand_tree = efm_bitset::PatternTree::from_patterns(cand_sups.clone());
            let keep = par_blocks(n, |range| {
                eng.adjacency_keep_range(&zero_tree, &cand_tree, &cand_sups, range)
            });
            rec.accepted = keep.len() as u64;
            set.gather(&keep);
        }
        CandidateTest::Adjacency => {
            rec.accepted = eng.elementarity_filter(&mut set, &part);
        }
    }
    drop(sp);
    let t3 = Instant::now();
    let sp = efm_obs::span(crate::cluster_algo::phases::MERGE);
    let buf = eng.materialize(&set);
    eng.advance(&part, buf);
    drop(sp);
    let t4 = Instant::now();
    rec.modes_after = eng.modes.len();
    // The streaming phases interleave inside the parallel section, so the
    // wall time of that section is attributed proportionally to the summed
    // per-worker phase durations.
    let wall = t1 - t0;
    let sums = ss_tot.t_generate + ss_tot.t_dedup + ss_tot.t_tree + ss_tot.t_test;
    let scale = |d: std::time::Duration| {
        if sums.is_zero() {
            std::time::Duration::ZERO
        } else {
            wall.mul_f64(d.as_secs_f64() / sums.as_secs_f64())
        }
    };
    rec.t_generate = scale(ss_tot.t_generate);
    rec.t_merge = scale(ss_tot.t_dedup) + (t2 - t1);
    rec.t_tree_filter = scale(ss_tot.t_tree);
    rec.t_dedup = rec.t_merge + rec.t_tree_filter;
    rec.t_test = scale(ss_tot.t_test) + (t3 - t2) + (t4 - t3);
    eng.stats.phases.generate += rec.t_generate;
    eng.stats.phases.dedup += rec.t_merge;
    eng.stats.phases.tree_filter += rec.t_tree_filter;
    eng.stats.phases.rank_test += scale(ss_tot.t_test) + (t3 - t2);
    efm_obs::hist::record(
        "rank test batch us",
        (scale(ss_tot.t_test) + (t3 - t2)).as_micros() as u64,
    );
    eng.stats.candidates_generated += rec.pairs;
    eng.stats.tree_pruned += rec.pairs - rec.prefiltered;
    eng.stats.dedup_hits += ss_tot.prefiltered - ss_tot.tested;
    eng.stats.rank_tests += ss_tot.tested;
    eng.stats.stream_batches += ss_tot.batches;
    eng.stats.peak_transient_bytes = eng.stats.peak_transient_bytes.max(transient_total);
    let resident = eng.modes.approx_bytes();
    eng.stats.peak_bytes = eng.stats.peak_bytes.max(modes_bytes + transient_total).max(resident);
    efm_obs::counter_add("dedup hits", ss_tot.prefiltered - ss_tot.tested);
    if efm_obs::enabled() {
        efm_obs::gauge_max("peak transient bytes", transient_total);
    }
    eng.note_kernel_counters(blocks, rec.pairs - rec.numeric_pass, arena_bytes);
    eng.note_iteration_counters(&rec);
    eng.stats.iterations.push(rec);
    Ok(())
}
