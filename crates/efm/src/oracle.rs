//! Brute-force EFM oracle for small networks.
//!
//! Enumerate every reaction subset `S` with `|S| ≤ m+1` and accept `S` as an
//! EFM support iff
//!
//! 1. the support submatrix `N[:, S]` has nullity exactly 1 (the algebraic
//!    characterization of elementarity, [18]/[30]),
//! 2. the one-dimensional kernel vector is nonzero on all of `S` (so `S` is
//!    the actual support), and
//! 3. the vector (or its negation) satisfies every irreversibility
//!    constraint inside `S`.
//!
//! Exponential in the reaction count — usable up to ~20 reactions — and
//! completely independent of the Nullspace Algorithm code paths, which is
//! what makes it a trustworthy test oracle.

use crate::types::EfmSet;
use efm_linalg::kernel_basis;
use efm_metnet::MetabolicNetwork;

/// Brute-force enumeration of all EFM supports of a network.
///
/// Panics if the network has more than `max_reactions` (default guard 22)
/// reactions, to protect test suites from accidental explosions.
pub fn brute_force_efms(net: &MetabolicNetwork, max_reactions: usize) -> EfmSet {
    let q = net.num_reactions();
    assert!(
        q <= max_reactions && q < usize::BITS as usize - 1,
        "brute-force oracle limited to {max_reactions} reactions, got {q}"
    );
    let n = net.stoichiometry();
    let reversible = net.reversibilities();
    // Rank of N bounds the useful support size at rank+1; use row count as
    // a cheap upper bound.
    let max_support = n.rows() + 1;

    let mut out = EfmSet::new(net.reaction_names());
    for mask in 1usize..(1 << q) {
        let size = mask.count_ones() as usize;
        if size > max_support {
            continue;
        }
        let cols: Vec<usize> = (0..q).filter(|&j| mask >> j & 1 == 1).collect();
        let sub = n.select_cols(&cols);
        let kb = kernel_basis(&sub, &[]);
        if kb.k.cols() != 1 {
            continue;
        }
        // Full support within S.
        if (0..cols.len()).any(|i| kb.k.get(i, 0).is_zero()) {
            continue;
        }
        // Sign feasibility.
        let mut pos_ok = true;
        let mut neg_ok = true;
        for (i, &j) in cols.iter().enumerate() {
            if reversible[j] {
                continue;
            }
            match kb.k.get(i, 0).signum() {
                1 => neg_ok = false,
                -1 => pos_ok = false,
                _ => unreachable!("full support checked above"),
            }
        }
        if pos_ok || neg_ok {
            out.push_support(&cols);
        }
    }
    out.canonicalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_metnet::examples;

    #[test]
    fn chain_has_one_efm() {
        let efms = brute_force_efms(&examples::chain3(), 22);
        assert_eq!(efms.len(), 1);
        assert_eq!(efms.support(0), vec![0, 1, 2]);
    }

    #[test]
    fn diamond_has_two_efms() {
        let efms = brute_force_efms(&examples::diamond(), 22);
        assert_eq!(efms.len(), 2);
    }

    #[test]
    fn toy_network_has_eight_efms() {
        let net = examples::toy_network();
        let efms = brute_force_efms(&net, 22);
        assert_eq!(efms.len(), 8, "the paper's Eq. (7) lists 8 EFMs");
        // Spot-check two known supports.
        let idx = |n: &str| net.reaction_index(n).unwrap();
        let sets = efms.as_support_sets();
        let mut s1 = vec![idx("r1"), idx("r2"), idx("r3"), idx("r4"), idx("r9")];
        s1.sort_unstable();
        assert!(sets.contains(&s1), "glycolysis-like route missing");
        let mut s7 = vec![idx("r4"), idx("r7"), idx("r8r")];
        s7.sort_unstable();
        assert!(sets.contains(&s7), "Bext import route missing");
    }

    #[test]
    fn reversible_cycle_efms() {
        // in/fwd/out, in/alt/out, and the internal 2-cycle fwd(-)/alt.
        let net = examples::reversible_cycle();
        let efms = brute_force_efms(&net, 22);
        assert_eq!(efms.len(), 3);
        let sets = efms.as_support_sets();
        let idx = |n: &str| net.reaction_index(n).unwrap();
        let mut cycle = vec![idx("fwd"), idx("alt")];
        cycle.sort_unstable();
        assert!(sets.contains(&cycle), "internal reversible cycle missing");
    }

    #[test]
    #[should_panic(expected = "brute-force oracle limited")]
    fn oracle_guards_size() {
        let net = efm_metnet::generator::layered_branches(8, 3);
        let _ = brute_force_efms(&net, 10);
    }
}
