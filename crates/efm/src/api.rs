//! High-level entry points: network in, EFM set out.

use crate::bridge::EfmScalar;
use crate::checkpoint::{CheckpointConfig, EngineCheckpoint};
use crate::cluster_algo::cluster_supports_resumable;
use crate::divide::{divide_conquer_supports_with, Backend, SubsetReport};
use crate::drivers::{rayon_supports_resumable, serial_supports_resumable, SupportsAndStats};
use crate::problem::build_problem;
use crate::schedule::DncConfig;
use crate::types::{EfmError, EfmOptions, EfmSet, RunStats};
use efm_metnet::{compress_with, CompressionStats, MetabolicNetwork, ReducedNetwork};
use efm_numeric::DynInt;

/// Result of a full enumeration.
#[derive(Debug, Clone)]
pub struct EfmOutcome {
    /// The elementary flux modes, as supports over the original reactions.
    pub efms: EfmSet,
    /// Enumeration statistics.
    pub stats: RunStats,
    /// The compressed network used internally.
    pub reduced: ReducedNetwork,
    /// What compression did.
    pub compression: CompressionStats,
    /// Per-subset reports (divide-and-conquer runs only).
    pub subsets: Vec<SubsetReport>,
}

/// Maximum reduced-network size the pattern widths support.
pub const MAX_REDUCED_REACTIONS: usize = 256;

/// Dispatches a generic runner over the pattern width needed for `q` bits.
/// The scalar type `S` is taken from the expansion site.
macro_rules! dispatch_width {
    ($q:expr, $run:ident ( $($arg:expr),* $(,)? )) => {{
        let q = $q;
        if q <= 64 {
            $run::<efm_bitset::Pattern1, S>($($arg),*)
        } else if q <= 128 {
            $run::<efm_bitset::Pattern2, S>($($arg),*)
        } else if q <= 256 {
            $run::<efm_bitset::Pattern4, S>($($arg),*)
        } else {
            Err(EfmError::TooManyReactions { got: q, max: MAX_REDUCED_REACTIONS })
        }
    }};
}

fn assemble(
    net: &MetabolicNetwork,
    red: &ReducedNetwork,
    comp: CompressionStats,
    supports_reduced: Vec<Vec<usize>>,
    stats: RunStats,
    subsets: Vec<SubsetReport>,
) -> EfmOutcome {
    let mut efms = EfmSet::new(net.reaction_names());
    for sup in &supports_reduced {
        efms.push_support(&red.expand_support(sup));
    }
    efms.canonicalize();
    EfmOutcome { efms, stats, reduced: red.clone(), compression: comp, subsets }
}

/// Enumerates all EFMs with the chosen scalar and backend.
pub fn enumerate_with_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
) -> Result<EfmOutcome, EfmError> {
    enumerate_resumable_with_scalar::<S>(net, opts, backend, None, None)
}

/// Enumerates all EFMs with optional checkpoint/resume: `resume` replays a
/// previously captured iteration-boundary snapshot (validated against the
/// problem before any work starts), `checkpoint` makes the run snapshot its
/// state after iterations so a later abort loses at most one iteration.
pub fn enumerate_resumable_with_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
    resume: Option<&EngineCheckpoint>,
    checkpoint: Option<&CheckpointConfig>,
) -> Result<EfmOutcome, EfmError> {
    let (red, comp) = compress_with(net, &opts.compression);
    if red.num_reduced() == 0 {
        return Ok(assemble(net, &red, comp, Vec::new(), RunStats::default(), Vec::new()));
    }
    let problem = build_problem::<S>(&red, opts)?;
    let q = problem.num_cols();
    let (sups, stats): SupportsAndStats = match backend {
        Backend::Serial => {
            dispatch_width!(q, serial_supports_resumable(&problem, opts, resume, checkpoint))?
        }
        Backend::Rayon => {
            dispatch_width!(q, rayon_supports_resumable(&problem, opts, resume, checkpoint))?
        }
        Backend::Cluster(cfg) => {
            fn run_cluster_backend<P: efm_bitset::BitPattern, S: EfmScalar>(
                problem: &crate::problem::EfmProblem<S>,
                opts: &EfmOptions,
                cfg: &efm_cluster::ClusterConfig,
                resume: Option<&EngineCheckpoint>,
                checkpoint: Option<&CheckpointConfig>,
            ) -> Result<SupportsAndStats, EfmError> {
                let o = cluster_supports_resumable::<P, S>(problem, opts, cfg, resume, checkpoint)?;
                Ok((o.supports, o.stats))
            }
            dispatch_width!(q, run_cluster_backend(&problem, opts, cfg, resume, checkpoint))?
        }
    };
    Ok(assemble(net, &red, comp, sups, stats, Vec::new()))
}

/// Enumerates all EFMs serially with exact integer arithmetic — the
/// default, paper-faithful configuration (Algorithm 1).
pub fn enumerate(net: &MetabolicNetwork, opts: &EfmOptions) -> Result<EfmOutcome, EfmError> {
    enumerate_with_scalar::<DynInt>(net, opts, &Backend::Serial)
}

/// Enumerates all EFMs with a chosen backend and exact integer arithmetic.
pub fn enumerate_with(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    backend: &Backend,
) -> Result<EfmOutcome, EfmError> {
    enumerate_with_scalar::<DynInt>(net, opts, backend)
}

/// Divide-and-conquer enumeration (the paper's Algorithm 3) with exact
/// integer arithmetic: the EFM set is partitioned across `partition_names`
/// into `2^qsub` independent subproblems, each run on `backend`.
pub fn enumerate_divide_conquer(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    partition_names: &[&str],
    backend: &Backend,
) -> Result<EfmOutcome, EfmError> {
    enumerate_divide_conquer_with_scalar::<DynInt>(net, opts, partition_names, backend)
}

/// Divide-and-conquer enumeration generic over the scalar.
pub fn enumerate_divide_conquer_with_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    partition_names: &[&str],
    backend: &Backend,
) -> Result<EfmOutcome, EfmError> {
    enumerate_divide_conquer_scheduled_with_scalar::<S>(
        net,
        opts,
        partition_names,
        backend,
        &DncConfig::default(),
    )
}

/// Divide-and-conquer enumeration under an explicit subset-scheduler
/// configuration, with exact integer arithmetic.
pub fn enumerate_divide_conquer_scheduled(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    partition_names: &[&str],
    backend: &Backend,
    dnc: &DncConfig,
) -> Result<EfmOutcome, EfmError> {
    enumerate_divide_conquer_scheduled_with_scalar::<DynInt>(
        net,
        opts,
        partition_names,
        backend,
        dnc,
    )
}

/// Divide-and-conquer enumeration under an explicit subset-scheduler
/// configuration ([`DncConfig`]: subset order and concurrency, per-subset
/// restart budget, EFCK v4 progress checkpointing and resume), generic
/// over the scalar. Every schedule yields the identical EFM set; reports
/// come back in subset-id order, each carrying only its successful
/// attempt's statistics, so the aggregation below never double-counts
/// concurrent or retried work.
pub fn enumerate_divide_conquer_scheduled_with_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    partition_names: &[&str],
    backend: &Backend,
    dnc: &DncConfig,
) -> Result<EfmOutcome, EfmError> {
    let (red, comp) = compress_with(net, &opts.compression);
    if red.num_reduced() == 0 {
        return Ok(assemble(net, &red, comp, Vec::new(), RunStats::default(), Vec::new()));
    }
    let q = red.num_reduced();
    fn run_dc<P: efm_bitset::BitPattern, S: EfmScalar>(
        net: &MetabolicNetwork,
        red: &ReducedNetwork,
        partition_names: &[&str],
        opts: &EfmOptions,
        backend: &Backend,
        dnc: &DncConfig,
    ) -> Result<(Vec<Vec<usize>>, Vec<SubsetReport>), EfmError> {
        divide_conquer_supports_with::<P, S>(net, red, partition_names, opts, backend, dnc)
    }
    let (sups, subsets) =
        dispatch_width!(q, run_dc(net, &red, partition_names, opts, backend, dnc))?;
    let mut stats = RunStats::default();
    for s in &subsets {
        stats.accumulate(&s.stats);
    }
    stats.final_modes = sups.len();
    Ok(assemble(net, &red, comp, sups, stats, subsets))
}
