//! Numeric coefficient recovery for support-encoded EFMs.
//!
//! The algorithm's output is the paper's "bit-valued matrix of elementary
//! modes" — supports only. Because every EFM's support submatrix has
//! nullity 1, the flux values are recoverable up to scale by solving that
//! one-dimensional kernel exactly, then expanding through the compression
//! record (the paper adds the folded reaction `r9` back the same way in
//! Eq. (7)).

use crate::types::EfmError;
use efm_linalg::kernel_basis;
use efm_metnet::ReducedNetwork;
use efm_numeric::Rational;

/// Recovers the exact flux vector (over *original* reactions, up to
/// positive scale) of an EFM given by its original-reaction support.
///
/// The sign is fixed so that irreversible reactions carry nonnegative flux;
/// for all-reversible supports the first nonzero entry is made positive.
/// Returns an error if the support is not an EFM support (nullity ≠ 1).
pub fn recover_flux(
    red: &ReducedNetwork,
    reversible_original: &[bool],
    support_original: &[usize],
) -> Result<Vec<Rational>, EfmError> {
    // Map to the reduced support.
    let mut reduced_sup: Vec<usize> = support_original
        .iter()
        .map(|&o| {
            red.reduced_index_of(o).ok_or_else(|| {
                EfmError::UnknownReaction(format!("reaction {o} is blocked, not in any EFM"))
            })
        })
        .collect::<Result<_, _>>()?;
    reduced_sup.sort_unstable();
    reduced_sup.dedup();

    // Solve the 1-dimensional kernel of the support submatrix.
    let sub = red.stoich.select_cols(&reduced_sup);
    let kb = kernel_basis(&sub, &[]);
    if kb.k.cols() != 1 {
        return Err(EfmError::UnknownReaction(format!(
            "support has nullity {} (not an EFM support)",
            kb.k.cols()
        )));
    }
    let mut reduced_flux = vec![Rational::zero(); red.num_reduced()];
    for (i, &c) in reduced_sup.iter().enumerate() {
        reduced_flux[c] = kb.k.get(i, 0).clone();
    }
    let mut flux = red.expand_flux(&reduced_flux);

    // Fix the sign.
    let violates = |f: &[Rational]| {
        f.iter().enumerate().any(|(i, v)| !reversible_original[i] && v.signum() < 0)
    };
    if violates(&flux) {
        for v in &mut flux {
            *v = v.neg();
        }
        if violates(&flux) {
            return Err(EfmError::UnknownReaction(
                "support is sign-infeasible in both directions".to_string(),
            ));
        }
    } else {
        // All-reversible supports admit both directions; canonicalize so
        // the first nonzero entry is positive.
        let all_rev = flux.iter().enumerate().all(|(i, v)| v.is_zero() || reversible_original[i]);
        if all_rev {
            if let Some(first) = flux.iter().position(|v| !v.is_zero()) {
                if flux[first].signum() < 0 {
                    for v in &mut flux {
                        *v = v.neg();
                    }
                }
            }
        }
    }
    Ok(flux)
}

/// Verifies that `flux` is a steady-state flux mode of the original
/// network: `N·v = 0` exactly and irreversible entries nonnegative.
pub fn verify_flux(net: &efm_metnet::MetabolicNetwork, flux: &[Rational]) -> Result<(), String> {
    let n = net.stoichiometry();
    assert_eq!(flux.len(), n.cols(), "flux length mismatch");
    let residual = n.matvec(flux);
    for (i, v) in residual.iter().enumerate() {
        if !v.is_zero() {
            return Err(format!("metabolite row {i} is unbalanced: {v}"));
        }
    }
    for (j, rxn) in net.reactions.iter().enumerate() {
        if !rxn.reversible && flux[j].signum() < 0 {
            return Err(format!("irreversible reaction {} has negative flux", rxn.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_metnet::{compress, examples};

    #[test]
    fn recover_simple_chain() {
        let net = examples::chain3();
        let (red, _) = compress(&net);
        let rev: Vec<bool> = net.reversibilities();
        let flux = recover_flux(&red, &rev, &[0, 1, 2]).unwrap();
        assert!(verify_flux(&net, &flux).is_ok());
        assert!(flux.iter().all(|v| v.signum() > 0));
    }

    #[test]
    fn recover_toy_doubling_pathway() {
        // EFM {r1, r4, r5, r7}: A→B→2P gives r4 = 2·r1.
        let net = examples::toy_network();
        let (red, _) = compress(&net);
        let rev = net.reversibilities();
        let idx = |n: &str| net.reaction_index(n).unwrap();
        let sup = vec![idx("r1"), idx("r4"), idx("r5"), idx("r7")];
        let flux = recover_flux(&red, &rev, &sup).unwrap();
        assert!(verify_flux(&net, &flux).is_ok());
        let r1 = flux[idx("r1")].clone();
        let r4 = flux[idx("r4")].clone();
        assert_eq!(r4, r1.mul(&Rational::from_i64(2)));
    }

    #[test]
    fn recover_negative_reversible_direction() {
        // EFM {r4, r7, r8r}: Bext→B→2P requires r8r < 0.
        let net = examples::toy_network();
        let (red, _) = compress(&net);
        let rev = net.reversibilities();
        let idx = |n: &str| net.reaction_index(n).unwrap();
        let flux = recover_flux(&red, &rev, &[idx("r4"), idx("r7"), idx("r8r")]).unwrap();
        assert!(verify_flux(&net, &flux).is_ok());
        assert_eq!(flux[idx("r8r")].signum(), -1);
        assert_eq!(flux[idx("r7")].signum(), 1);
    }

    #[test]
    fn non_efm_support_is_rejected() {
        // The union of two EFMs has nullity 2.
        let net = examples::diamond();
        let (red, _) = compress(&net);
        let rev = net.reversibilities();
        let all: Vec<usize> = (0..net.num_reactions()).collect();
        assert!(recover_flux(&red, &rev, &all).is_err());
    }
}
