//! # efm-core — the Nullspace Algorithm for elementary flux modes
//!
//! Implementation of *Jevremovic, Boley & Sosa, "Divide-and-conquer approach
//! to the parallel computation of elementary flux modes in metabolic
//! networks"* (IPDPS Workshops 2011):
//!
//! * **Algorithm 1** — the serial Nullspace Algorithm ([`enumerate`]):
//!   binary nullspace representation, pos×neg candidate pairing, summary
//!   rejection, duplicate removal, and the algebraic rank test;
//! * **Algorithm 2** — the combinatorial parallel variant
//!   ([`Backend::Cluster`]): the pair grid of every iteration is striped
//!   across the ranks of a (simulated) distributed-memory cluster, with an
//!   allgather + merge per iteration;
//! * **Algorithm 3** — the combined divide-and-conquer algorithm
//!   ([`enumerate_divide_conquer`]): the EFM set is split across `2^qsub`
//!   zero/nonzero patterns of chosen reactions; each disjoint subset is an
//!   independent (parallel) subproblem stopped `qsub` rows early
//!   (Proposition 1).
//!
//! A shared-memory rayon variant ([`Backend::Rayon`]) covers the
//! EFMTools-style parallelism the paper cites as prior work, and a
//! brute-force oracle ([`brute_force_efms`]) provides an independent
//! correctness reference for small networks.
//!
//! ## Quick start
//!
//! ```
//! use efm_core::{enumerate, EfmOptions};
//! use efm_metnet::examples::toy_network;
//!
//! let net = toy_network();
//! let outcome = enumerate(&net, &EfmOptions::default()).unwrap();
//! assert_eq!(outcome.efms.len(), 8); // Eq. (7) of the paper
//! ```

#![warn(missing_docs)]

mod api;
pub mod apps;
mod bridge;
pub mod checkpoint;
mod cluster_algo;
mod divide;
mod drivers;
mod engine;
mod escalate;
pub mod io;
mod oracle;
mod problem;
mod recover;
mod schedule;
mod stripes;
mod supervise;
mod types;

pub use api::{
    enumerate, enumerate_divide_conquer, enumerate_divide_conquer_scheduled,
    enumerate_divide_conquer_scheduled_with_scalar, enumerate_divide_conquer_with_scalar,
    enumerate_resumable_with_scalar, enumerate_with, enumerate_with_scalar, EfmOutcome,
    MAX_REDUCED_REACTIONS,
};
pub use apps::{minimal_cut_sets, mode_yields, reaction_participation, suggest_partition};
pub use bridge::EfmScalar;
pub use checkpoint::{
    dnc_fingerprint, problem_fingerprint, CheckpointConfig, DncCheckpoint, DncSubsetResult,
    EngineCheckpoint,
};
pub use cluster_algo::{
    cluster_supports, cluster_supports_resumable, cluster_supports_segment, phases,
    ClusterNodeOutcome, ClusterOutcome,
};
pub use divide::{
    divide_conquer_supports, divide_conquer_supports_with, resolve_partition, run_subset,
    subset_pattern, Backend, Partition, SubsetReport,
};
pub use drivers::{
    adaptive_supports, rayon_supports, rayon_supports_resumable, serial_supports,
    serial_supports_resumable, serial_supports_traced, SupportsAndStats,
};
pub use engine::{
    CandidateBuf, CandidateSet, Engine, GenArena, ModeMatrix, SignPartition, StreamStats, RANK_TOL,
};
pub use escalate::{
    enumerate_with_escalation, enumerate_with_escalation_scalar,
    enumerate_with_escalation_scheduled_scalar, EscalationAttempt, EscalationOutcome,
};
pub use oracle::brute_force_efms;
pub use problem::{build_problem, build_subproblem, EfmProblem};
pub use recover::{recover_flux, verify_flux};
pub use schedule::{survivor_weights, DncConfig, DncSchedule};
pub use stripes::StripeStore;
pub use supervise::{
    classify_failure, enumerate_supervised, enumerate_supervised_with_scalar, SuperviseConfig,
};
pub use types::{
    CandidateTest, EfmError, EfmOptions, EfmSet, FailureClass, IterationStats, KernelKind,
    PhaseBreakdown, RecoveryAction, RecoveryEvent, RecoveryLog, RowOrdering, RunStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use efm_metnet::examples;

    #[test]
    fn toy_network_eight_efms_serial() {
        let net = examples::toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        assert_eq!(out.efms.len(), 8);
        assert_eq!(out.stats.final_modes, 8);
    }

    #[test]
    fn toy_network_matches_oracle() {
        let net = examples::toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let oracle = brute_force_efms(&net, 22);
        assert_eq!(out.efms, oracle);
    }

    #[test]
    fn all_backends_agree_on_toy() {
        let net = examples::toy_network();
        let opts = EfmOptions::default();
        let serial = enumerate_with(&net, &opts, &Backend::Serial).unwrap();
        let rayon = enumerate_with(&net, &opts, &Backend::Rayon).unwrap();
        let cluster =
            enumerate_with(&net, &opts, &Backend::Cluster(efm_cluster::ClusterConfig::new(3)))
                .unwrap();
        assert_eq!(serial.efms, rayon.efms);
        assert_eq!(serial.efms, cluster.efms);
    }

    #[test]
    fn divide_conquer_toy_partition() {
        // The paper's §III.A example: partition across {r6r, r8r}.
        let net = examples::toy_network();
        let opts = EfmOptions::default();
        let out = enumerate_divide_conquer(&net, &opts, &["r6r", "r8r"], &Backend::Serial).unwrap();
        assert_eq!(out.efms.len(), 8);
        assert_eq!(out.subsets.len(), 4);
        // Each of the four subsets contributes exactly two EFMs (§III.A).
        for s in &out.subsets {
            assert_eq!(s.efm_count, 2, "subset {} ({})", s.id, s.pattern);
        }
        let direct = enumerate(&net, &opts).unwrap();
        assert_eq!(out.efms, direct.efms);
    }

    #[test]
    fn adjacency_test_agrees_with_rank_test() {
        let net = examples::toy_network();
        let rank = enumerate(&net, &EfmOptions::default()).unwrap();
        let adj =
            enumerate(&net, &EfmOptions { test: CandidateTest::Adjacency, ..Default::default() })
                .unwrap();
        assert_eq!(rank.efms, adj.efms);
    }

    #[test]
    fn float_scalar_agrees_on_toy() {
        let net = examples::toy_network();
        let exact = enumerate(&net, &EfmOptions::default()).unwrap();
        let float = enumerate_with_scalar::<efm_numeric::F64Tol>(
            &net,
            &EfmOptions::default(),
            &Backend::Serial,
        )
        .unwrap();
        assert_eq!(exact.efms, float.efms);
    }

    #[test]
    fn structured_counts() {
        use efm_metnet::generator::{layered_branches, linear_chain, parallel_branches};
        let opts = EfmOptions::default();
        assert_eq!(enumerate(&linear_chain(5), &opts).unwrap().efms.len(), 1);
        assert_eq!(enumerate(&parallel_branches(4), &opts).unwrap().efms.len(), 4);
        assert_eq!(enumerate(&layered_branches(3, 3), &opts).unwrap().efms.len(), 27);
    }

    #[test]
    fn every_efm_is_a_valid_flux_mode() {
        let net = examples::toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let rev = net.reversibilities();
        for i in 0..out.efms.len() {
            let sup = out.efms.support(i);
            let flux = recover_flux(&out.reduced, &rev, &sup).unwrap();
            verify_flux(&net, &flux).unwrap();
            // The recovered flux's support must equal the reported support.
            let actual: Vec<usize> =
                flux.iter().enumerate().filter(|(_, v)| !v.is_zero()).map(|(j, _)| j).collect();
            assert_eq!(actual, sup);
        }
    }

    #[test]
    fn mode_limit_is_enforced() {
        let net = efm_metnet::generator::layered_branches(4, 3);
        let opts = EfmOptions { max_modes: Some(10), ..Default::default() };
        match enumerate(&net, &opts) {
            Err(EfmError::ModeLimitExceeded { limit: 10, .. }) => {}
            other => panic!("expected mode limit error, got {other:?}"),
        }
    }

    #[test]
    fn empty_network_yields_no_efms() {
        let net = efm_metnet::parse_network("r1 : A => B\n").unwrap();
        // A and B are internal dead ends: everything is blocked.
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        assert_eq!(out.efms.len(), 0);
    }
}
