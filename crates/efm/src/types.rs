//! Shared public types: options, statistics, results, errors.

use std::collections::BTreeSet;
use std::time::Duration;

/// Row-processing order for the `R(2)` block of the kernel matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOrdering {
    /// The paper's heuristic: rows sorted by ascending nonzero count, with
    /// rows of reversible reactions processed last (§II.C).
    Paper,
    /// Ascending nonzero count only (no reversibility tie-break).
    FewestNonzeros,
    /// Natural column order (no heuristic) — ablation baseline.
    AsIs,
    /// Deterministic pseudo-random order — ablation worst-ish case.
    Random(u64),
}

/// Elementarity test applied to candidate modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateTest {
    /// The algebraic rank test of the paper ([18],[30]): the support
    /// submatrix of the stoichiometry matrix must have nullity 1.
    Rank,
    /// The classical combinatorial adjacency (support-superset) test of the
    /// double description method — the ablation alternative.
    Adjacency,
}

/// Which candidate-generation kernel the engine dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Pick the best tier the CPU supports (honours the `EFM_KERNEL`
    /// environment variable, so differential CI lanes can force a tier
    /// without plumbing options through every harness).
    #[default]
    Auto,
    /// Force the portable scalar reference path.
    Scalar,
    /// Use the best vectorized tier available (SSE2/AVX2); degrades to
    /// scalar on CPUs without vector support.
    Simd,
}

impl KernelKind {
    /// Resolves to the instruction tier the engine will run at. `Auto`
    /// consults `EFM_KERNEL` (`auto`/`scalar`/`simd`, read once per
    /// process) and then runtime CPU detection; all tiers produce
    /// bit-identical results, so this only affects speed.
    pub fn resolve(self) -> efm_bitset::KernelTier {
        use std::sync::OnceLock;
        static ENV: OnceLock<Option<KernelKind>> = OnceLock::new();
        let kind = match self {
            KernelKind::Auto => *ENV
                .get_or_init(|| std::env::var("EFM_KERNEL").ok().and_then(|v| v.parse().ok()))
                .as_ref()
                .unwrap_or(&KernelKind::Auto),
            other => other,
        };
        match kind {
            KernelKind::Scalar => efm_bitset::KernelTier::Scalar,
            _ => efm_bitset::detect_tier(),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelKind::Auto => write!(f, "auto"),
            KernelKind::Scalar => write!(f, "scalar"),
            KernelKind::Simd => write!(f, "simd"),
        }
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelKind::Auto),
            "scalar" => Ok(KernelKind::Scalar),
            "simd" => Ok(KernelKind::Simd),
            other => Err(format!("unknown kernel {other:?} (expected auto|scalar|simd)")),
        }
    }
}

/// Options shared by all algorithm variants.
#[derive(Debug, Clone)]
pub struct EfmOptions {
    /// Row ordering heuristic.
    pub ordering: RowOrdering,
    /// Candidate elementarity test.
    pub test: CandidateTest,
    /// Abort if the intermediate mode count exceeds this (safety valve for
    /// property tests on adversarial networks).
    pub max_modes: Option<usize>,
    /// Force these reactions (by original index) to be the *free* (identity)
    /// part of the kernel. Used by the golden tests that reproduce the
    /// paper's worked example exactly; `None` lets elimination choose.
    pub force_free: Option<Vec<usize>>,
    /// Run rank tests in exact (Bareiss) arithmetic instead of the default
    /// floating-point LU the paper prescribes. Exact tests are orders of
    /// magnitude slower on genome-scale submatrices (intermediate integers
    /// grow to hundreds of digits) and exist for verification.
    pub exact_rank_test: bool,
    /// Which network-reduction stages run before enumeration (ablation
    /// hook; the default is the paper's full preprocessing).
    pub compression: efm_metnet::CompressionOptions,
    /// Use bit-pattern trees (Terzer & Stelling-style) for the subset and
    /// duplicate scans of each iteration. Disabling falls back to the
    /// classical linear scans — the A/B baseline for benchmarks and the
    /// oracle for property tests.
    pub pattern_trees: bool,
    /// Candidate-generation kernel dispatch (`--kernel` on the CLI). All
    /// choices are bit-identical; `Scalar` exists as the differential
    /// baseline and escape hatch.
    pub kernel: KernelKind,
    /// Generate candidates through the bounded streaming pipeline
    /// (`Engine::stream_range`): per-batch dedup + elementarity testing
    /// releases each batch before the next is generated, bounding the
    /// transient buffer and letting drivers charge it against their memory
    /// meter. Disabling restores the materialize-then-filter path — the
    /// A/B baseline whose transient allocation is invisible to memory caps.
    /// Overridable per process via `EFM_STREAMING` (`1`/`0`).
    pub streaming: bool,
    /// Pair-batch size of the streaming pipeline. Smaller batches bound
    /// the transient tighter at the cost of more merge rounds.
    pub streaming_batch: u64,
    /// Resident-byte budget for completed divide-and-conquer survivor
    /// stripes. `Some(b)` compresses each finished subset's supports
    /// (delta/run-length, [`efm_bitset::CompressedPattern`]) and spills
    /// whole stripes to a temporary file once the compressed residents
    /// exceed `b` bytes; assembly streams them back one stripe at a time.
    /// `None` (the default) keeps the legacy uncompressed in-memory lists.
    pub spill_budget: Option<u64>,
    /// Per-rank stripe weights for the cluster backend's candidate-pair
    /// split. `None` (the default) means the uniform `rank·pairs/nodes`
    /// stripes; `Some(w)` (length = node count) splits each iteration's
    /// pair range proportionally to `w`. Set by the failover path so a
    /// survivor inheriting a dead rank's share keeps the work balanced by
    /// the PR 5 cost model, and recorded in EFCK v7 checkpoints as stripe
    /// provenance.
    pub stripe_weights: Option<Vec<u64>>,
}

impl EfmOptions {
    /// Whether streaming generation is active, honoring the
    /// `EFM_STREAMING` environment override (`1`/`on`/`true` forces the
    /// streaming pipeline, `0`/`off`/`false`/`legacy` the materialized
    /// one; read once per process, like `EFM_KERNEL`).
    pub fn streaming_enabled(&self) -> bool {
        use std::sync::OnceLock;
        static ENV: OnceLock<Option<bool>> = OnceLock::new();
        ENV.get_or_init(|| {
            std::env::var("EFM_STREAMING").ok().and_then(|v| {
                match v.to_ascii_lowercase().as_str() {
                    "1" | "on" | "true" | "stream" | "streaming" => Some(true),
                    "0" | "off" | "false" | "legacy" => Some(false),
                    _ => None,
                }
            })
        })
        .unwrap_or(self.streaming)
    }
}

impl Default for EfmOptions {
    fn default() -> Self {
        EfmOptions {
            ordering: RowOrdering::Paper,
            test: CandidateTest::Rank,
            max_modes: None,
            force_free: None,
            exact_rank_test: false,
            compression: efm_metnet::CompressionOptions::default(),
            pattern_trees: true,
            kernel: KernelKind::Auto,
            streaming: true,
            streaming_batch: 1 << 16,
            spill_budget: None,
            stripe_weights: None,
        }
    }
}

/// Statistics for one iteration of the Nullspace Algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationStats {
    /// Position of the processed row within the ordered kernel matrix.
    pub position: usize,
    /// Name of the reduced reaction whose row was processed.
    pub reaction: String,
    /// Whether that reaction is reversible.
    pub reversible: bool,
    /// Modes with positive / negative / zero entry in the processed row.
    pub pos: usize,
    /// Negative-entry modes.
    pub neg: usize,
    /// Zero-entry modes.
    pub zero: usize,
    /// Candidate pairs generated (`pos × neg`) — the paper's "number of
    /// generated intermediate candidate modes".
    pub pairs: u64,
    /// Pairs that reached the numeric combination pass (cheap-bound hits).
    pub numeric_pass: u64,
    /// Candidates surviving the summary (too-many-nonzeros) rejection.
    pub prefiltered: u64,
    /// Candidates surviving duplicate removal.
    pub deduped: u64,
    /// Candidates accepted by the elementarity test.
    pub accepted: u64,
    /// Modes alive after the iteration.
    pub modes_after: usize,
    /// Wall time of the generation phase (serial driver).
    pub t_generate: std::time::Duration,
    /// Wall time of the dedup phase (serial driver: sort + dedup; parallel
    /// drivers: merging the per-chunk sorted runs).
    pub t_dedup: std::time::Duration,
    /// Wall time of merging per-chunk sorted candidate runs (parallel
    /// drivers only; equals `t_dedup` there).
    pub t_merge: std::time::Duration,
    /// Wall time of the pattern-tree filters (duplicate-of-existing drop
    /// and, under the adjacency test, the subset queries).
    pub t_tree_filter: std::time::Duration,
    /// Wall time of the elementarity + materialize phase (serial driver).
    pub t_test: std::time::Duration,
}

/// Wall-clock time spent per algorithm phase (the paper's Table II rows).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Candidate generation (pairing + summary rejection).
    pub generate: Duration,
    /// Sorting and duplicate removal (parallel drivers: merging per-chunk
    /// sorted runs — no longer a serial barrier).
    pub dedup: Duration,
    /// Pattern-tree filtering: duplicate-of-existing drops and, under the
    /// adjacency test, the subset queries.
    pub tree_filter: Duration,
    /// Rank (or adjacency) tests.
    pub rank_test: Duration,
    /// Inter-node communication (cluster backend only).
    pub communicate: Duration,
    /// Merging exchanged candidate sets (cluster backend only).
    pub merge: Duration,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.generate
            + self.dedup
            + self.tree_filter
            + self.rank_test
            + self.communicate
            + self.merge
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.generate += other.generate;
        self.dedup += other.dedup;
        self.tree_filter += other.tree_filter;
        self.rank_test += other.rank_test;
        self.communicate += other.communicate;
        self.merge += other.merge;
    }
}

/// How the supervisor classified an observed failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A programming or configuration error no restart can fix.
    Fatal,
    /// A transient infrastructure failure (crash, timeout, lost message) —
    /// a restart from the newest checkpoint can reasonably succeed.
    Retryable,
    /// Memory exhaustion — a restart hits the same wall; the recovery is
    /// divide-and-conquer escalation (a deeper `2^qsub` split).
    Memory,
    /// A single non-coordinator rank died (heartbeat went stale). The
    /// surviving ranks' work is intact, so the recovery is in-place
    /// failover — re-enter the run with N−1 ranks and the dead rank's
    /// stripe redistributed — rather than a full restart.
    RankLost,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureClass::Fatal => write!(f, "fatal"),
            FailureClass::Retryable => write!(f, "retryable"),
            FailureClass::Memory => write!(f, "memory"),
            FailureClass::RankLost => write!(f, "rank lost"),
        }
    }
}

/// What the supervisor did in response to a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Relaunched the run (from a checkpoint when one was valid).
    Restarted,
    /// Rerouted to divide-and-conquer escalation.
    Escalated,
    /// Discarded an unreadable or mismatched checkpoint before retrying.
    DiscardedCheckpoint,
    /// Exhausted the retry budget and surfaced the error.
    GaveUp,
    /// Continued in place with one fewer rank after a rank loss, the dead
    /// rank's stripe redistributed across survivors. Not a restart:
    /// [`RecoveryLog::restarts`] excludes these events.
    FailedOver,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryAction::Restarted => write!(f, "restarted"),
            RecoveryAction::Escalated => write!(f, "escalated"),
            RecoveryAction::DiscardedCheckpoint => write!(f, "discarded checkpoint"),
            RecoveryAction::GaveUp => write!(f, "gave up"),
            RecoveryAction::FailedOver => write!(f, "failed over"),
        }
    }
}

/// One failure the supervisor observed and the action it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// When the supervisor observed the failure, in microseconds on the
    /// process-wide monotonic clock ([`efm_obs::now_us`]) — the same
    /// timeline trace events are stamped with, so restarts can be lined
    /// up against the phase spans they interrupted. `0` for events read
    /// from pre-v3 checkpoints, which did not record timestamps.
    pub at_us: u64,
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// Display form of the observed error.
    pub error: String,
    /// How the failure was classified.
    pub class: FailureClass,
    /// What the supervisor did.
    pub action: RecoveryAction,
    /// Iteration the next attempt resumed from (`None` = fresh start or no
    /// further attempt).
    pub resumed_from: Option<u64>,
}

/// The supervisor's audit trail: every fault observed and action taken, in
/// order. Carried in [`RunStats`] on success and in
/// [`EfmError::RestartsExhausted`] on failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Events in observation order.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Number of restarts performed (excludes checkpoint discards).
    pub fn restarts(&self) -> u32 {
        self.events.iter().filter(|e| e.action == RecoveryAction::Restarted).count() as u32
    }

    /// Whether any fault was observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl std::fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no faults observed");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "[{:>10.3}s] attempt {}: [{}] {} -> {}",
                e.at_us as f64 / 1e6,
                e.attempt,
                e.class,
                e.error,
                e.action
            )?;
            if let Some(it) = e.resumed_from {
                write!(f, " (resumed from iteration {it})")?;
            }
        }
        Ok(())
    }
}

/// Statistics of a whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Per-iteration records, in processing order.
    pub iterations: Vec<IterationStats>,
    /// Total candidate pairs generated across all iterations.
    pub candidates_generated: u64,
    /// Candidates eliminated by the bit-pattern prefilter (summary
    /// rejection and zero-tree superset pruning) before any numeric work.
    pub tree_pruned: u64,
    /// Duplicate candidates removed, both within a batch (sort+dedup) and
    /// against the surviving mode set (tree subset queries).
    pub dedup_hits: u64,
    /// Candidates submitted to the elementarity test (rank or adjacency).
    pub rank_tests: u64,
    /// Messages exchanged between cluster ranks (`0` off-cluster).
    pub comm_messages: u64,
    /// Payload bytes exchanged between cluster ranks (`0` off-cluster).
    /// Unlike the modeled estimates in the bench tables, this is summed
    /// from the actual buffers handed to the collectives.
    pub comm_bytes: u64,
    /// Peak number of intermediate modes.
    pub peak_modes: usize,
    /// Peak accounted memory in bytes, maximised over cluster ranks. With
    /// streaming generation (the default) this *includes* the bounded
    /// transient generation buffer — resident modes plus the charged
    /// batch-pipeline high water (DESIGN.md §13). On the legacy
    /// materialized path it reverts to the old resident-only accounting
    /// (`0` for backends without memory accounting there).
    pub peak_bytes: u64,
    /// Peak bytes of the *transient* generation buffer, maximised over
    /// ranks — kept as a separate gauge so the transient trajectory stays
    /// comparable across streaming/legacy runs. Historically this was
    /// excluded from `peak_bytes` (the raw materialized buffer dwarfed
    /// subset peaks, see DESIGN.md §4); the streaming pipeline bounds it
    /// and folds it into `peak_bytes`.
    pub peak_transient_bytes: u64,
    /// Bounded batches the streaming generation pipeline processed
    /// (`0` on the legacy materialized path).
    pub stream_batches: u64,
    /// Cumulative bytes of survivor stripes written to spill storage by
    /// the stripe store (`0` when spilling never engaged).
    pub spill_bytes: u64,
    /// Final mode count.
    pub final_modes: usize,
    /// Instruction tier the generation kernel ran at (`"scalar"`,
    /// `"sse2"` or `"avx2"`; empty for stats that never ran an engine,
    /// e.g. restored pre-v5 checkpoints). One engine runs exactly one
    /// tier, so together with `kernel_pruned` this gives the per-tier
    /// pruning attribution.
    pub kernel_tier: String,
    /// Cache blocks the blocked generation kernel processed.
    pub kernel_blocks: u64,
    /// Pairs rejected by the vectorized prefilter bound (before the
    /// numeric combination pass) at `kernel_tier`.
    pub kernel_pruned: u64,
    /// Peak resident bytes of the generation arenas, maximised over
    /// workers/ranks.
    pub arena_peak_bytes: u64,
    /// Phase time breakdown.
    pub phases: PhaseBreakdown,
    /// Total wall time of the enumeration core.
    pub total_time: Duration,
    /// In-place failovers performed (rank lost, survivors continued with
    /// the dead rank's stripe redistributed). `0` for runs without
    /// `--failover` or without rank deaths.
    pub failovers: u32,
    /// Ranks declared dead over the run's lifetime. Usually equals
    /// `failovers`; differs when a loss fell back to the restart ladder.
    pub ranks_lost: u32,
    /// Faults observed and recovery actions taken by the supervisor
    /// (empty for unsupervised or fault-free runs).
    pub recovery: RecoveryLog,
}

impl RunStats {
    /// Accumulates another run's statistics (used by divide-and-conquer to
    /// report cumulative numbers across subproblems).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.candidates_generated += other.candidates_generated;
        self.tree_pruned += other.tree_pruned;
        self.dedup_hits += other.dedup_hits;
        self.rank_tests += other.rank_tests;
        self.comm_messages += other.comm_messages;
        self.comm_bytes += other.comm_bytes;
        self.peak_modes = self.peak_modes.max(other.peak_modes);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.peak_transient_bytes = self.peak_transient_bytes.max(other.peak_transient_bytes);
        if self.kernel_tier.is_empty() {
            self.kernel_tier = other.kernel_tier.clone();
        }
        self.kernel_blocks += other.kernel_blocks;
        self.kernel_pruned += other.kernel_pruned;
        self.arena_peak_bytes = self.arena_peak_bytes.max(other.arena_peak_bytes);
        self.stream_batches += other.stream_batches;
        self.spill_bytes += other.spill_bytes;
        self.failovers += other.failovers;
        self.ranks_lost += other.ranks_lost;
        self.final_modes += other.final_modes;
        self.phases.accumulate(&other.phases);
        self.total_time += other.total_time;
        self.recovery.events.extend(other.recovery.events.iter().cloned());
    }
}

/// A set of elementary flux modes over a fixed reaction universe, stored as
/// packed support bit patterns (the paper's "bit-valued matrix of
/// elementary modes").
#[derive(Debug, Clone)]
pub struct EfmSet {
    /// Number of reactions in the universe (bits per mode).
    num_reactions: usize,
    /// Reaction names, indexed by bit position.
    reaction_names: Vec<String>,
    words: usize,
    bits: Vec<u64>,
}

impl EfmSet {
    /// Creates an empty set over `reaction_names`.
    pub fn new(reaction_names: Vec<String>) -> Self {
        let num_reactions = reaction_names.len();
        let words = num_reactions.div_ceil(64).max(1);
        EfmSet { num_reactions, reaction_names, words, bits: Vec::new() }
    }

    /// Number of reactions in the universe.
    pub fn num_reactions(&self) -> usize {
        self.num_reactions
    }

    /// Reaction names.
    pub fn reaction_names(&self) -> &[String] {
        &self.reaction_names
    }

    /// Number of modes.
    pub fn len(&self) -> usize {
        self.bits.len() / self.words
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends a mode given by its support (reaction indices).
    pub fn push_support(&mut self, support: &[usize]) {
        let base = self.bits.len();
        self.bits.resize(base + self.words, 0);
        for &r in support {
            assert!(r < self.num_reactions, "support index out of range");
            self.bits[base + r / 64] |= 1u64 << (r % 64);
        }
    }

    /// The support of mode `i`, ascending.
    pub fn support(&self, i: usize) -> Vec<usize> {
        let base = i * self.words;
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut word = self.bits[base + w];
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(w * 64 + b);
                word &= word - 1;
            }
        }
        out
    }

    /// Whether mode `i` uses reaction `r`.
    pub fn uses(&self, i: usize, r: usize) -> bool {
        (self.bits[i * self.words + r / 64] >> (r % 64)) & 1 == 1
    }

    /// Merges another set over the same universe into this one.
    pub fn extend_from(&mut self, other: &EfmSet) {
        assert_eq!(self.num_reactions, other.num_reactions, "universe mismatch");
        self.bits.extend_from_slice(&other.bits);
    }

    /// Sorts modes by their packed representation and removes duplicates.
    pub fn canonicalize(&mut self) {
        let words = self.words;
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            self.bits[a * words..(a + 1) * words].cmp(&self.bits[b * words..(b + 1) * words])
        });
        order.dedup_by(|&mut a, &mut b| {
            self.bits[a * words..(a + 1) * words] == self.bits[b * words..(b + 1) * words]
        });
        let mut new_bits = Vec::with_capacity(order.len() * words);
        for &i in &order {
            new_bits.extend_from_slice(&self.bits[i * words..(i + 1) * words]);
        }
        self.bits = new_bits;
    }

    /// The supports as a set-of-sets (order independent) for comparisons.
    pub fn as_support_sets(&self) -> BTreeSet<Vec<usize>> {
        (0..self.len()).map(|i| self.support(i)).collect()
    }

    /// Iterates over the supports in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.len()).map(|i| self.support(i))
    }

    /// The raw packed support words (serialization backend).
    pub fn raw_words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a set from raw packed words (serialization backend).
    /// Fails when the word count is not a multiple of the per-mode width.
    pub fn from_raw_words(reaction_names: Vec<String>, bits: Vec<u64>) -> Result<Self, String> {
        let num_reactions = reaction_names.len();
        let words = num_reactions.div_ceil(64).max(1);
        if !bits.len().is_multiple_of(words) {
            return Err(format!(
                "{} words is not a multiple of the {}-word mode width",
                bits.len(),
                words
            ));
        }
        Ok(EfmSet { num_reactions, reaction_names, words, bits })
    }
}

impl PartialEq for EfmSet {
    fn eq(&self, other: &Self) -> bool {
        self.num_reactions == other.num_reactions
            && self.as_support_sets() == other.as_support_sets()
    }
}

/// Errors of the EFM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EfmError {
    /// The (reduced) network has more reactions than the widest supported
    /// bit pattern.
    TooManyReactions {
        /// Reduced reaction count.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A divide-and-conquer partition reaction is unknown.
    UnknownReaction(String),
    /// A partition reaction was removed (blocked) by compression.
    PartitionBlocked(String),
    /// A partition reaction is irreversible in the reduced network; the
    /// paper's scheme partitions on reversible reactions only.
    PartitionIrreversible(String),
    /// A partition reaction could not be made a pivot (dependent) column,
    /// so it cannot be ordered last (Proposition 1 does not apply).
    PartitionNotPivotal(String),
    /// Two partition reactions collapsed into the same reduced reaction.
    PartitionCollision(String, String),
    /// The intermediate mode count exceeded `EfmOptions::max_modes`.
    ModeLimitExceeded {
        /// The limit that was exceeded.
        limit: usize,
        /// Iteration position at which it happened.
        at_iteration: usize,
    },
    /// The simulated cluster failed (memory exhaustion, node panic).
    Cluster(efm_cluster::ClusterError),
    /// A checkpoint file could not be written, read, or does not match the
    /// problem being resumed.
    Checkpoint(String),
    /// The supervisor exhausted its restart budget; carries the last
    /// failure and the full recovery log.
    RestartsExhausted {
        /// The configured restart budget.
        max_restarts: u32,
        /// The failure that ended the run.
        last: Box<EfmError>,
        /// Every fault observed and action taken.
        log: RecoveryLog,
    },
}

impl std::fmt::Display for EfmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EfmError::TooManyReactions { got, max } => {
                write!(f, "reduced network has {got} reactions; at most {max} supported")
            }
            EfmError::UnknownReaction(n) => write!(f, "unknown partition reaction {n}"),
            EfmError::PartitionBlocked(n) => {
                write!(f, "partition reaction {n} is blocked (removed by compression)")
            }
            EfmError::PartitionIrreversible(n) => {
                write!(f, "partition reaction {n} is irreversible in the reduced network")
            }
            EfmError::PartitionNotPivotal(n) => {
                write!(f, "partition reaction {n} cannot be ordered last in the kernel")
            }
            EfmError::PartitionCollision(a, b) => {
                write!(f, "partition reactions {a} and {b} merged into one reduced reaction")
            }
            EfmError::ModeLimitExceeded { limit, at_iteration } => {
                write!(f, "mode limit {limit} exceeded at iteration {at_iteration}")
            }
            EfmError::Cluster(e) => write!(f, "cluster failure: {e}"),
            EfmError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            EfmError::RestartsExhausted { max_restarts, last, log } => {
                write!(f, "supervisor exhausted {max_restarts} restarts; last error: {last}; recovery log:\n{log}")
            }
        }
    }
}

impl std::error::Error for EfmError {}

impl From<efm_cluster::ClusterError> for EfmError {
    fn from(e: efm_cluster::ClusterError) -> Self {
        EfmError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("r{i}")).collect()
    }

    #[test]
    fn efmset_push_and_support() {
        let mut s = EfmSet::new(names(70));
        s.push_support(&[0, 63, 64, 69]);
        s.push_support(&[5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.support(0), vec![0, 63, 64, 69]);
        assert_eq!(s.support(1), vec![5]);
        assert!(s.uses(0, 64));
        assert!(!s.uses(1, 0));
    }

    #[test]
    fn efmset_canonicalize_dedups() {
        let mut s = EfmSet::new(names(10));
        s.push_support(&[1, 2]);
        s.push_support(&[0]);
        s.push_support(&[1, 2]);
        s.canonicalize();
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_support_sets().len(), 2);
    }

    #[test]
    fn efmset_equality_is_order_independent() {
        let mut a = EfmSet::new(names(8));
        a.push_support(&[1]);
        a.push_support(&[2, 3]);
        let mut b = EfmSet::new(names(8));
        b.push_support(&[2, 3]);
        b.push_support(&[1]);
        assert_eq!(a, b);
        b.push_support(&[4]);
        assert_ne!(a, b);
    }

    #[test]
    fn efmset_extend() {
        let mut a = EfmSet::new(names(6));
        a.push_support(&[0]);
        let mut b = EfmSet::new(names(6));
        b.push_support(&[1]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn phase_breakdown_totals() {
        let mut p = PhaseBreakdown {
            generate: Duration::from_millis(10),
            rank_test: Duration::from_millis(5),
            ..Default::default()
        };
        let q = PhaseBreakdown { merge: Duration::from_millis(1), ..Default::default() };
        p.accumulate(&q);
        assert_eq!(p.total(), Duration::from_millis(16));
    }

    #[test]
    fn runstats_accumulate() {
        let mut a = RunStats {
            candidates_generated: 10,
            peak_modes: 5,
            final_modes: 2,
            ..Default::default()
        };
        let b = RunStats {
            candidates_generated: 7,
            peak_modes: 9,
            final_modes: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.candidates_generated, 17);
        assert_eq!(a.peak_modes, 9);
        assert_eq!(a.final_modes, 5);
    }

    #[test]
    fn errors_display() {
        let e = EfmError::PartitionIrreversible("R5".into());
        assert!(e.to_string().contains("R5"));
    }
}
