//! Adaptive scheduling of divide-and-conquer subsets.
//!
//! The paper's Algorithm 3 splits enumeration into `2^qsub` independent
//! subproblems but runs them one after another; its own Table IV shows the
//! subsets are wildly imbalanced (candidate counts spread over orders of
//! magnitude), so a fixed execution order leaves most of the machine idle
//! behind the largest subset. This module runs the subsets *concurrently*:
//!
//! 1. **Probe.** Every subset's reduced subproblem is built up front (it is
//!    needed anyway), which both detects provably-empty subsets without
//!    spawning a worker and yields the inputs of a cost model — processed
//!    row count, kernel width, reversible-row count ([`estimate_cost`]).
//! 2. **Order + deal.** Runnable subsets are sorted longest-first and dealt
//!    round-robin into per-worker deques (the classic LPT heuristic);
//!    [`DncSchedule::Static`] stops there.
//! 3. **Steal.** Under [`DncSchedule::Steal`] an idle worker steals from
//!    the *back* of the deque of the victim with the most estimated work
//!    remaining — the owner always holds its costliest subsets at the
//!    front, so steals take the cheapest task of the busiest worker. The
//!    per-worker remaining-cost tallies that guide victim choice are live
//!    telemetry: they are decremented as subsets finish, and the steal /
//!    re-split / imbalance figures are published as `efm-obs` counters.
//! 4. **Grow stragglers.** When the queues drain, idle capacity is fed
//!    back into the survivors instead of parking: a serial-backend subset
//!    switches its remaining iterations onto the shared rayon pool
//!    ([`crate::drivers::adaptive_supports`]), and a cluster-backend
//!    subset runs in bounded *segments*
//!    ([`crate::cluster_algo::cluster_supports_segment`]) whose boundary
//!    checkpoints let it restart on a larger node group drawn from the
//!    idle-node pool — the pair grid is re-striped over the new group, the
//!    paper's mid-run re-split.
//!
//! Failures are handled per subset, reusing the supervisor's
//! classification ([`crate::supervise::classify_failure`]): a retryable
//! failure (crashed rank, lost message, stale checkpoint) restarts *that
//! subset only* — from its last segment boundary if it has one — under a
//! per-subset [`DncConfig::max_retries`] budget, while its siblings keep
//! running; fatal and memory failures propagate. Every recovery action is
//! recorded as a [`RecoveryEvent`] in the subset's statistics.
//!
//! Progress is durable through [`DncCheckpoint`] (EFCK v4): each completed
//! subset atomically rewrites a per-subset completion bitmap plus the
//! finished results, so a resumed run re-enumerates only unfinished
//! subsets regardless of the completion order the schedule produced.
//!
//! Every schedule produces the identical result: subset outcomes are
//! deterministic and results are assembled in subset-id order, so
//! [`DncSchedule::Serial`] (the paper's loop, still the default), `Static`
//! and `Steal` differ only in wall-clock shape — a property enforced by
//! the differential suite in `tests/backend_equivalence.rs`.

use crate::bridge::EfmScalar;
use crate::checkpoint::{dnc_fingerprint, DncCheckpoint, DncSubsetResult, EngineCheckpoint};
use crate::cluster_algo::cluster_supports_segment;
use crate::divide::{resolve_partition, subset_pattern, Backend, Partition, SubsetReport};
use crate::drivers::{adaptive_supports, rayon_supports, serial_supports, SupportsAndStats};
use crate::problem::{build_subproblem, EfmProblem};
use crate::supervise::classify_failure;
use crate::types::{EfmError, EfmOptions, FailureClass, RecoveryAction, RecoveryEvent, RunStats};
use efm_bitset::BitPattern;
use efm_cluster::{ClusterConfig, FaultInjector, FaultPlan};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Execution order of the `2^qsub` divide-and-conquer subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DncSchedule {
    /// The paper's sequential loop, subset 0 to `2^qsub − 1`. Default;
    /// bit-identical to the pre-scheduler behaviour.
    #[default]
    Serial,
    /// Longest-first static assignment onto the worker pool (LPT): no
    /// migration after the initial deal.
    Static,
    /// Static deal plus work stealing and straggler re-splitting.
    Steal,
}

impl DncSchedule {
    /// Parses a CLI spelling (`serial`, `static`, `steal`).
    pub fn parse(s: &str) -> Option<DncSchedule> {
        match s {
            "serial" => Some(DncSchedule::Serial),
            "static" => Some(DncSchedule::Static),
            "steal" => Some(DncSchedule::Steal),
            _ => None,
        }
    }
}

impl std::fmt::Display for DncSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DncSchedule::Serial => write!(f, "serial"),
            DncSchedule::Static => write!(f, "static"),
            DncSchedule::Steal => write!(f, "steal"),
        }
    }
}

/// Configuration of the divide-and-conquer subset scheduler.
#[derive(Debug, Clone)]
pub struct DncConfig {
    /// Subset execution order.
    pub schedule: DncSchedule,
    /// Worker threads for the concurrent schedules (`0` = one per
    /// available core, capped at the number of runnable subsets).
    pub workers: usize,
    /// Per-subset restart budget: how many times one subset's *retryable*
    /// failures (crashed rank, lost message, stale checkpoint) are retried
    /// before the whole run fails. Fatal and memory failures are never
    /// retried here — they propagate to the supervisor / escalation layer.
    pub max_retries: u32,
    /// Divide-and-conquer progress checkpointing ([`DncCheckpoint`],
    /// EFCK v4): rewritten after every completed subset.
    pub checkpoint: Option<crate::checkpoint::CheckpointConfig>,
    /// Resume from `checkpoint.path` if it holds a matching progress
    /// record: completed subsets are skipped.
    pub resume: bool,
    /// Deterministic fault injection, per subset: subset `id` runs under a
    /// [`FaultInjector`] built from the plan (one-shot latches survive that
    /// subset's retries). Cluster backend only; used by the chaos suite.
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Cluster-backend segment length in iterations for the concurrent
    /// schedules: a subset pauses at every `segment_iters` boundary so a
    /// straggler can absorb idle nodes (`0` = never pause; stealing then
    /// happens at whole-subset granularity only).
    pub segment_iters: u64,
}

impl Default for DncConfig {
    fn default() -> Self {
        DncConfig {
            schedule: DncSchedule::Serial,
            workers: 0,
            max_retries: 3,
            checkpoint: None,
            resume: false,
            fault_plans: Vec::new(),
            segment_iters: 0,
        }
    }
}

impl DncConfig {
    /// A concurrent work-stealing configuration with `workers` threads.
    pub fn steal(workers: usize) -> Self {
        DncConfig { schedule: DncSchedule::Steal, workers, ..Default::default() }
    }
}

/// Per-subset probe result: the prebuilt subproblem (`None` = provably
/// empty) and its estimated cost.
struct Probe<S: EfmScalar> {
    pattern: String,
    problem: Option<EfmProblem<S>>,
    cost: u64,
}

/// Cost model seeding the longest-first order: processed-row count ×
/// kernel width² (candidate generation is pair-quadratic in the mode count,
/// which starts at the kernel width), inflated by the reversible-row count
/// (reversible rows keep both sign classes alive, so fewer modes settle per
/// iteration). Deliberately cheap and monotone rather than exact — the
/// stealing deque corrects mispredictions at run time.
fn estimate_cost<S: EfmScalar>(p: &EfmProblem<S>) -> u64 {
    let iters = (p.num_cols() - p.free_count - p.stop_before).max(1) as u64;
    let width = p.free_count.max(1) as u64;
    let rev = p.reversible.iter().filter(|&&r| r).count() as u64;
    (width * width * iters).saturating_mul(1 + rev).max(1)
}

/// Stripe weights for the N−1 survivors after rank `dead` is lost: the
/// dead rank's entry is removed and its share implicitly redistributed —
/// proportional striping over the remaining weights spreads the missing
/// capacity across every survivor instead of doubling one neighbour's
/// load (the same longest-first reasoning as [`estimate_cost`]).
pub fn survivor_weights(prior: &[u64], dead: usize) -> Vec<u64> {
    prior.iter().enumerate().filter(|&(r, _)| r != dead).map(|(_, &w)| w.max(1)).collect()
}

/// Builds subset `id`'s subproblem exactly as [`crate::divide::run_subset`]
/// does, plus the cost estimate.
fn probe_subset<S: EfmScalar>(
    red: &efm_metnet::ReducedNetwork,
    partition: &Partition,
    id: usize,
    opts: &EfmOptions,
) -> Result<Probe<S>, EfmError> {
    let qsub = partition.reduced_indices.len();
    let nonzero: Vec<usize> =
        (0..qsub).filter(|i| id >> i & 1 == 1).map(|i| partition.reduced_indices[i]).collect();
    let zero: Vec<usize> =
        (0..qsub).filter(|i| id >> i & 1 == 0).map(|i| partition.reduced_indices[i]).collect();
    let keep: Vec<usize> = (0..red.num_reduced()).filter(|c| !zero.contains(c)).collect();
    let problem: Option<EfmProblem<S>> = build_subproblem(red, &keep, &nonzero, opts)?;
    let cost = problem.as_ref().map_or(0, estimate_cost);
    Ok(Probe { pattern: subset_pattern(partition, id), problem, cost })
}

/// Idle-node accounting for concurrent cluster subsets: the configured
/// `nodes` ranks are a shared machine, carved into per-subset groups.
struct NodePool {
    free: Mutex<usize>,
}

impl NodePool {
    fn new(total: usize) -> Self {
        NodePool { free: Mutex::new(total) }
    }

    /// Takes up to `want` nodes; always returns a group of at least one
    /// rank (a fully-committed pool oversubscribes by one simulated rank
    /// rather than deadlocking). Returns `(group size, nodes charged)`.
    fn acquire(&self, want: usize) -> (usize, usize) {
        let mut f = self.free.lock().unwrap();
        let take = want.max(1).min(*f);
        if take == 0 {
            (1, 0)
        } else {
            *f -= take;
            (take, take)
        }
    }

    /// Takes up to `cap` additional nodes for a straggler (may be zero).
    fn try_grow(&self, cap: usize) -> usize {
        let mut f = self.free.lock().unwrap();
        let extra = (*f).min(cap);
        *f -= extra;
        extra
    }

    fn release(&self, n: usize) {
        *self.free.lock().unwrap() += n;
    }
}

/// State shared by the workers of a concurrent schedule.
struct Shared {
    /// Per-worker task deques (subset ids, costliest at the front).
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Per-worker estimated work remaining — the live signal steals and
    /// re-splits are steered by.
    remaining: Vec<AtomicU64>,
    /// Workers that found every deque empty and exited; survivors treat a
    /// nonzero value as an invitation to re-split.
    spare: AtomicUsize,
    /// First error wins; everyone else drains out.
    abort: AtomicBool,
    /// Idle cluster nodes (cluster backend only).
    pool: NodePool,
    /// Whether migration (stealing + re-splitting) is enabled.
    steal: bool,
}

impl Shared {
    /// Pops the next subset for worker `w`: own front first, then — under
    /// the stealing schedule — the back of the victim with the most
    /// estimated work left.
    fn next_task(&self, w: usize, costs: &[u64]) -> Option<usize> {
        if let Some(id) = self.deques[w].lock().unwrap().pop_front() {
            self.remaining[w].fetch_sub(costs[id], Ordering::Relaxed);
            return Some(id);
        }
        if !self.steal {
            return None;
        }
        loop {
            // Victim choice re-reads the tallies every round: a failed
            // steal (the victim drained between the read and the lock)
            // retries against the next-busiest worker.
            let victim = (0..self.deques.len())
                .filter(|&v| v != w)
                .max_by_key(|&v| self.remaining[v].load(Ordering::Relaxed))
                .filter(|&v| self.remaining[v].load(Ordering::Relaxed) > 0)?;
            if let Some(id) = self.deques[victim].lock().unwrap().pop_back() {
                self.remaining[victim].fetch_sub(costs[id], Ordering::Relaxed);
                efm_obs::counter_add("dnc steals", 1);
                if efm_obs::enabled() {
                    efm_obs::instant_dyn(format!("steal subset {id} from worker {victim}"));
                }
                return Some(id);
            }
            if self.remaining[victim].load(Ordering::Relaxed) == 0 {
                return None;
            }
        }
    }
}

/// Appends a retry decision for error `e`: `Ok(())` to run the subset
/// again (the event is logged), `Err(e)` to propagate.
fn retry_or_fail(
    e: EfmError,
    retries: &mut u32,
    max_retries: u32,
    log: &mut Vec<RecoveryEvent>,
    resumed_from: Option<u64>,
) -> Result<(), EfmError> {
    let class = classify_failure(&e);
    if class != FailureClass::Retryable || *retries >= max_retries {
        return Err(e);
    }
    log.push(RecoveryEvent {
        at_us: efm_obs::now_us(),
        attempt: *retries + 1,
        error: e.to_string(),
        class,
        action: RecoveryAction::Restarted,
        resumed_from,
    });
    *retries += 1;
    efm_obs::counter_add("dnc retries", 1);
    Ok(())
}

/// Runs one (non-empty) subset to completion under the per-subset retry
/// budget, including the cluster segment/re-split loop. Returns the
/// supports, the stats of the successful attempt (with the recovery events
/// of failed attempts appended), and the retry count.
#[allow(clippy::too_many_arguments)]
fn execute_subset<P: BitPattern, S: EfmScalar>(
    problem: &EfmProblem<S>,
    opts: &EfmOptions,
    backend: &Backend,
    dnc: &DncConfig,
    injector: Option<Arc<FaultInjector>>,
    shared: Option<&Shared>,
) -> Result<(SupportsAndStats, u32), EfmError> {
    let mut log: Vec<RecoveryEvent> = Vec::new();
    let mut retries = 0u32;
    let mut failed_over = 0u32;
    let stealing = shared.is_some_and(|s| s.steal);
    let out = match backend {
        Backend::Serial => loop {
            let r = if stealing {
                // Straggler path: switch the remaining iterations onto the
                // rayon pool once workers go spare.
                let spare = shared.map(|s| &s.spare);
                adaptive_supports::<P, S>(problem, opts, || {
                    spare.is_some_and(|s| s.load(Ordering::Relaxed) > 0)
                })
            } else {
                serial_supports::<P, S>(problem, opts)
            };
            match r {
                Ok(out) => break out,
                Err(e) => retry_or_fail(e, &mut retries, dnc.max_retries, &mut log, None)?,
            }
        },
        Backend::Rayon => loop {
            match rayon_supports::<P, S>(problem, opts) {
                Ok(out) => break out,
                Err(e) => retry_or_fail(e, &mut retries, dnc.max_retries, &mut log, None)?,
            }
        },
        Backend::Cluster(base) => {
            // Carve a node group out of the shared pool (serial schedule:
            // the whole machine, exactly the pre-scheduler behaviour).
            let (mut group, mut charged) = match shared {
                Some(s) => s.pool.acquire(base.nodes / s.deques.len().max(1)),
                None => (base.nodes, 0),
            };
            // Segment progress survives retries: a crashed attempt resumes
            // from the last boundary snapshot, not from scratch.
            let mut seg_ck: Option<EngineCheckpoint> = None;
            // Local copy so a failover can re-stripe the survivors; the
            // group may also regrow at segment boundaries (re-split), which
            // resets the weights to uniform over the grown group.
            let mut sub_opts = opts.clone();
            let run = loop {
                let mut cfg = ClusterConfig::new(group).with_timeouts(base.timeouts.clone());
                cfg.memory_limit = base.memory_limit;
                cfg.failover = base.failover;
                cfg.heartbeat = base.heartbeat;
                if let Some(inj) = injector.clone().or_else(|| base.injector.clone()) {
                    cfg = cfg.with_injector(inj);
                }
                let stop = (stealing && dnc.segment_iters > 0).then(|| {
                    seg_ck.as_ref().map_or(0, |c| c.iterations_completed()) + dnc.segment_iters
                });
                match cluster_supports_segment::<P, S>(
                    problem,
                    &sub_opts,
                    &cfg,
                    seg_ck.as_ref(),
                    None,
                    stop,
                ) {
                    Ok((out, None)) => break Ok((out.supports, out.stats)),
                    Ok((_, Some(ck))) => {
                        seg_ck = Some(ck);
                        // Segment boundary: a straggler absorbs whatever
                        // the pool has freed — the next segment re-stripes
                        // its pair grid over the grown group.
                        if let Some(s) = shared {
                            let extra = s.pool.try_grow(base.nodes.saturating_sub(group));
                            if extra > 0 {
                                group += extra;
                                charged += extra;
                                sub_opts.stripe_weights = None;
                                efm_obs::counter_add("dnc resplits", 1);
                                if efm_obs::enabled() {
                                    efm_obs::instant_dyn(format!("resplit onto {group} nodes"));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        let resumed = seg_ck.as_ref().map(|c| c.iterations_completed());
                        // In-place failover: a lost non-coordinator rank
                        // degrades the group instead of burning a retry —
                        // survivors re-enter from the last boundary with
                        // the dead rank's stripe redistributed.
                        if let EfmError::Cluster(efm_cluster::ClusterError::RankLost {
                            rank: dead,
                            ..
                        }) = &e
                        {
                            let dead = *dead;
                            if group > 1 && dead != 0 && dead < group {
                                let prior = sub_opts
                                    .stripe_weights
                                    .take()
                                    .filter(|w| w.len() == group)
                                    .unwrap_or_else(|| vec![1; group]);
                                sub_opts.stripe_weights = Some(survivor_weights(&prior, dead));
                                log.push(RecoveryEvent {
                                    at_us: efm_obs::now_us(),
                                    attempt: retries + 1,
                                    error: e.to_string(),
                                    class: FailureClass::RankLost,
                                    action: RecoveryAction::FailedOver,
                                    resumed_from: resumed,
                                });
                                group -= 1;
                                failed_over += 1;
                                efm_obs::counter_add("failovers", 1);
                                efm_obs::counter_add("ranks lost", 1);
                                if efm_obs::enabled() {
                                    efm_obs::instant_dyn(format!(
                                        "failover: rank {dead} lost, continuing on {group} nodes"
                                    ));
                                }
                                continue;
                            }
                        }
                        if let Err(e) =
                            retry_or_fail(e, &mut retries, dnc.max_retries, &mut log, resumed)
                        {
                            break Err(e);
                        }
                    }
                }
            };
            if let Some(s) = shared {
                s.pool.release(charged);
            }
            run?
        }
    };
    let (sups, mut stats) = out;
    stats.failovers += failed_over;
    stats.ranks_lost += failed_over;
    stats.recovery.events.extend(log);
    Ok(((sups, stats), retries))
}

/// Builds the per-subset fault injectors. The `Arc` is created once per
/// subset and reused across that subset's retries, so one-shot faults fire
/// exactly once per run, not once per attempt — the same latch-sharing
/// contract the supervisor uses.
fn build_injectors(dnc: &DncConfig) -> Vec<(usize, Arc<FaultInjector>)> {
    dnc.fault_plans
        .iter()
        .map(|(id, plan)| (*id, Arc::new(FaultInjector::new(plan.clone()))))
        .collect()
}

/// Loads (or initializes) the progress record and validates it against
/// this run's scalar, network, and partition.
fn load_progress<S: EfmScalar>(
    dnc: &DncConfig,
    fingerprint: u64,
    qsub: u32,
) -> Result<DncCheckpoint, EfmError> {
    let fresh = DncCheckpoint::new(S::CHECKPOINT_TAG, fingerprint, qsub);
    let Some(cfg) = &dnc.checkpoint else { return Ok(fresh) };
    if !dnc.resume || !cfg.path.exists() {
        return Ok(fresh);
    }
    let ck = DncCheckpoint::load(&cfg.path)?;
    if ck.scalar_tag != S::CHECKPOINT_TAG {
        return Err(EfmError::Checkpoint(format!(
            "progress record was written by scalar '{}', this run uses '{}'",
            ck.scalar_tag,
            S::CHECKPOINT_TAG
        )));
    }
    if ck.fingerprint != fingerprint || ck.qsub != qsub {
        return Err(EfmError::Checkpoint(
            "progress record belongs to a different network or partition".to_string(),
        ));
    }
    Ok(ck)
}

/// A finished subset as the scheduler tracks it before final assembly.
type SlotResult = (SubsetReport, Vec<Vec<usize>>);

/// Records subset completion: fills the result slot and, when configured,
/// atomically rewrites the progress record. One lock covers both so the
/// on-disk record never misses a filled slot.
struct ProgressSink<'a> {
    slots: Mutex<(Vec<Option<SlotResult>>, DncCheckpoint)>,
    checkpoint: Option<&'a crate::checkpoint::CheckpointConfig>,
    /// With `EfmOptions::spill_budget` set, completed stripes move into
    /// this compressed, disk-spillable store instead of sitting in their
    /// slot uncompressed; the slot then carries an empty support list and
    /// assembly streams the stripe back out.
    store: Option<Mutex<crate::stripes::StripeStore>>,
}

impl ProgressSink<'_> {
    fn new<'a>(
        subsets: usize,
        progress: DncCheckpoint,
        dnc: &'a DncConfig,
        opts: &EfmOptions,
    ) -> ProgressSink<'a> {
        ProgressSink {
            slots: Mutex::new((vec![None; subsets], progress)),
            checkpoint: dnc.checkpoint.as_ref(),
            store: opts
                .spill_budget
                .map(|b| Mutex::new(crate::stripes::StripeStore::new(subsets, b))),
        }
    }

    fn complete(
        &self,
        id: usize,
        mut report: SubsetReport,
        sups: Vec<Vec<usize>>,
    ) -> Result<(), EfmError> {
        let sups = match &self.store {
            Some(store) => {
                let mut st = store.lock().unwrap();
                let spilled_before = st.spill_bytes();
                st.put(id, &sups)?;
                report.stats.spill_bytes += st.spill_bytes() - spilled_before;
                // The progress record still needs the uncompressed list; it
                // is written out (or dropped) inside this call either way.
                if self.checkpoint.is_some() {
                    sups
                } else {
                    Vec::new()
                }
            }
            None => sups,
        };
        let mut g = self.slots.lock().unwrap();
        g.1.record(DncSubsetResult {
            id,
            skipped_empty: report.skipped_empty,
            supports: sups.clone(),
            stats: report.stats.clone(),
        });
        let stored = self.store.is_some();
        g.0[id] = Some((report, if stored { Vec::new() } else { sups }));
        if let Some(cfg) = self.checkpoint {
            g.1.save(&cfg.path)?;
        }
        Ok(())
    }

    /// Tears the sink down into its slots and (optional) stripe store.
    fn into_parts(self) -> (Vec<Option<SlotResult>>, Option<crate::stripes::StripeStore>) {
        (self.slots.into_inner().unwrap().0, self.store.map(|s| s.into_inner().unwrap()))
    }
}

/// Entry point: resolves the partition and runs all `2^qsub` subsets under
/// `dnc`, returning `(all supports in reduced indices, reports in
/// subset-id order)` — the same contract as the legacy serial loop, for
/// every schedule.
pub(crate) fn run_partition<P: BitPattern, S: EfmScalar>(
    net: &efm_metnet::MetabolicNetwork,
    red: &efm_metnet::ReducedNetwork,
    partition_names: &[&str],
    opts: &EfmOptions,
    backend: &Backend,
    dnc: &DncConfig,
) -> Result<(Vec<Vec<usize>>, Vec<SubsetReport>), EfmError> {
    let partition = resolve_partition(net, red, partition_names)?;
    let qsub = partition.reduced_indices.len();
    let subsets = 1usize << qsub;
    let fingerprint = dnc_fingerprint(red, &partition.reduced_indices);
    let progress = load_progress::<S>(dnc, fingerprint, qsub as u32)?;
    let injectors = build_injectors(dnc);

    let (results, mut store) = match dnc.schedule {
        DncSchedule::Serial => {
            serial_schedule::<P, S>(red, &partition, opts, backend, dnc, progress, &injectors)?
        }
        DncSchedule::Static | DncSchedule::Steal => {
            concurrent_schedule::<P, S>(red, &partition, opts, backend, dnc, progress, &injectors)?
        }
    };

    // Assembly in subset-id order, regardless of completion order: both
    // the concatenated support list and the report vector are identical
    // across schedules. With a stripe store active, completed stripes
    // stream back out of it (decompressed, possibly from disk) one subset
    // at a time; slots not in the store (resumed subsets) stay inline.
    let mut all = Vec::new();
    let mut reports = Vec::with_capacity(subsets);
    let mut times = Vec::new();
    for (id, slot) in results.into_iter().enumerate() {
        let (rep, sups) = slot.expect("every subset slot filled on success");
        let sups = match store.as_mut().map(|st| st.take(id)).transpose()? {
            Some(Some(stored)) => stored,
            _ => sups,
        };
        if !rep.skipped_empty {
            times.push(rep.stats.total_time.as_secs_f64());
        }
        all.extend(sups);
        reports.push(rep);
    }
    if !times.is_empty() {
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean > 0.0 {
            efm_obs::gauge_set("dnc imbalance x1000", (max / mean * 1000.0) as u64);
        }
    }
    Ok((all, reports))
}

/// The paper's sequential loop (bit-identical to the pre-scheduler
/// behaviour when no checkpoint/faults are configured), with resume-skip
/// and per-subset retry hooks.
fn serial_schedule<P: BitPattern, S: EfmScalar>(
    red: &efm_metnet::ReducedNetwork,
    partition: &Partition,
    opts: &EfmOptions,
    backend: &Backend,
    dnc: &DncConfig,
    progress: DncCheckpoint,
    injectors: &[(usize, Arc<FaultInjector>)],
) -> Result<(Vec<Option<SlotResult>>, Option<crate::stripes::StripeStore>), EfmError> {
    let subsets = 1usize << partition.reduced_indices.len();
    let sink = ProgressSink::new(subsets, progress, dnc, opts);
    for id in 0..subsets {
        let pattern = subset_pattern(partition, id);
        if let Some(prev) = resume_slot(&sink, id, &pattern) {
            sink.slots.lock().unwrap().0[id] = Some(prev);
            continue;
        }
        let _span = if efm_obs::enabled() {
            efm_obs::span_dyn(format!("subset {id}: {pattern}"))
        } else {
            efm_obs::Span::off()
        };
        if efm_obs::progress::progress_enabled() {
            efm_obs::progress::set_progress_context(Some(format!("subset {id}")));
        }
        let probe = probe_subset::<S>(red, partition, id, opts)?;
        let (report, sups) = match probe.problem {
            None => (empty_report(id, pattern), Vec::new()),
            Some(problem) => {
                let injector = injectors.iter().find(|(s, _)| *s == id).map(|(_, i)| i.clone());
                let ((sups, stats), retries) =
                    execute_subset::<P, S>(&problem, opts, backend, dnc, injector, None)?;
                (
                    SubsetReport {
                        id,
                        pattern,
                        efm_count: sups.len(),
                        skipped_empty: false,
                        retries,
                        stats,
                    },
                    sups,
                )
            }
        };
        sink.complete(id, report, sups)?;
    }
    Ok(sink.into_parts())
}

/// The concurrent schedules: probe, deal longest-first, run on a scoped
/// worker pool (with stealing and straggler growth under
/// [`DncSchedule::Steal`]).
fn concurrent_schedule<P: BitPattern, S: EfmScalar>(
    red: &efm_metnet::ReducedNetwork,
    partition: &Partition,
    opts: &EfmOptions,
    backend: &Backend,
    dnc: &DncConfig,
    progress: DncCheckpoint,
    injectors: &[(usize, Arc<FaultInjector>)],
) -> Result<(Vec<Option<SlotResult>>, Option<crate::stripes::StripeStore>), EfmError> {
    let subsets = 1usize << partition.reduced_indices.len();

    // --- Probe: build every subproblem, estimate costs, pre-fill the
    // slots of empty and already-completed subsets.
    let probes: Vec<Probe<S>> = {
        let _span = efm_obs::span("dnc probe");
        (0..subsets)
            .map(|id| probe_subset::<S>(red, partition, id, opts))
            .collect::<Result<Vec<_>, EfmError>>()?
    };
    let costs: Vec<u64> = probes.iter().map(|p| p.cost).collect();
    let sink = ProgressSink::new(subsets, progress, dnc, opts);
    let mut runnable: Vec<usize> = Vec::new();
    for (id, probe) in probes.iter().enumerate() {
        if let Some(prev) = resume_slot(&sink, id, &probe.pattern) {
            sink.slots.lock().unwrap().0[id] = Some(prev);
        } else if probe.problem.is_none() {
            sink.complete(id, empty_report(id, probe.pattern.clone()), Vec::new())?;
        } else {
            runnable.push(id);
        }
    }
    efm_obs::counter_add("dnc subsets probed", subsets as u64);

    // --- Order + deal: longest-first round-robin (LPT).
    runnable.sort_by_key(|&id| std::cmp::Reverse(costs[id]));
    let workers = match dnc.workers {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(runnable.len().max(1));
    let cluster_nodes = match backend {
        Backend::Cluster(cfg) => cfg.nodes,
        _ => 0,
    };
    let shared = Shared {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        remaining: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        spare: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        pool: NodePool::new(cluster_nodes),
        steal: dnc.schedule == DncSchedule::Steal,
    };
    for (i, &id) in runnable.iter().enumerate() {
        shared.deques[i % workers].lock().unwrap().push_back(id);
        shared.remaining[i % workers].fetch_add(costs[id], Ordering::Relaxed);
    }

    // --- Run. First error wins; siblings drain and exit.
    let first_error: Mutex<Option<EfmError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let probes = &probes;
            let costs = &costs;
            let sink = &sink;
            let first_error = &first_error;
            scope.spawn(move || {
                let _wspan = if efm_obs::enabled() {
                    efm_obs::span_dyn(format!("dnc worker {w}"))
                } else {
                    efm_obs::Span::off()
                };
                while !shared.abort.load(Ordering::Relaxed) {
                    let Some(id) = shared.next_task(w, costs) else { break };
                    let probe = &probes[id];
                    let _span = if efm_obs::enabled() {
                        efm_obs::span_dyn(format!("subset {id}: {}", probe.pattern))
                    } else {
                        efm_obs::Span::off()
                    };
                    if efm_obs::progress::progress_enabled() {
                        efm_obs::progress::set_progress_context(Some(format!("subset {id}")));
                    }
                    let problem = probe.problem.as_ref().expect("runnable ⇒ probed non-empty");
                    let injector = injectors.iter().find(|(s, _)| *s == id).map(|(_, i)| i.clone());
                    let done =
                        execute_subset::<P, S>(problem, opts, backend, dnc, injector, Some(shared))
                            .and_then(|((sups, stats), retries)| {
                                let report = SubsetReport {
                                    id,
                                    pattern: probe.pattern.clone(),
                                    efm_count: sups.len(),
                                    skipped_empty: false,
                                    retries,
                                    stats,
                                };
                                sink.complete(id, report, sups)
                            });
                    if let Err(e) = done {
                        shared.abort.store(true, Ordering::Relaxed);
                        first_error.lock().unwrap().get_or_insert(e);
                        break;
                    }
                }
                shared.spare.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    if let Some(e) = first_error.into_inner().unwrap() {
        return Err(e);
    }
    Ok(sink.into_parts())
}

/// Report for a probed-empty subset.
fn empty_report(id: usize, pattern: String) -> SubsetReport {
    SubsetReport {
        id,
        pattern,
        efm_count: 0,
        skipped_empty: true,
        retries: 0,
        stats: RunStats::default(),
    }
}

/// A completed subset carried over from a resumed progress record, if any.
fn resume_slot(sink: &ProgressSink<'_>, id: usize, pattern: &str) -> Option<SlotResult> {
    let g = sink.slots.lock().unwrap();
    let i = g.1.done.binary_search_by_key(&id, |s| s.id).ok()?;
    let prev = &g.1.done[i];
    efm_obs::counter_add("dnc subsets resumed", 1);
    Some((
        SubsetReport {
            id,
            pattern: pattern.to_string(),
            efm_count: prev.supports.len(),
            skipped_empty: prev.skipped_empty,
            retries: 0,
            stats: prev.stats.clone(),
        },
        prev.supports.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parses_cli_spellings() {
        assert_eq!(DncSchedule::parse("serial"), Some(DncSchedule::Serial));
        assert_eq!(DncSchedule::parse("static"), Some(DncSchedule::Static));
        assert_eq!(DncSchedule::parse("steal"), Some(DncSchedule::Steal));
        assert_eq!(DncSchedule::parse("adaptive"), None);
        for s in [DncSchedule::Serial, DncSchedule::Static, DncSchedule::Steal] {
            assert_eq!(DncSchedule::parse(&s.to_string()), Some(s));
        }
    }

    #[test]
    fn steal_takes_cheapest_task_of_busiest_worker() {
        let costs = vec![100, 50, 40, 10];
        let shared = Shared {
            deques: vec![
                Mutex::new(VecDeque::new()),
                Mutex::new(VecDeque::from([0, 2])), // 140 remaining
                Mutex::new(VecDeque::from([1, 3])), // 60 remaining
            ],
            remaining: vec![AtomicU64::new(0), AtomicU64::new(140), AtomicU64::new(60)],
            spare: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            pool: NodePool::new(0),
            steal: true,
        };
        // Worker 0 is idle: it must steal from worker 1 (busiest), and
        // from the *back* (subset 2, the cheaper of worker 1's tasks).
        assert_eq!(shared.next_task(0, &costs), Some(2));
        assert_eq!(shared.remaining[1].load(Ordering::Relaxed), 100);
        // Next steal: worker 1 still busiest (100 > 60) — takes subset 0.
        assert_eq!(shared.next_task(0, &costs), Some(0));
        // Then worker 2's back task, then its front, then nothing.
        assert_eq!(shared.next_task(0, &costs), Some(3));
        assert_eq!(shared.next_task(0, &costs), Some(1));
        assert_eq!(shared.next_task(0, &costs), None);
    }

    #[test]
    fn static_schedule_never_steals() {
        let costs = vec![7];
        let shared = Shared {
            deques: vec![Mutex::new(VecDeque::new()), Mutex::new(VecDeque::from([0]))],
            remaining: vec![AtomicU64::new(0), AtomicU64::new(7)],
            spare: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            pool: NodePool::new(0),
            steal: false,
        };
        assert_eq!(shared.next_task(0, &costs), None);
        assert_eq!(shared.next_task(1, &costs), Some(0));
    }

    #[test]
    fn node_pool_carves_grows_and_releases() {
        let pool = NodePool::new(8);
        let (g1, c1) = pool.acquire(4);
        assert_eq!((g1, c1), (4, 4));
        let (g2, c2) = pool.acquire(4);
        assert_eq!((g2, c2), (4, 4));
        // Pool exhausted: a third subset still gets a 1-rank group.
        let (g3, c3) = pool.acquire(4);
        assert_eq!((g3, c3), (1, 0));
        assert_eq!(pool.try_grow(2), 0);
        pool.release(c1);
        // A straggler absorbs the freed nodes, bounded by its cap.
        assert_eq!(pool.try_grow(3), 3);
        pool.release(c2 + 3);
        pool.release(c3);
        assert_eq!(*pool.free.lock().unwrap(), 8);
    }

    #[test]
    fn retry_budget_is_per_subset_and_class_aware() {
        let mut log = Vec::new();
        let mut retries = 0;
        let transient = || {
            EfmError::Cluster(efm_cluster::ClusterError::Timeout {
                rank: 0,
                phase: "barrier".into(),
            })
        };
        assert!(retry_or_fail(transient(), &mut retries, 2, &mut log, None).is_ok());
        assert!(retry_or_fail(transient(), &mut retries, 2, &mut log, Some(4)).is_ok());
        // Budget exhausted: the third transient failure propagates.
        assert!(retry_or_fail(transient(), &mut retries, 2, &mut log, None).is_err());
        assert_eq!(retries, 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].resumed_from, Some(4));
        assert!(log.iter().all(|e| e.action == RecoveryAction::Restarted));
        // Fatal failures are never retried, budget or not.
        let mut retries2 = 0;
        let fatal = EfmError::UnknownReaction("r".into());
        assert!(retry_or_fail(fatal, &mut retries2, 2, &mut Vec::new(), None).is_err());
        assert_eq!(retries2, 0);
    }

    #[test]
    fn survivor_weights_drop_the_dead_rank() {
        // Uniform prior: the survivors inherit equal shares.
        assert_eq!(survivor_weights(&[1, 1, 1, 1], 2), vec![1, 1, 1]);
        // Weighted prior: the other entries keep their proportions.
        assert_eq!(survivor_weights(&[3, 1, 2, 2], 0), vec![1, 2, 2]);
        assert_eq!(survivor_weights(&[3, 1, 2, 2], 3), vec![3, 1, 2]);
        // Zero weights are clamped so no survivor gets an empty stripe
        // forever.
        assert_eq!(survivor_weights(&[0, 5, 0], 1), vec![1, 1]);
    }
}
