//! Persisting computed EFM sets.
//!
//! Two formats:
//!
//! * **text** — one mode per line, reaction names separated by spaces
//!   (human-greppable; what the paper's tool printed);
//! * **packed** — a compact binary layout (`EFMS` magic, u32 header,
//!   reaction-name table, then the raw support words), appropriate for the
//!   tens of millions of modes of the paper's Table IV.

use crate::types::EfmSet;
use std::io::{self, BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"EFMS";
const VERSION: u32 = 1;

/// Writes a mode-per-line text listing.
pub fn write_text<W: Write>(efms: &EfmSet, mut w: W) -> io::Result<()> {
    let names = efms.reaction_names();
    for i in 0..efms.len() {
        let line: Vec<&str> = efms.support(i).into_iter().map(|r| names[r].as_str()).collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Reads a mode-per-line text listing produced by [`write_text`]; the
/// universe (reaction names) must be supplied because the text format does
/// not embed unused reactions.
pub fn read_text<R: BufRead>(reaction_names: Vec<String>, r: R) -> io::Result<EfmSet> {
    let index: std::collections::HashMap<&str, usize> =
        reaction_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut sups: Vec<Vec<usize>> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut sup = Vec::new();
        for tok in line.split_whitespace() {
            let Some(&i) = index.get(tok) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown reaction {tok}"),
                ));
            };
            sup.push(i);
        }
        sups.push(sup);
    }
    let mut set = EfmSet::new(reaction_names);
    for s in &sups {
        set.push_support(s);
    }
    Ok(set)
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes the packed binary format.
pub fn write_packed<W: Write>(efms: &EfmSet, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;
    put_u32(&mut w, efms.num_reactions() as u32)?;
    put_u32(&mut w, efms.len() as u32)?;
    for name in efms.reaction_names() {
        put_u32(&mut w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
    }
    for word in efms.raw_words() {
        w.write_all(&word.to_le_bytes())?;
    }
    Ok(())
}

/// Reads the packed binary format.
pub fn read_packed<R: Read>(mut r: R) -> io::Result<EfmSet> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an EFMS file"));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported EFMS version {version}"),
        ));
    }
    let nreactions = get_u32(&mut r)? as usize;
    let nmodes = get_u32(&mut r)? as usize;
    let mut names = Vec::with_capacity(nreactions);
    for _ in 0..nreactions {
        let len = get_u32(&mut r)? as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        names.push(
            String::from_utf8(buf).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 reaction name")
            })?,
        );
    }
    let words_per_mode = nreactions.div_ceil(64).max(1);
    let mut words = vec![0u64; nmodes * words_per_mode];
    for w in words.iter_mut() {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        *w = u64::from_le_bytes(b);
    }
    EfmSet::from_raw_words(names, words).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate, EfmOptions};
    use efm_metnet::examples::toy_network;

    fn toy_set() -> (EfmSet, Vec<String>) {
        let net = toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        (out.efms, net.reaction_names())
    }

    #[test]
    fn text_roundtrip() {
        let (efms, names) = toy_set();
        let mut buf = Vec::new();
        write_text(&efms, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 8);
        let back = read_text(names, &buf[..]).unwrap();
        assert_eq!(back, efms);
    }

    #[test]
    fn packed_roundtrip() {
        let (efms, _) = toy_set();
        let mut buf = Vec::new();
        write_packed(&efms, &mut buf).unwrap();
        let back = read_packed(&buf[..]).unwrap();
        assert_eq!(back, efms);
        assert_eq!(back.reaction_names(), efms.reaction_names());
    }

    #[test]
    fn packed_detects_corruption() {
        let (efms, _) = toy_set();
        let mut buf = Vec::new();
        write_packed(&efms, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_packed(&buf[..]).is_err());
        let mut buf2 = Vec::new();
        write_packed(&efms, &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 3);
        assert!(read_packed(&buf2[..]).is_err());
    }

    #[test]
    fn text_rejects_unknown_reaction() {
        let (_, names) = toy_set();
        let err = read_text(names, "r1 bogus\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn packed_is_compact() {
        let (efms, _) = toy_set();
        let mut buf = Vec::new();
        write_packed(&efms, &mut buf).unwrap();
        // Header + names + 8 modes × 2 words (9 reactions → 1 word... cap 64).
        assert!(buf.len() < 400, "packed size {} too large", buf.len());
    }
}
