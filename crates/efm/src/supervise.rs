//! Self-healing cluster supervision: run, detect, classify, recover.
//!
//! The paper assumes every node survives the whole run. PR 2's abort-safe
//! runtime reports failures promptly; this module makes the run *survive*
//! them. [`enumerate_supervised`] launches the cluster engine under a
//! watchdog (every blocking primitive carries a deadline from
//! [`ClusterTimeouts`](efm_cluster::ClusterTimeouts), so a dead rank
//! surfaces as a typed error instead of a hang), classifies each failure,
//! and acts:
//!
//! * **retryable** (injected crash, timeout, lost message, failed send,
//!   node panic, secondary abort) — restart from the newest valid
//!   [`EngineCheckpoint`], bounded by a restart budget; at most one
//!   iteration of work is lost per restart;
//! * **memory** — a restart would hit the same wall, so the failure is
//!   rerouted to [`enumerate_with_escalation_scalar`]: the run deepens the
//!   `2^qsub` divide-and-conquer ladder instead (the paper's Network II
//!   recovery, automated);
//! * **fatal** (protocol bugs, bad partitions, mode limits) — surfaced
//!   immediately; no restart can fix a broken program.
//!
//! Every observed fault and action is recorded in a [`RecoveryLog`] that
//! lands in [`RunStats::recovery`] on success and inside
//! [`EfmError::RestartsExhausted`] when the budget runs out.
//!
//! Deterministic chaos: a seeded [`FaultPlan`] installs a shared
//! [`FaultInjector`](efm_cluster::FaultInjector) that persists across
//! restarts, so one-shot faults (a crash planted at iteration k) fire once
//! per *supervised session*, not once per attempt — exactly the behaviour
//! of a real node that dies once and is replaced.

use crate::api::{enumerate_resumable_with_scalar, EfmOutcome};
use crate::bridge::EfmScalar;
use crate::checkpoint::{CheckpointConfig, EngineCheckpoint};
use crate::divide::Backend;
use crate::escalate::enumerate_with_escalation_scheduled_scalar;
use crate::schedule::{survivor_weights, DncConfig};
use crate::types::{
    EfmError, EfmOptions, FailureClass, RecoveryAction, RecoveryEvent, RecoveryLog,
};
use efm_cluster::{ClusterConfig, ClusterError, FaultInjector, FaultPlan};
use efm_metnet::MetabolicNetwork;
use efm_numeric::DynInt;
use std::sync::Arc;

/// Supervision policy: restart budget, checkpoint location, escalation
/// depth, and the (optional) fault plan for reproducible chaos runs.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Maximum restarts before giving up with
    /// [`EfmError::RestartsExhausted`]. Checkpoint discards count toward
    /// the budget so a persistently bad checkpoint cannot loop forever.
    pub max_restarts: u32,
    /// Where iteration-boundary snapshots are written and resumed from.
    pub checkpoint: CheckpointConfig,
    /// Escalation ladder depth for memory failures (`0` disables
    /// escalation — memory errors then exhaust the supervisor).
    pub max_qsub: usize,
    /// Deterministic faults to inject (chaos testing). `None` supervises a
    /// fault-free run.
    pub fault_plan: Option<FaultPlan>,
    /// Subset-scheduler configuration for escalated divide-and-conquer
    /// runs (schedule, workers, segmenting). Its `max_retries` is
    /// overridden by [`SuperviseConfig::max_restarts`], making the restart
    /// budget *per subset* once the run escalates — one crashing subset is
    /// retried alone instead of restarting every sibling.
    pub dnc: DncConfig,
    /// Where crash postmortem bundles are written. Every recovery action
    /// (restart, failover, escalation, checkpoint discard) and every
    /// terminal failure dumps a self-contained bundle — trace tail,
    /// metrics/histograms, recovery log, checkpoint fingerprint — so a
    /// failed or degraded run can be diagnosed after the fact. `None`
    /// disables the flight recorder.
    pub postmortem_dir: Option<std::path::PathBuf>,
}

impl SuperviseConfig {
    /// A default policy: 3 restarts, checkpoint after every iteration at
    /// `path`, escalation up to `qsub = 4`, no injected faults.
    pub fn new(checkpoint_path: impl Into<std::path::PathBuf>) -> Self {
        SuperviseConfig {
            max_restarts: 3,
            // Lazy: shed a snapshot while the previous write is in
            // flight, trading a slightly staler resume point for bounded
            // checkpoint overhead on fault-free runs.
            checkpoint: CheckpointConfig::new(checkpoint_path).lazy(true),
            max_qsub: 4,
            fault_plan: None,
            dnc: DncConfig::default(),
            postmortem_dir: None,
        }
    }

    /// Sets the restart budget.
    pub fn max_restarts(mut self, n: u32) -> Self {
        self.max_restarts = n;
        self
    }

    /// Sets the escalation ladder depth for memory failures.
    pub fn max_qsub(mut self, q: usize) -> Self {
        self.max_qsub = q;
        self
    }

    /// Installs a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the subset-scheduler configuration used by escalated
    /// divide-and-conquer runs.
    pub fn with_dnc(mut self, dnc: DncConfig) -> Self {
        self.dnc = dnc;
        self
    }

    /// Enables the flight recorder: postmortem bundles land under `dir`.
    pub fn with_postmortem_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.postmortem_dir = Some(dir.into());
        self
    }
}

/// Dumps a postmortem bundle for one supervision event. Best-effort: a
/// bundle that cannot be written must never turn a recoverable fault into
/// a fatal one, so I/O errors are swallowed (noted on stderr).
fn postmortem(sup: &SuperviseConfig, tag: &str, reason: &str, log: &RecoveryLog) {
    let Some(dir) = &sup.postmortem_dir else { return };
    let mut extra: Vec<(&str, String)> = vec![("recovery.txt", log.to_string())];
    extra.push(("checkpoint.txt", checkpoint_fingerprint(&sup.checkpoint.path)));
    match efm_obs::postmortem::write_bundle(dir, tag, reason, &extra) {
        Ok(path) => eprintln!("[postmortem] bundle written to {}", path.display()),
        Err(e) => eprintln!("[postmortem] failed to write bundle: {e}"),
    }
}

/// Identifies the checkpoint a recovery would resume from: path, byte
/// length, and CRC-32 of the contents — enough to tell two bundles apart
/// and to match a bundle to the on-disk file it describes.
fn checkpoint_fingerprint(path: &std::path::Path) -> String {
    match std::fs::read(path) {
        Ok(bytes) => format!(
            "path: {}\nlen: {}\ncrc32: {:08x}\n",
            path.display(),
            bytes.len(),
            efm_cluster::crc::crc32(&bytes)
        ),
        Err(e) => format!("path: {}\nunreadable: {e}\n", path.display()),
    }
}

/// Classifies a failed enumeration for the recovery state machine.
pub fn classify_failure(e: &EfmError) -> FailureClass {
    match e {
        EfmError::Cluster(ce) if ce.is_memory_exceeded() => FailureClass::Memory,
        // A heartbeat-detected rank death: the survivors are intact, so
        // the recovery is in-place failover, not a restart.
        EfmError::Cluster(ClusterError::RankLost { .. }) => FailureClass::RankLost,
        EfmError::Cluster(ce) if ce.is_retryable() => FailureClass::Retryable,
        // An unreadable or mismatched checkpoint is recoverable by
        // discarding it and restarting fresh.
        EfmError::Checkpoint(_) => FailureClass::Retryable,
        _ => FailureClass::Fatal,
    }
}

/// Supervised cluster enumeration with exact integer arithmetic.
pub fn enumerate_supervised(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    cluster: &ClusterConfig,
    sup: &SuperviseConfig,
) -> Result<EfmOutcome, EfmError> {
    enumerate_supervised_with_scalar::<DynInt>(net, opts, cluster, sup)
}

/// Supervised cluster enumeration, generic over the scalar. See the module
/// docs for the recovery state machine.
pub fn enumerate_supervised_with_scalar<S: EfmScalar>(
    net: &MetabolicNetwork,
    opts: &EfmOptions,
    cluster: &ClusterConfig,
    sup: &SuperviseConfig,
) -> Result<EfmOutcome, EfmError> {
    // One injector for the whole session: point faults fire once across
    // restarts (the `Arc` carries the one-shot latches through every
    // attempt's ClusterConfig).
    let injector: Option<Arc<FaultInjector>> =
        sup.fault_plan.clone().map(|p| Arc::new(FaultInjector::new(p)));

    let mut log = RecoveryLog::default();
    let mut restarts: u32 = 0;
    let mut attempt: u32 = 0;
    // Live membership: a failover shrinks `nodes` and re-stripes the
    // survivors via `run_opts.stripe_weights`; every later attempt
    // (including plain restarts) runs on the degraded group.
    let mut nodes = cluster.nodes;
    let mut run_opts = opts.clone();
    let mut failovers: u32 = 0;
    let mut ranks_lost: u32 = 0;
    loop {
        attempt += 1;
        // The backend is rebuilt per attempt: failover changes the rank
        // count, so the config cannot be fixed up front.
        let mut cfg = cluster.clone();
        cfg.nodes = nodes;
        if let Some(inj) = &injector {
            cfg = cfg.with_injector(Arc::clone(inj));
        }
        let backend = Backend::Cluster(cfg);
        // Newest valid checkpoint, if any. An unreadable file is discarded
        // here (logged); a structurally mismatched one is rejected by the
        // engine below and discarded on the Checkpoint error path.
        let resume = load_checkpoint(&sup.checkpoint, attempt, &mut log)?;
        let resume_iter = resume.as_ref().map(|ck| ck.iterations_completed());
        let result = enumerate_resumable_with_scalar::<S>(
            net,
            &run_opts,
            &backend,
            resume.as_ref(),
            Some(&sup.checkpoint),
        );
        let err = match result {
            Ok(mut out) => {
                out.stats.recovery = log;
                out.stats.failovers += failovers;
                out.stats.ranks_lost += ranks_lost;
                return Ok(out);
            }
            Err(e) => e,
        };
        match classify_failure(&err) {
            FailureClass::Fatal => {
                postmortem(sup, "fatal", &err.to_string(), &log);
                return Err(err);
            }
            FailureClass::Memory => {
                // A restart replays into the same wall; deepen the
                // divide-and-conquer ladder instead. The subproblems are
                // different enumerations, so the checkpoint does not apply.
                if efm_obs::enabled() {
                    efm_obs::instant_dyn(format!("supervisor: escalate after {err}"));
                }
                log.events.push(RecoveryEvent {
                    at_us: efm_obs::now_us(),
                    attempt,
                    error: err.to_string(),
                    class: FailureClass::Memory,
                    action: RecoveryAction::Escalated,
                    resumed_from: None,
                });
                postmortem(sup, "escalate", &err.to_string(), &log);
                if sup.max_qsub == 0 {
                    log.events.push(give_up(attempt, &err));
                    postmortem(sup, "gave-up", &err.to_string(), &log);
                    return Err(exhausted(sup.max_restarts, err, log));
                }
                // The restart budget becomes per-subset: a crashed subset
                // is retried alone, up to `max_restarts` times, without
                // disturbing its siblings.
                let dnc = DncConfig { max_retries: sup.max_restarts, ..sup.dnc.clone() };
                return match enumerate_with_escalation_scheduled_scalar::<S>(
                    net,
                    &run_opts,
                    &backend,
                    sup.max_qsub,
                    &dnc,
                ) {
                    Ok(esc) => {
                        let mut out = esc.outcome;
                        out.stats.recovery = log;
                        out.stats.failovers += failovers;
                        out.stats.ranks_lost += ranks_lost;
                        Ok(out)
                    }
                    Err(e) => {
                        log.events.push(give_up(attempt, &e));
                        postmortem(sup, "gave-up", &e.to_string(), &log);
                        Err(exhausted(sup.max_restarts, e, log))
                    }
                };
            }
            FailureClass::RankLost => {
                let dead = match &err {
                    EfmError::Cluster(ClusterError::RankLost { rank, .. }) => *rank,
                    // classify_failure only returns RankLost for that
                    // variant; an impossible index below forces the
                    // restart fallback rather than a bad reassignment.
                    _ => usize::MAX,
                };
                if nodes <= 1 || dead == 0 || dead >= nodes {
                    // Cannot degrade further, or the loss is not a clean
                    // non-coordinator death: fall back to the restart
                    // ladder, burning budget like any retryable fault.
                    restarts += 1;
                    if restarts > sup.max_restarts {
                        log.events.push(give_up(attempt, &err));
                        postmortem(sup, "gave-up", &err.to_string(), &log);
                        return Err(exhausted(sup.max_restarts, err, log));
                    }
                    if efm_obs::enabled() {
                        efm_obs::instant_dyn(format!("supervisor: restart after {err}"));
                    }
                    log.events.push(RecoveryEvent {
                        at_us: efm_obs::now_us(),
                        attempt,
                        error: err.to_string(),
                        class: FailureClass::RankLost,
                        action: RecoveryAction::Restarted,
                        resumed_from: resume_iter,
                    });
                    postmortem(sup, "restart", &err.to_string(), &log);
                    continue;
                }
                // In-place failover: re-enter at the current boundary with
                // N−1 ranks, the dead rank's stripe redistributed across
                // survivors. Deliberately does not consume the restart
                // budget — the survivors' work is intact, nothing replays
                // beyond the current iteration.
                if efm_obs::enabled() {
                    efm_obs::instant_dyn(format!("supervisor: failover after {err}"));
                }
                log.events.push(RecoveryEvent {
                    at_us: efm_obs::now_us(),
                    attempt,
                    error: err.to_string(),
                    class: FailureClass::RankLost,
                    action: RecoveryAction::FailedOver,
                    resumed_from: resume_iter,
                });
                postmortem(sup, "failover", &err.to_string(), &log);
                // Stripe provenance: the checkpoint records the weights
                // the interrupted attempt ran with (EFCK v7); an absent or
                // pre-v7 record falls back to the weights this session is
                // tracking, and a fresh fault-free session to the uniform
                // split.
                let prior = resume
                    .as_ref()
                    .map(|ck| ck.stripe_weights.clone())
                    .filter(|w| w.len() == nodes)
                    .or_else(|| run_opts.stripe_weights.clone().filter(|w| w.len() == nodes))
                    .unwrap_or_else(|| vec![1; nodes]);
                run_opts.stripe_weights = Some(survivor_weights(&prior, dead));
                nodes -= 1;
                failovers += 1;
                ranks_lost += 1;
                efm_obs::counter_add("failovers", 1);
                efm_obs::counter_add("ranks lost", 1);
            }
            FailureClass::Retryable => {
                let discard = matches!(err, EfmError::Checkpoint(_));
                restarts += 1;
                if restarts > sup.max_restarts {
                    log.events.push(give_up(attempt, &err));
                    postmortem(sup, "gave-up", &err.to_string(), &log);
                    return Err(exhausted(sup.max_restarts, err, log));
                }
                if discard {
                    // The checkpoint itself is the problem (stale network,
                    // different scalar/ordering): remove it and start over.
                    let _ = std::fs::remove_file(&sup.checkpoint.path);
                    log.events.push(RecoveryEvent {
                        at_us: efm_obs::now_us(),
                        attempt,
                        error: err.to_string(),
                        class: FailureClass::Retryable,
                        action: RecoveryAction::DiscardedCheckpoint,
                        resumed_from: None,
                    });
                    postmortem(sup, "discard-ckpt", &err.to_string(), &log);
                } else {
                    if efm_obs::enabled() {
                        efm_obs::instant_dyn(format!("supervisor: restart after {err}"));
                    }
                    log.events.push(RecoveryEvent {
                        at_us: efm_obs::now_us(),
                        attempt,
                        error: err.to_string(),
                        class: FailureClass::Retryable,
                        action: RecoveryAction::Restarted,
                        resumed_from: resume_iter,
                    });
                    postmortem(sup, "restart", &err.to_string(), &log);
                }
            }
        }
    }
}

/// Loads the newest checkpoint if one exists and is readable. A missing
/// file is a clean fresh start; an unreadable (truncated, corrupt) file is
/// discarded with a logged event rather than treated as fatal.
fn load_checkpoint(
    ckpt: &CheckpointConfig,
    attempt: u32,
    log: &mut RecoveryLog,
) -> Result<Option<EngineCheckpoint>, EfmError> {
    if !ckpt.path.exists() {
        return Ok(None);
    }
    match EngineCheckpoint::load(&ckpt.path) {
        Ok(ck) => Ok(Some(ck)),
        Err(e) => {
            let _ = std::fs::remove_file(&ckpt.path);
            log.events.push(RecoveryEvent {
                at_us: efm_obs::now_us(),
                attempt,
                error: e.to_string(),
                class: FailureClass::Retryable,
                action: RecoveryAction::DiscardedCheckpoint,
                resumed_from: None,
            });
            Ok(None)
        }
    }
}

fn give_up(attempt: u32, err: &EfmError) -> RecoveryEvent {
    RecoveryEvent {
        at_us: efm_obs::now_us(),
        attempt,
        error: err.to_string(),
        class: classify_failure(err),
        action: RecoveryAction::GaveUp,
        resumed_from: None,
    }
}

fn exhausted(max_restarts: u32, last: EfmError, log: RecoveryLog) -> EfmError {
    EfmError::RestartsExhausted { max_restarts, last: Box::new(last), log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_cluster::ClusterTimeouts;
    use std::time::Duration;

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("efm-supervise-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.efck")
    }

    #[test]
    fn fault_free_supervised_run_matches_direct() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("fault-free");
        let sup = SuperviseConfig::new(&path);
        let out = enumerate_supervised(&net, &opts, &ClusterConfig::new(2), &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert!(out.stats.recovery.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_mid_run_recovers_to_identical_efm_set() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("crash");
        let _ = std::fs::remove_file(&path);
        let sup = SuperviseConfig::new(&path).with_fault_plan(FaultPlan::new(11).crash(
            1,
            "communicate",
            2,
        ));
        let out = enumerate_supervised(&net, &opts, &ClusterConfig::new(3), &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert_eq!(out.stats.recovery.restarts(), 1, "{}", out.stats.recovery);
        let ev = &out.stats.recovery.events[0];
        assert_eq!(ev.class, FailureClass::Retryable);
        assert_eq!(ev.action, RecoveryAction::Restarted);
        assert!(ev.error.contains("injected crash") || ev.error.contains("crash"), "{}", ev.error);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_budget_returns_typed_error_with_log() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let path = temp_ckpt("exhaust");
        let _ = std::fs::remove_file(&path);
        // Crash at every iteration on rank 0: more faults than the budget.
        let mut plan = FaultPlan::new(12);
        for it in 0..8 {
            plan = plan.crash(0, "iteration", it);
        }
        let sup = SuperviseConfig::new(&path).max_restarts(2).with_fault_plan(plan);
        let err = enumerate_supervised(&net, &opts, &ClusterConfig::new(2), &sup).unwrap_err();
        match err {
            EfmError::RestartsExhausted { max_restarts: 2, last, log } => {
                assert!(matches!(*last, EfmError::Cluster(_)), "{last:?}");
                // 2 restarts + 1 give-up.
                assert_eq!(log.events.len(), 3, "{log}");
                assert_eq!(log.events.last().unwrap().action, RecoveryAction::GaveUp);
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_checkpoint_is_discarded_not_fatal() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let path = temp_ckpt("stale");
        // Seed the path with a checkpoint from a *different* problem by
        // running that problem supervised first (it snapshots every
        // iteration and leaves the final checkpoint behind).
        let other = efm_metnet::generator::parallel_branches(4);
        let sup_other = SuperviseConfig::new(&path);
        enumerate_supervised(&other, &opts, &ClusterConfig::new(2), &sup_other).unwrap();
        assert!(path.exists(), "checkpoint must persist after the other run");
        let direct = crate::enumerate(&net, &opts).unwrap();
        let sup = SuperviseConfig::new(&path);
        let out = enumerate_supervised(&net, &opts, &ClusterConfig::new(2), &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert!(
            out.stats
                .recovery
                .events
                .iter()
                .any(|e| e.action == RecoveryAction::DiscardedCheckpoint),
            "{}",
            out.stats.recovery
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_failure_escalates_through_supervisor() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("memory");
        let _ = std::fs::remove_file(&path);
        // Find a cap that aborts the unsplit run (same probe as escalate's
        // test), then supervise with 4x that cap and a deep ladder.
        let mut cap = None;
        for bytes in [96u64, 128, 160, 192, 256, 320, 384] {
            let cfg = ClusterConfig::new(2).with_memory_limit(bytes);
            match crate::enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Cluster(cfg)) {
                Err(EfmError::Cluster(e)) if e.is_memory_exceeded() => {
                    cap = Some(bytes);
                    break;
                }
                _ => {}
            }
        }
        let Some(cap) = cap else { panic!("no cap tripped the unsplit toy run") };
        let cluster = ClusterConfig::new(2).with_memory_limit(cap * 4);
        let sup = SuperviseConfig::new(&path).max_qsub(2);
        match enumerate_supervised(&net, &opts, &cluster, &sup) {
            Ok(out) => {
                assert_eq!(out.efms, direct.efms);
                assert!(
                    out.stats.recovery.events.iter().any(|e| e.action == RecoveryAction::Escalated),
                    "{}",
                    out.stats.recovery
                );
            }
            Err(EfmError::RestartsExhausted { last, .. }) => {
                // Even the deepest rung did not fit under the cap — still a
                // clean typed exit, never a hang.
                assert!(matches!(*last, EfmError::Cluster(_)));
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_rank_fails_over_without_restart() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("failover");
        let _ = std::fs::remove_file(&path);
        let sup = SuperviseConfig::new(&path).with_fault_plan(FaultPlan::new(21).kill_rank(
            2,
            "communicate",
            2,
        ));
        let cluster = ClusterConfig::new(3)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(5))
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let out = enumerate_supervised(&net, &opts, &cluster, &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert_eq!(out.stats.recovery.restarts(), 0, "{}", out.stats.recovery);
        assert_eq!(out.stats.failovers, 1);
        assert_eq!(out.stats.ranks_lost, 1);
        let ev = out
            .stats
            .recovery
            .events
            .iter()
            .find(|e| e.action == RecoveryAction::FailedOver)
            .expect("failover event in the log");
        assert_eq!(ev.class, FailureClass::RankLost);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_coordinator_recovers_via_restart_ladder() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("failover-rank0");
        let _ = std::fs::remove_file(&path);
        // Rank 0 owns the checkpoint writer and the result slot; its death
        // cannot be failed over and must fall back to a full restart.
        let sup = SuperviseConfig::new(&path).with_fault_plan(FaultPlan::new(22).kill_rank(
            0,
            "communicate",
            2,
        ));
        let cluster = ClusterConfig::new(3)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(5))
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let out = enumerate_supervised(&net, &opts, &cluster, &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert_eq!(out.stats.failovers, 0, "{}", out.stats.recovery);
        assert_eq!(out.stats.recovery.restarts(), 1, "{}", out.stats.recovery);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_killed_ranks_degrade_twice() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("failover-twice");
        let _ = std::fs::remove_file(&path);
        // Two separate deaths: 4 -> 3 -> 2 ranks, zero full restarts. The
        // second plan entry names the rank index in the *degraded* group.
        let sup = SuperviseConfig::new(&path).with_fault_plan(
            FaultPlan::new(23).kill_rank(3, "generate", 1).kill_rank(1, "merge", 3),
        );
        let cluster = ClusterConfig::new(4)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(5))
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let out = enumerate_supervised(&net, &opts, &cluster, &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert_eq!(out.stats.recovery.restarts(), 0, "{}", out.stats.recovery);
        assert_eq!(out.stats.failovers, 2);
        assert_eq!(out.stats.ranks_lost, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_rank_without_failover_restarts() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("kill-no-failover");
        let _ = std::fs::remove_file(&path);
        // Without the liveness layer a kill surfaces through the abort
        // machinery as a retryable fault: the old restart behaviour.
        let sup = SuperviseConfig::new(&path).with_fault_plan(FaultPlan::new(24).kill_rank(
            1,
            "communicate",
            2,
        ));
        let cluster =
            ClusterConfig::new(3).with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let out = enumerate_supervised(&net, &opts, &cluster, &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert_eq!(out.stats.failovers, 0);
        assert_eq!(out.stats.recovery.restarts(), 1, "{}", out.stats.recovery);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn straggler_and_flaky_sends_finish_without_restart() {
        let net = efm_metnet::examples::toy_network();
        let opts = EfmOptions::default();
        let direct = crate::enumerate(&net, &opts).unwrap();
        let path = temp_ckpt("soft");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(13).straggler(1, 2).flaky_send(0, 3, 2).delay_send(1, 2, 3);
        let cluster =
            ClusterConfig::new(2).with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let sup = SuperviseConfig::new(&path).with_fault_plan(plan);
        let out = enumerate_supervised(&net, &opts, &cluster, &sup).unwrap();
        assert_eq!(out.efms, direct.efms);
        assert!(out.stats.recovery.is_empty(), "soft faults need no restart");
        let _ = std::fs::remove_file(&path);
    }
}
