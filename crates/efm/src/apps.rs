//! Applications of a computed EFM set — the analyses the paper's
//! introduction motivates ([1]–[12]) plus an automation of its future-work
//! item on partition selection.
//!
//! * [`reaction_participation`] — how often each reaction appears across
//!   modes (cell "dissection" / capability analysis, [1][2]);
//! * [`minimal_cut_sets`] — smallest reaction deletions abolishing all
//!   modes through a target (knockout design, [4]–[7]);
//! * [`mode_yields`] — product-per-substrate yield of each mode
//!   (phenotype prediction, [3]);
//! * [`suggest_partition`] — automated divide-and-conquer partition
//!   selection; the paper calls manual selection a gap ("an automated
//!   method to select the subset ... would be helpful to make the combined
//!   parallel Nullspace Algorithm a fully automated procedure").

use crate::types::EfmSet;
use efm_metnet::{MetabolicNetwork, ReducedNetwork};

/// Fraction of modes each reaction participates in, descending.
pub fn reaction_participation(efms: &EfmSet) -> Vec<(usize, f64)> {
    let n = efms.len().max(1);
    let mut counts = vec![0usize; efms.num_reactions()];
    for i in 0..efms.len() {
        for r in efms.support(i) {
            counts[r] += 1;
        }
    }
    let mut out: Vec<(usize, f64)> =
        counts.into_iter().enumerate().map(|(r, c)| (r, c as f64 / n as f64)).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

/// Minimal cut sets up to `max_size` reactions for a target reaction: every
/// mode using `target` is hit, and no proper subset of a reported cut also
/// hits them all (Berge-style expansion over the target modes).
///
/// The target itself is excluded from cuts (deleting the product exporter
/// is always a cut, and never an interesting one).
pub fn minimal_cut_sets(efms: &EfmSet, target: usize, max_size: usize) -> Vec<Vec<usize>> {
    let target_modes: Vec<Vec<usize>> = (0..efms.len())
        .filter(|&i| efms.uses(i, target))
        .map(|i| efms.support(i).into_iter().filter(|&r| r != target).collect())
        .collect();
    if target_modes.is_empty() {
        return Vec::new();
    }
    // Berge: maintain the set of minimal hitting sets of the modes seen so
    // far; extend mode by mode.
    let mut cuts: Vec<Vec<usize>> = Vec::new();
    for (k, mode) in target_modes.iter().enumerate() {
        if k == 0 {
            cuts = mode.iter().map(|&r| vec![r]).collect();
            continue;
        }
        let mut next: Vec<Vec<usize>> = Vec::new();
        for cut in &cuts {
            if cut.iter().any(|r| mode.binary_search(r).is_ok()) {
                // Already hits the new mode.
                push_if_minimal(&mut next, cut.clone());
            } else if cut.len() < max_size {
                for &r in mode {
                    let mut bigger = cut.clone();
                    bigger.push(r);
                    bigger.sort_unstable();
                    push_if_minimal(&mut next, bigger);
                }
            }
        }
        cuts = next;
        if cuts.is_empty() {
            break;
        }
    }
    cuts.retain(|c| c.len() <= max_size);
    cuts.sort_by_key(|c| (c.len(), c.clone()));
    cuts
}

fn push_if_minimal(sets: &mut Vec<Vec<usize>>, candidate: Vec<usize>) {
    // Drop if a kept set is a subset of the candidate.
    for s in sets.iter() {
        if s.iter().all(|r| candidate.binary_search(r).is_ok()) {
            return;
        }
    }
    // Remove kept sets that are supersets of the candidate.
    sets.retain(|s| !candidate.iter().all(|r| s.binary_search(r).is_ok()));
    sets.push(candidate);
}

/// Yield of each mode: product flux over substrate flux (absolute values),
/// skipping modes that do not use the substrate. Returns `(mode index,
/// yield)` sorted descending — the top entry is the maximum-yield pathway.
pub fn mode_yields(
    net: &MetabolicNetwork,
    red: &ReducedNetwork,
    efms: &EfmSet,
    substrate: usize,
    product: usize,
) -> Vec<(usize, f64)> {
    let rev = net.reversibilities();
    let mut out = Vec::new();
    for i in 0..efms.len() {
        if !efms.uses(i, substrate) || !efms.uses(i, product) {
            continue;
        }
        let sup = efms.support(i);
        let Ok(flux) = crate::recover::recover_flux(red, &rev, &sup) else {
            continue;
        };
        let s = flux[substrate].to_f64().abs();
        let p = flux[product].to_f64().abs();
        if s > 0.0 {
            out.push((i, p / s));
        }
    }
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

/// Suggests `qsub` divide-and-conquer partition reactions, automating the
/// paper's manual procedure: it used "the last reactions in the reordered
/// nullspace matrix" — the reversible rows the algorithm processes last,
/// which are exactly the rows whose pos×neg grids dominate the candidate
/// count. Returns original-network reaction names (one representative per
/// reduced reaction), most-preferred first.
pub fn suggest_partition(net: &MetabolicNetwork, red: &ReducedNetwork, qsub: usize) -> Vec<String> {
    // Build the problem once to get the paper ordering.
    let opts = crate::types::EfmOptions::default();
    let Ok(problem) = crate::problem::build_problem::<efm_numeric::DynInt>(red, &opts) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    // Walk processed rows from the bottom; keep reversible, pivotal ones.
    for &col in problem.row_order.iter().rev() {
        if names.len() == qsub {
            break;
        }
        if col >= red.num_reduced() {
            continue; // split twin
        }
        let reduced_idx = problem.col_to_reduced[col];
        if !red.reversible[reduced_idx] {
            continue;
        }
        // Representative original reaction of the reduced column.
        if let Some((orig, _)) = red.members[reduced_idx].first() {
            names.push(net.reactions[*orig].name.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate, enumerate_divide_conquer, Backend, EfmOptions};
    use efm_metnet::examples::toy_network;

    #[test]
    fn participation_sums_match() {
        let net = toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let part = reaction_participation(&out.efms);
        // r1 is used by 6 of 8 modes (all but the two Bext-import modes).
        let r1 = net.reaction_index("r1").unwrap();
        let p_r1 = part.iter().find(|(r, _)| *r == r1).unwrap().1;
        assert!((p_r1 - 6.0 / 8.0).abs() < 1e-12);
        // Every fraction is within [0, 1] and sorted descending.
        assert!(part.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(part.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn cut_sets_hit_every_producing_mode() {
        let net = toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let target = net.reaction_index("r4").unwrap();
        let cuts = minimal_cut_sets(&out.efms, target, 3);
        assert!(!cuts.is_empty());
        let producing: Vec<Vec<usize>> = (0..out.efms.len())
            .filter(|&i| out.efms.uses(i, target))
            .map(|i| out.efms.support(i))
            .collect();
        for cut in &cuts {
            for mode in &producing {
                assert!(
                    cut.iter().any(|r| mode.binary_search(r).is_ok()),
                    "cut {cut:?} misses mode {mode:?}"
                );
            }
            // Minimality: removing any reaction un-hits some mode.
            for drop in 0..cut.len() {
                let smaller: Vec<usize> =
                    cut.iter().enumerate().filter(|(k, _)| *k != drop).map(|(_, &r)| r).collect();
                let hits_all = producing
                    .iter()
                    .all(|mode| smaller.iter().any(|r| mode.binary_search(r).is_ok()));
                assert!(!hits_all, "cut {cut:?} is not minimal");
            }
        }
    }

    #[test]
    fn yields_identify_the_doubling_pathway() {
        let net = toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let substrate = net.reaction_index("r1").unwrap();
        let product = net.reaction_index("r4").unwrap();
        let yields = mode_yields(&net, &out.reduced, &out.efms, substrate, product);
        assert!(!yields.is_empty());
        // Best yield is 2 (A → B → 2P).
        assert!((yields[0].1 - 2.0).abs() < 1e-9, "max yield {}", yields[0].1);
        // All yields positive.
        assert!(yields.iter().all(|(_, y)| *y > 0.0));
    }

    #[test]
    fn suggested_partition_is_usable() {
        let net = toy_network();
        let out = enumerate(&net, &EfmOptions::default()).unwrap();
        let suggestion = suggest_partition(&net, &out.reduced, 2);
        assert_eq!(suggestion.len(), 2, "toy network has two reversible reactions");
        let refs: Vec<&str> = suggestion.iter().map(String::as_str).collect();
        let dc = enumerate_divide_conquer(&net, &EfmOptions::default(), &refs, &Backend::Serial)
            .unwrap();
        assert_eq!(dc.efms, out.efms);
        // (Candidate-count reduction is a large-network effect — the paper
        // says the split "usually" lowers the cumulative count; at toy
        // scale the per-subset kernel overhead dominates, so the reduction
        // itself is asserted at yeast scale in tests/yeast_lite.rs.)
    }
}
