//! Divide-and-conquer — the combined parallel Nullspace Algorithm
//! (the paper's Algorithm 3).
//!
//! The EFM set is partitioned across `qsub` chosen reactions into `2^qsub`
//! disjoint subsets by their zero/nonzero flux pattern: subset `k` contains
//! exactly the EFMs that are nonzero on the partition reactions whose bit
//! in `k` is 1 and zero on the others. Each subset becomes an independent
//! subproblem:
//!
//! * must-be-zero reactions: their columns are removed from the reduced
//!   stoichiometry (lines 5–9 of Algorithm 3);
//! * must-be-nonzero reactions: made pivot columns, ordered last, and left
//!   unprocessed; by Proposition 1 the EFMs of the subset are precisely the
//!   final columns that are nonzero in all of those rows (lines 10–18).
//!
//! Per the paper, partition reactions must survive network reduction; this
//! implementation additionally validates that they are reversible in the
//! reduced network (every partition the paper uses — {R89r, R74r},
//! {R54r, R90r, R60r, R22r} — is), because an unprocessed irreversible row
//! has no sign guarantee.

use crate::bridge::EfmScalar;
use crate::cluster_algo::cluster_supports;
use crate::drivers::{rayon_supports, serial_supports, SupportsAndStats};
use crate::problem::{build_subproblem, EfmProblem};
use crate::schedule::DncConfig;
use crate::types::{EfmError, EfmOptions, RunStats};
use efm_bitset::BitPattern;
use efm_cluster::ClusterConfig;
use efm_metnet::ReducedNetwork;

/// Which execution backend runs each subproblem.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Single-threaded (Algorithm 1 per subset).
    Serial,
    /// Shared-memory rayon pool.
    Rayon,
    /// Simulated distributed-memory cluster (Algorithm 2 per subset — the
    /// paper's combined algorithm).
    Cluster(ClusterConfig),
}

/// Report for one divide-and-conquer subset. Reports are always returned
/// in subset-id order, whatever order the schedule completed them in.
#[derive(Debug, Clone)]
pub struct SubsetReport {
    /// Subset id: bit `i` set ⇔ partition reaction `i` must be nonzero.
    pub id: usize,
    /// Human-readable pattern like `R89r≠0 R74r=0`.
    pub pattern: String,
    /// EFMs found in this subset.
    pub efm_count: usize,
    /// Whether the subset was skipped as provably empty.
    pub skipped_empty: bool,
    /// How many times this subset was restarted after retryable failures
    /// (see [`crate::DncConfig::max_retries`]); `0` on a clean run.
    pub retries: u32,
    /// Subset run statistics — from the successful attempt only, so
    /// aggregating over reports never double-counts retried work. The
    /// recovery events of failed attempts are in `stats.recovery`.
    pub stats: RunStats,
}

/// Validated divide-and-conquer partition over a reduced network.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Reduced-network indices of the partition reactions.
    pub reduced_indices: Vec<usize>,
    /// Display names.
    pub names: Vec<String>,
}

/// Resolves and validates partition reactions (by original-network name).
pub fn resolve_partition(
    net: &efm_metnet::MetabolicNetwork,
    red: &ReducedNetwork,
    partition_names: &[&str],
) -> Result<Partition, EfmError> {
    let mut reduced_indices = Vec::with_capacity(partition_names.len());
    let mut names: Vec<String> = Vec::with_capacity(partition_names.len());
    for &name in partition_names {
        let orig =
            net.reaction_index(name).ok_or_else(|| EfmError::UnknownReaction(name.to_string()))?;
        let redi = red
            .reduced_index_of(orig)
            .ok_or_else(|| EfmError::PartitionBlocked(name.to_string()))?;
        if let Some(prev) = reduced_indices.iter().position(|&r| r == redi) {
            return Err(EfmError::PartitionCollision(names[prev].clone(), name.to_string()));
        }
        if !red.reversible[redi] {
            return Err(EfmError::PartitionIrreversible(name.to_string()));
        }
        reduced_indices.push(redi);
        names.push(name.to_string());
    }
    Ok(Partition { reduced_indices, names })
}

/// Runs one subproblem of the partition; returns supports in reduced
/// indices plus stats, or `None` when the subset is provably empty.
pub fn run_subset<P: BitPattern, S: EfmScalar>(
    red: &ReducedNetwork,
    partition: &Partition,
    subset_id: usize,
    opts: &EfmOptions,
    backend: &Backend,
) -> Result<Option<SupportsAndStats>, EfmError> {
    let qsub = partition.reduced_indices.len();
    debug_assert!(subset_id < 1usize << qsub);
    let nonzero: Vec<usize> = (0..qsub)
        .filter(|i| subset_id >> i & 1 == 1)
        .map(|i| partition.reduced_indices[i])
        .collect();
    let zero: Vec<usize> = (0..qsub)
        .filter(|i| subset_id >> i & 1 == 0)
        .map(|i| partition.reduced_indices[i])
        .collect();
    let keep: Vec<usize> = (0..red.num_reduced()).filter(|c| !zero.contains(c)).collect();
    let problem: Option<EfmProblem<S>> = build_subproblem(red, &keep, &nonzero, opts)?;
    let Some(problem) = problem else {
        return Ok(None);
    };
    let out = match backend {
        Backend::Serial => serial_supports::<P, S>(&problem, opts)?,
        Backend::Rayon => rayon_supports::<P, S>(&problem, opts)?,
        Backend::Cluster(cfg) => {
            let o = cluster_supports::<P, S>(&problem, opts, cfg)?;
            (o.supports, o.stats)
        }
    };
    Ok(Some(out))
}

/// Human-readable subset pattern, paper-style (overbar = zero flux is
/// rendered here as `=0`).
pub fn subset_pattern(partition: &Partition, subset_id: usize) -> String {
    partition
        .names
        .iter()
        .enumerate()
        .map(|(i, n)| if subset_id >> i & 1 == 1 { format!("{n}≠0") } else { format!("{n}=0") })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the full divide-and-conquer enumeration over all `2^qsub` subsets
/// in the paper's sequential order (equivalent to
/// [`divide_conquer_supports_with`] under a default [`DncConfig`]).
/// Returns `(all supports in reduced indices, per-subset reports)`.
pub fn divide_conquer_supports<P: BitPattern, S: EfmScalar>(
    net: &efm_metnet::MetabolicNetwork,
    red: &ReducedNetwork,
    partition_names: &[&str],
    opts: &EfmOptions,
    backend: &Backend,
) -> Result<(Vec<Vec<usize>>, Vec<SubsetReport>), EfmError> {
    divide_conquer_supports_with::<P, S>(
        net,
        red,
        partition_names,
        opts,
        backend,
        &DncConfig::default(),
    )
}

/// Runs the full divide-and-conquer enumeration under an explicit
/// scheduler configuration: subset order and concurrency per
/// [`DncConfig::schedule`], per-subset restarts, progress checkpointing
/// (EFCK v4) and resume. Every schedule returns the identical supports and
/// the reports in subset-id order; only the wall-clock shape differs.
pub fn divide_conquer_supports_with<P: BitPattern, S: EfmScalar>(
    net: &efm_metnet::MetabolicNetwork,
    red: &ReducedNetwork,
    partition_names: &[&str],
    opts: &EfmOptions,
    backend: &Backend,
    dnc: &DncConfig,
) -> Result<(Vec<Vec<usize>>, Vec<SubsetReport>), EfmError> {
    crate::schedule::run_partition::<P, S>(net, red, partition_names, opts, backend, dnc)
}
