//! Problem construction: reduced network → ordered kernel start state.
//!
//! An [`EfmProblem`] is everything the enumeration engine needs and nothing
//! more: the (sub)problem stoichiometry over the algorithm scalar, the
//! kernel basis in `[I; R(2)]` shape, the row processing order, and — for
//! divide-and-conquer subproblems — how many trailing rows stay unprocessed
//! (Proposition 1 of the paper).

use crate::bridge::EfmScalar;
use crate::types::{EfmError, EfmOptions, RowOrdering};
use efm_linalg::{kernel_basis, Mat};
use efm_metnet::ReducedNetwork;
use efm_numeric::Scalar;

/// A fully prepared enumeration problem.
#[derive(Debug, Clone)]
pub struct EfmProblem<S: EfmScalar> {
    /// Stoichiometry of the (sub)problem: independent rows × columns.
    pub stoich: Mat<S>,
    /// Kernel basis columns (rows indexed like `stoich` columns).
    pub kernel: Mat<S>,
    /// Reversibility per column.
    pub reversible: Vec<bool>,
    /// Display name per column.
    pub names: Vec<String>,
    /// Row processing order: `row_order[position] = column index`. The
    /// first `free_count` positions are the identity block (never
    /// processed); the rest are processed in order.
    pub row_order: Vec<usize>,
    /// Size of the identity block (kernel dimension).
    pub free_count: usize,
    /// Number of trailing positions left unprocessed (divide-and-conquer);
    /// 0 for the full problem.
    pub stop_before: usize,
    /// Map from column index to the reduced-network reaction index.
    pub col_to_reduced: Vec<usize>,
    /// For columns produced by splitting a reversible reaction that was
    /// forced into the identity block: the index of the twin column
    /// carrying the opposite direction. Modes using both twins are
    /// artifacts and are filtered from the final supports.
    pub twin_of: Vec<Option<usize>>,
}

impl<S: EfmScalar> EfmProblem<S> {
    /// Number of columns (reactions) in the subproblem.
    pub fn num_cols(&self) -> usize {
        self.stoich.cols()
    }

    /// Number of independent stoichiometry rows.
    pub fn num_rows(&self) -> usize {
        self.stoich.rows()
    }
}

fn order_pivot_positions<S: Scalar>(
    kernel: &Mat<S>,
    pivot_cols: &[usize],
    reversible: &[bool],
    ordering: &RowOrdering,
) -> Vec<usize> {
    let nnz = |col: usize| -> usize {
        (0..kernel.cols()).filter(|&j| !kernel.get(col, j).is_zero()).count()
    };
    let mut order: Vec<usize> = pivot_cols.to_vec();
    match ordering {
        RowOrdering::Paper => {
            order.sort_by_key(|&c| (reversible[c], nnz(c), c));
        }
        RowOrdering::FewestNonzeros => {
            order.sort_by_key(|&c| (nnz(c), c));
        }
        RowOrdering::AsIs => {
            order.sort_unstable();
        }
        RowOrdering::Random(seed) => {
            // Deterministic xorshift shuffle (no rand dependency needed).
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
    }
    order
}

/// Builds the full-network problem from a reduced network.
pub fn build_problem<S: EfmScalar>(
    red: &ReducedNetwork,
    opts: &EfmOptions,
) -> Result<EfmProblem<S>, EfmError> {
    let q = red.num_reduced();
    // Pivot preference: when the caller pins the free (identity) columns,
    // everything else is preferred as a pivot.
    let prefer_pivot: Vec<usize> = match &opts.force_free {
        Some(free_orig) => {
            let free: Vec<usize> = free_orig
                .iter()
                .map(|&o| {
                    red.reduced_index_of(o)
                        .ok_or_else(|| EfmError::PartitionBlocked(red.original_names[o].clone()))
                })
                .collect::<Result<_, _>>()?;
            (0..q).filter(|c| !free.contains(c)).collect()
        }
        None => Vec::new(),
    };
    build_sub(red, &(0..q).collect::<Vec<_>>(), &[], &prefer_pivot, opts)
        .map(|p| p.expect("full problem is never empty"))
}

/// Builds a divide-and-conquer subproblem over the reduced network.
///
/// * `keep_cols` — reduced reaction indices retained (the zero-flux
///   reactions of the subset are removed);
/// * `force_last` — reduced indices (⊆ `keep_cols`) that must be nonzero:
///   ordered last and left unprocessed.
///
/// Returns `Ok(None)` when the subset is provably empty (a must-be-nonzero
/// reaction is blocked within the subnetwork).
pub fn build_subproblem<S: EfmScalar>(
    red: &ReducedNetwork,
    keep_cols: &[usize],
    force_last: &[usize],
    opts: &EfmOptions,
) -> Result<Option<EfmProblem<S>>, EfmError> {
    build_sub(red, keep_cols, force_last, force_last, opts)
}

fn build_sub<S: EfmScalar>(
    red: &ReducedNetwork,
    keep_cols: &[usize],
    force_last: &[usize],
    prefer_pivot_reduced: &[usize],
    opts: &EfmOptions,
) -> Result<Option<EfmProblem<S>>, EfmError> {
    // Column selection relative to the reduced network.
    let mut n_rat = red.stoich.select_cols(keep_cols);
    let col_of_reduced = |r: usize| keep_cols.iter().position(|&c| c == r);
    let mut names: Vec<String> = keep_cols.iter().map(|&c| red.names[c].clone()).collect();
    let mut reversible: Vec<bool> = keep_cols.iter().map(|&c| red.reversible[c]).collect();
    let mut col_to_reduced: Vec<usize> = keep_cols.to_vec();
    let mut twin_of: Vec<Option<usize>> = vec![None; keep_cols.len()];

    let force_last_cols: Vec<usize> =
        force_last.iter().map(|&r| col_of_reduced(r).expect("force_last not kept")).collect();

    // Pivot preference. Correctness requires every reversible reaction to
    // land in the pivot block `R(2)`: the identity block is never
    // processed, and every generated mode is a *positive* combination of
    // the initial basis, so a free reaction can never carry negative flux
    // (the paper's worked example accordingly uses the all-irreversible
    // {r2, r4, r5, r7} as its identity). Forced-last columns come first
    // (divide-and-conquer needs them pivotal), then the remaining
    // reversible columns, then any caller preference.
    let mut prefer_pivot: Vec<usize> = force_last_cols.clone();
    for (c, &rev) in reversible.iter().enumerate() {
        if rev && !prefer_pivot.contains(&c) {
            prefer_pivot.push(c);
        }
    }
    for &r in prefer_pivot_reduced {
        let c = col_of_reduced(r).expect("preferred pivot not kept");
        if !prefer_pivot.contains(&c) {
            prefer_pivot.push(c);
        }
    }

    let mut kb = kernel_basis(&n_rat, &prefer_pivot);

    // A reversible column can still end up free when it is linearly
    // dependent on the other reversible pivots (e.g. more reversible
    // reactions than stoichiometry rank). Fall back to splitting those
    // columns into forward/backward irreversible twins, which restores the
    // positive-combination invariant; the pure two-cycle artifacts are
    // filtered from the final supports via `twin_of`. Splitting changes
    // the pivot structure, so iterate until no reversible column is free
    // (each round strictly reduces the reversible count — it terminates).
    loop {
        let split_cols: Vec<usize> =
            kb.free_cols.iter().copied().filter(|&c| reversible[c]).collect();
        if split_cols.is_empty() {
            break;
        }
        if let Some(&fc) = split_cols.iter().find(|c| force_last_cols.contains(c)) {
            return Err(EfmError::PartitionNotPivotal(names[fc].clone()));
        }
        let base = n_rat.cols();
        let mut wide = Mat::<efm_numeric::Rational>::zeros(n_rat.rows(), base + split_cols.len());
        for r in 0..n_rat.rows() {
            for c in 0..base {
                wide.set(r, c, n_rat.get(r, c).clone());
            }
            for (k, &c) in split_cols.iter().enumerate() {
                wide.set(r, base + k, n_rat.get(r, c).neg());
            }
        }
        for (k, &c) in split_cols.iter().enumerate() {
            let twin = base + k;
            names.push(format!("{}_rev", names[c]));
            reversible[c] = false;
            reversible.push(false);
            col_to_reduced.push(col_to_reduced[c]);
            twin_of[c] = Some(twin);
            twin_of.push(Some(c));
        }
        n_rat = wide;
        let mut prefer: Vec<usize> = force_last_cols.clone();
        for (c, &rev) in reversible.iter().enumerate() {
            if rev && !prefer.contains(&c) {
                prefer.push(c);
            }
        }
        prefer.extend(split_cols.iter().copied());
        kb = kernel_basis(&n_rat, &prefer);
    }

    // Drop dependent stoichiometry rows so the summary rejection bound
    // (|support| ≤ m+1) is tight. RREF preserves the row space, hence the
    // kernel and all support-submatrix nullities.
    let rr = efm_linalg::rref(&n_rat);
    let m_independent = rr.pivot_cols.len();
    let mut n_indep = Mat::<efm_numeric::Rational>::zeros(m_independent, n_rat.cols());
    for r in 0..m_independent {
        for c in 0..n_rat.cols() {
            n_indep.set(r, c, rr.mat.get(r, c).clone());
        }
    }

    // Must-be-nonzero columns: detect blocked (zero kernel row) → empty
    // subset; detect non-pivot (identity) placement → unusable partition.
    for &c in &force_last_cols {
        let blocked = (0..kb.k.cols()).all(|j| kb.k.get(c, j).is_zero());
        if blocked {
            return Ok(None);
        }
        if kb.free_cols.contains(&c) {
            return Err(EfmError::PartitionNotPivotal(names[c].clone()));
        }
    }

    // Row order: identity block first, then pivots by heuristic with the
    // forced columns last.
    let other_pivots: Vec<usize> =
        kb.pivot_cols.iter().copied().filter(|c| !force_last_cols.contains(c)).collect();
    let mut row_order: Vec<usize> = kb.free_cols.clone();
    row_order.extend(order_pivot_positions(&kb.k, &other_pivots, &reversible, &opts.ordering));
    // Forced columns at the very bottom, in the caller's order.
    row_order.extend(force_last_cols.iter().copied());

    debug_assert_eq!(row_order.len(), n_rat.cols());

    Ok(Some(EfmProblem {
        stoich: S::import_stoich(&n_indep),
        kernel: S::import_kernel(&kb.k),
        reversible,
        names,
        row_order,
        free_count: kb.free_cols.len(),
        stop_before: force_last_cols.len(),
        col_to_reduced,
        twin_of,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_metnet::{compress, examples};
    use efm_numeric::DynInt;

    fn toy_reduced() -> ReducedNetwork {
        compress(&examples::toy_network()).0
    }

    #[test]
    fn full_problem_shape() {
        let red = toy_reduced();
        let p: EfmProblem<DynInt> = build_problem(&red, &EfmOptions::default()).unwrap();
        assert_eq!(p.num_cols(), 8);
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.kernel.cols(), 4, "kernel dimension q - m = 4");
        assert_eq!(p.free_count, 4);
        assert_eq!(p.stop_before, 0);
        assert_eq!(p.row_order.len(), 8);
        // row_order is a permutation.
        let mut sorted = p.row_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn paper_ordering_puts_reversibles_last() {
        let red = toy_reduced();
        let p: EfmProblem<DynInt> = build_problem(&red, &EfmOptions::default()).unwrap();
        let processed = &p.row_order[p.free_count..];
        // All irreversible processed rows must come before any reversible.
        let first_rev = processed.iter().position(|&c| p.reversible[c]);
        if let Some(fr) = first_rev {
            assert!(
                processed[fr..].iter().all(|&c| p.reversible[c]),
                "reversible rows must be contiguous at the end: {processed:?}"
            );
        }
    }

    #[test]
    fn force_free_pins_identity_block() {
        let net = examples::toy_network();
        let (red, _) = compress(&net);
        // The paper's worked example uses r2, r4, r5, r7 as the identity.
        let force: Vec<usize> =
            ["r2", "r4", "r5", "r7"].iter().map(|n| net.reaction_index(n).unwrap()).collect();
        let opts = EfmOptions { force_free: Some(force.clone()), ..Default::default() };
        let p: EfmProblem<DynInt> = build_problem(&red, &opts).unwrap();
        let free_reduced: Vec<usize> =
            p.row_order[..p.free_count].iter().map(|&c| p.col_to_reduced[c]).collect();
        let want: Vec<usize> = force.iter().map(|&o| red.reduced_index_of(o).unwrap()).collect();
        let mut a = free_reduced.clone();
        a.sort_unstable();
        let mut b = want.clone();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn subproblem_removes_columns_and_orders_forced_last() {
        let net = examples::toy_network();
        let (red, _) = compress(&net);
        let r6 = red.reduced_index_of(net.reaction_index("r6r").unwrap()).unwrap();
        let r8 = red.reduced_index_of(net.reaction_index("r8r").unwrap()).unwrap();
        // Subset: r6r zero (column removed), r8r nonzero (ordered last).
        let keep: Vec<usize> = (0..red.num_reduced()).filter(|&c| c != r6).collect();
        let p: EfmProblem<DynInt> =
            build_subproblem(&red, &keep, &[r8], &EfmOptions::default()).unwrap().unwrap();
        assert_eq!(p.num_cols(), 7);
        assert_eq!(p.stop_before, 1);
        let last_col = *p.row_order.last().unwrap();
        assert_eq!(p.col_to_reduced[last_col], r8);
    }

    #[test]
    fn kernel_annihilated_by_stoich() {
        let red = toy_reduced();
        let p: EfmProblem<DynInt> = build_problem(&red, &EfmOptions::default()).unwrap();
        let prod = p.stoich.matmul(&p.kernel);
        assert!(prod.is_zero(), "N_red · K must be zero");
    }

    #[test]
    fn ordering_variants_are_permutations() {
        let red = toy_reduced();
        for ordering in [
            RowOrdering::Paper,
            RowOrdering::FewestNonzeros,
            RowOrdering::AsIs,
            RowOrdering::Random(7),
        ] {
            let opts = EfmOptions { ordering, ..Default::default() };
            let p: EfmProblem<DynInt> = build_problem(&red, &opts).unwrap();
            let mut sorted = p.row_order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }
}
