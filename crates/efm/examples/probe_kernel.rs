use efm_linalg::{kernel_basis, rank};
use efm_metnet::yeast;

fn main() {
    let net = yeast::network_i();
    let n = net.stoichiometry();
    println!(
        "original: {}x{} rank={} kernel_dim={}",
        n.rows(),
        n.cols(),
        rank(&n),
        kernel_basis(&n, &[]).k.cols()
    );
    let (red, _) = efm_metnet::compress(&net);
    println!(
        "reduced: {}x{} rank={} kernel_dim={}",
        red.stoich.rows(),
        red.num_reduced(),
        rank(&red.stoich),
        kernel_basis(&red.stoich, &[]).k.cols()
    );
}
