use efm_core::*;
fn main() {
    let net = efm_metnet::yeast::network_i();
    let (red, _) = efm_metnet::compress(&net);
    let p = build_problem::<efm_numeric::DynInt>(&red, &EfmOptions::default()).unwrap();
    println!(
        "reduced={} problem_cols={} free={} twins={}",
        red.num_reduced(),
        p.num_cols(),
        p.free_count,
        p.twin_of.iter().filter(|t| t.is_some()).count()
    );
    let names: Vec<&str> = p.row_order.iter().map(|&c| p.names[c].as_str()).collect();
    println!("last rows: {:?}", &names[names.len().saturating_sub(4)..]);
}
