use efm_core::*;
use efm_metnet::yeast;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "1".into());
    let cap: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let net = if which == "2" { yeast::network_ii() } else { yeast::network_i() };
    let (red, stats) = efm_metnet::compress(&net);
    println!(
        "network {which}: original {}x{}, reduced {}x{} (paper: I=35x55, II=40x61); stats {:?}",
        net.num_internal(),
        net.num_reactions(),
        red.stoich.rows(),
        red.num_reduced(),
        stats
    );
    let nrev = red.reversible.iter().filter(|&&r| r).count();
    println!("reduced reversible: {nrev}");
    if cap == 0 {
        return;
    }
    let opts = EfmOptions { max_modes: Some(cap), ..Default::default() };
    let scalar = std::env::args().nth(3).unwrap_or_else(|| "exact".into());
    if scalar == "float" {
        run_traced::<efm_numeric::F64Tol>(&red, &opts);
    } else {
        run_traced::<efm_numeric::DynInt>(&red, &opts);
    }
}

fn run_traced<S: efm_core::EfmScalar>(red: &efm_metnet::ReducedNetwork, opts: &EfmOptions) {
    let problem = build_problem::<S>(red, opts).unwrap();
    let t0 = Instant::now();
    let run = serial_supports_traced::<efm_bitset::Pattern2, S>(&problem, opts, |it| {
        println!("iter pos={:2} rxn={:24} rev={:5} p/n/z={:>8}/{:>8}/{:>9} pairs={:>14} hits={:>10} pref={:>9} acc={:>9} after={:>9} gen={:.2?} dd={:.2?} tst={:.2?} el={:.0?}",
            it.position, it.reaction, it.reversible, it.pos, it.neg, it.zero, it.pairs, it.numeric_pass, it.prefiltered, it.accepted, it.modes_after, it.t_generate, it.t_dedup, it.t_test, t0.elapsed());
    });
    match run {
        Ok((sups, stats)) => {
            println!(
                "EFMs (reduced supports): {} candidates: {} peak: {} time: {:?}",
                sups.len(),
                stats.candidates_generated,
                stats.peak_modes,
                t0.elapsed()
            );
        }
        Err(e) => println!("failed after {:?}: {e}", t0.elapsed()),
    }
}
