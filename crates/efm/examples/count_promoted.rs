//! Diagnostic: how much of the exact-integer mode matrix has promoted to
//! the big-integer path at each iteration (explains the exact-mode cost on
//! genome-scale networks; recorded in EXPERIMENTS.md).

use efm_core::*;
use efm_metnet::compress;
use efm_numeric::DynInt;

fn main() {
    let net = efm_metnet::yeast::network_i();
    let (red, _) = compress(&net);
    let opts = EfmOptions::default();
    let problem = build_problem::<DynInt>(&red, &opts).unwrap();
    let mut eng = Engine::<efm_bitset::Pattern2, DynInt>::new(&problem, &opts).unwrap();
    let limit: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(58);
    let mut it = 0;
    while !eng.done() && it < limit {
        eng.step();
        it += 1;
        let total = eng.modes.vals.len().max(1);
        let promoted = eng.modes.vals.iter().filter(|v| v.is_promoted()).count();
        let maxbits = eng
            .modes
            .vals
            .iter()
            .map(|v| match v.to_i128() {
                Some(x) => 128 - x.unsigned_abs().leading_zeros(),
                None => 200,
            })
            .max()
            .unwrap_or(0);
        if it % 5 == 0 || promoted > 0 {
            println!(
                "iter {it}: modes={} vals={} promoted={} ({:.2}%) max_bits≈{}",
                eng.modes.len(),
                total,
                promoted,
                100.0 * promoted as f64 / total as f64,
                maxbits
            );
        }
    }
}
