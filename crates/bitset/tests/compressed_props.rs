//! Property tests for delta/RLE-compressed patterns: encode/decode is the
//! identity, and subset/union/intersect semantics match `DynPattern`.

use efm_bitset::{CompressedPattern, DynPattern};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bit_sets(max: usize) -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::vec(0..max, 0..60).prop_map(|v| v.into_iter().collect())
}

fn dynp(bits: &BTreeSet<usize>) -> DynPattern {
    let mut p = DynPattern::default();
    for &b in bits {
        p.set(b);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn encode_decode_is_identity(bits in bit_sets(2000)) {
        let c = CompressedPattern::from_indices(bits.iter().copied());
        prop_assert_eq!(c.count() as usize, bits.len());
        prop_assert_eq!(
            c.iter_ones().collect::<Vec<_>>(),
            bits.iter().copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(c.to_dyn(), dynp(&bits));
        // Round-trip through DynPattern is canonical: byte-identical.
        prop_assert_eq!(&CompressedPattern::from_dyn(&c.to_dyn()), &c);
        // Round-trip through the raw encoded stream validates and agrees.
        let back = CompressedPattern::from_encoded(c.encoded().to_vec(), c.count());
        prop_assert_eq!(back, Some(c));
    }

    #[test]
    fn subset_matches_dyn(a in bit_sets(512), b in bit_sets(512)) {
        let (ca, cb) = (
            CompressedPattern::from_indices(a.iter().copied()),
            CompressedPattern::from_indices(b.iter().copied()),
        );
        prop_assert_eq!(ca.is_subset_of(&cb), dynp(&a).is_subset_of(&dynp(&b)));
        prop_assert_eq!(cb.is_subset_of(&ca), dynp(&b).is_subset_of(&dynp(&a)));
        prop_assert!(ca.is_subset_of(&ca));
    }

    #[test]
    fn union_intersect_match_dyn(a in bit_sets(512), b in bit_sets(512)) {
        let (ca, cb) = (
            CompressedPattern::from_indices(a.iter().copied()),
            CompressedPattern::from_indices(b.iter().copied()),
        );
        // Compare as index lists: DynPattern equality is sensitive to
        // trailing zero words, which intersect/union may or may not keep.
        prop_assert_eq!(
            ca.union(&cb).iter_ones().collect::<Vec<_>>(),
            dynp(&a).union(&dynp(&b)).iter_ones().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ca.intersect(&cb).iter_ones().collect::<Vec<_>>(),
            dynp(&a).intersect(&dynp(&b)).iter_ones().collect::<Vec<_>>()
        );
        // Union is symmetric and canonical.
        prop_assert_eq!(ca.union(&cb), cb.union(&ca));
    }

    #[test]
    fn get_matches_membership(bits in bit_sets(256), probe in 0usize..300) {
        let c = CompressedPattern::from_indices(bits.iter().copied());
        prop_assert_eq!(c.get(probe), bits.contains(&probe));
    }

    #[test]
    fn dense_runs_beat_bitmap(start in 0usize..256, len in 1usize..128) {
        // A single run encodes in O(varint) bytes regardless of length.
        let c = CompressedPattern::from_indices(start..start + len);
        prop_assert!(c.encoded_len() <= 4);
        prop_assert_eq!(c.count() as usize, len);
    }
}
