//! SIMD vs scalar equivalence properties for the batch kernels.
//!
//! Every batched primitive — the fused bound sweep, the union popcount
//! batch (`union_counts` / `union_count_4`) and the any-subset probe —
//! must be bit-identical across every [`KernelTier`] the host supports,
//! for every pattern width 1–8 words and for ragged batch lengths that
//! exercise the vector tail paths. The scalar `Pattern` operations are
//! the oracle throughout.

use efm_bitset::kernel::{
    bounds_sweep, is_subset_any, prefilter_hits, union_count_4, union_counts, KernelTier,
};
use efm_bitset::Pattern;
use proptest::prelude::*;

/// All tiers; calls clamp internally, so requesting AVX2 on a non-AVX2
/// host degrades to the best available path rather than failing.
const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2];

fn words(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), n..=n)
}

fn to_pats<const W: usize>(raw: &[u64]) -> Vec<Pattern<W>> {
    raw.chunks_exact(W)
        .map(|c| {
            let mut p = Pattern::<W>::empty();
            for (wi, &w) in c.iter().enumerate() {
                for b in 0..64 {
                    if (w >> b) & 1 == 1 {
                        p.set(wi * 64 + b);
                    }
                }
            }
            p
        })
        .collect()
}

/// One generic check body per width; `len` is the ragged batch length.
fn check_width<const W: usize>(
    raw_a: &[u64],
    raw_b: &[u64],
    len: usize,
) -> Result<(), TestCaseError> {
    let a = to_pats::<W>(raw_a);
    let (pat, sup) = (a[0], a[1]);
    let all = to_pats::<W>(raw_b);
    let negs = &all[..len];
    let nsups = &all[len..2 * len];

    // Scalar oracle, computed with the plain per-pattern ops.
    let want_bounds: Vec<u32> =
        negs.iter().zip(nsups).map(|(n, x)| pat.union_count(n) + sup.xor_count(x)).collect();
    let want_unions: Vec<u32> = negs.iter().map(|n| pat.union_count(n)).collect();
    let want_any = negs.iter().any(|c| c.is_subset_of(&sup));
    let max = want_bounds.iter().copied().min().unwrap_or(0) + 1;
    let want_hits: Vec<u32> = want_bounds
        .iter()
        .enumerate()
        .filter(|(_, &b)| b <= max)
        .map(|(i, _)| 7 + i as u32)
        .collect();

    for tier in TIERS {
        let mut got = Vec::new();
        bounds_sweep(tier, &pat, &sup, negs, nsups, &mut got);
        prop_assert_eq!(&got, &want_bounds, "bounds_sweep W={} tier={}", W, tier);

        let mut uc = Vec::new();
        union_counts(tier, &pat, negs, &mut uc);
        prop_assert_eq!(&uc, &want_unions, "union_counts W={} tier={}", W, tier);

        if len >= 4 {
            let four = [negs[0], negs[1], negs[2], negs[3]];
            prop_assert_eq!(
                union_count_4(tier, &pat, &four).to_vec(),
                want_unions[..4].to_vec(),
                "union_count_4 W={} tier={}",
                W,
                tier
            );
        }

        prop_assert_eq!(
            is_subset_any(tier, negs, &sup),
            want_any,
            "is_subset_any W={} tier={}",
            W,
            tier
        );

        let mut bounds = Vec::new();
        let mut hits = Vec::new();
        let got_n = prefilter_hits(tier, &pat, &sup, negs, nsups, max, 7, &mut bounds, &mut hits);
        prop_assert_eq!(&hits, &want_hits, "prefilter_hits W={} tier={}", W, tier);
        prop_assert_eq!(got_n, want_hits.len());
    }
    Ok(())
}

macro_rules! kernel_props {
    ($name:ident, $w:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(40))]

                /// Ragged lengths 0..=9 hit every remainder of the 4-, 2-
                /// and 1-pair vector strides.
                #[test]
                fn tiers_bit_identical(
                    raw_a in words(2 * $w),
                    raw_b in words(2 * 9 * $w),
                    len in 0usize..=9,
                ) {
                    check_width::<$w>(&raw_a, &raw_b, len)?;
                }

                /// Subset hits are found wherever they sit in the batch.
                #[test]
                fn planted_subset_found(
                    raw_a in words(2 * $w),
                    raw_b in words(2 * 9 * $w),
                    pos in 0usize..6,
                ) {
                    let sup = to_pats::<$w>(&raw_a)[1];
                    let mut cands = to_pats::<$w>(&raw_b);
                    cands.truncate(6);
                    cands[pos] = sup.intersect(&cands[pos]);
                    for tier in TIERS {
                        prop_assert!(is_subset_any(tier, &cands, &sup), "tier={}", tier);
                    }
                }
            }
        }
    };
}

kernel_props!(w1, 1);
kernel_props!(w2, 2);
kernel_props!(w3, 3);
kernel_props!(w4, 4);
kernel_props!(w5, 5);
kernel_props!(w6, 6);
kernel_props!(w7, 7);
kernel_props!(w8, 8);
