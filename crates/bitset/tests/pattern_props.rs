//! Property tests for bit patterns: set-algebra laws and consistency of the
//! fused counting operations with their naive counterparts.

use efm_bitset::{BitPattern, DynPattern, Pattern1, Pattern2, Pattern4};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn indices(max: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..max, 0..max.min(40))
}

macro_rules! pattern_props {
    ($name:ident, $ty:ty, $bits:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(150))]

                #[test]
                fn set_get_roundtrip(ix in indices($bits)) {
                    let p = <$ty>::from_indices(ix.clone());
                    let want: BTreeSet<usize> = ix.into_iter().collect();
                    for i in 0..$bits {
                        prop_assert_eq!(p.get(i), want.contains(&i));
                    }
                    prop_assert_eq!(p.count() as usize, want.len());
                    prop_assert_eq!(p.ones(), want.into_iter().collect::<Vec<_>>());
                }

                #[test]
                fn union_count_is_count_of_union(a in indices($bits), b in indices($bits)) {
                    let pa = <$ty>::from_indices(a.clone());
                    let pb = <$ty>::from_indices(b.clone());
                    prop_assert_eq!(pa.union_count(&pb), pa.union(&pb).count());
                    let sa: BTreeSet<usize> = a.into_iter().collect();
                    let sb: BTreeSet<usize> = b.into_iter().collect();
                    prop_assert_eq!(pa.union_count(&pb) as usize, sa.union(&sb).count());
                }

                #[test]
                fn xor_count_is_symmetric_difference(a in indices($bits), b in indices($bits)) {
                    let pa = <$ty>::from_indices(a.clone());
                    let pb = <$ty>::from_indices(b.clone());
                    let sa: BTreeSet<usize> = a.into_iter().collect();
                    let sb: BTreeSet<usize> = b.into_iter().collect();
                    prop_assert_eq!(
                        pa.xor_count(&pb) as usize,
                        sa.symmetric_difference(&sb).count()
                    );
                    prop_assert_eq!(pa.xor_count(&pb), pb.xor_count(&pa));
                }

                #[test]
                fn subset_iff_union_equals_superset(a in indices($bits), b in indices($bits)) {
                    let pa = <$ty>::from_indices(a);
                    let pb = <$ty>::from_indices(b);
                    prop_assert_eq!(pa.is_subset_of(&pb), pa.union(&pb) == pb);
                }

                #[test]
                fn ordering_total_and_dedup_safe(a in indices($bits), b in indices($bits)) {
                    let pa = <$ty>::from_indices(a);
                    let pb = <$ty>::from_indices(b);
                    prop_assert_eq!(pa == pb, pa.cmp(&pb) == std::cmp::Ordering::Equal);
                }
            }
        }
    };
}

pattern_props!(p1, Pattern1, 64);
pattern_props!(p2, Pattern2, 128);
pattern_props!(p4, Pattern4, 256);

proptest! {
    #[test]
    fn dyn_pattern_matches_fixed(ix in indices(128)) {
        let fixed = Pattern2::from_indices(ix.clone());
        let mut dynp = DynPattern::with_capacity(128);
        for &i in &ix {
            dynp.set(i);
        }
        prop_assert_eq!(fixed.count(), dynp.count());
        prop_assert_eq!(fixed.ones(), dynp.iter_ones().collect::<Vec<_>>());
    }
}
