//! # efm-bitset — compact support patterns for flux modes
//!
//! The Nullspace Algorithm's inner loop pairs every positive with every
//! negative mode and first asks a purely combinatorial question about the
//! union of their supports. For the yeast networks of the paper that loop
//! executes ~1.6×10¹¹ times, so the support pattern must be a few machine
//! words with branch-light union/popcount/subset operations.
//!
//! [`Pattern`] stores up to `64*W` bits inline (no heap); the workspace
//! monomorphizes the algorithm core over `W ∈ {1, 2, 4}` ([`Pattern1`],
//! [`Pattern2`], [`Pattern4`]), which covers reduced networks of up to 256
//! reactions — far beyond what EFM enumeration can handle combinatorially.
//! [`DynPattern`] is the boxed fallback for generic tooling.

#![warn(missing_docs)]

use std::fmt;
use std::hash::Hash;

pub mod compressed;
pub mod kernel;
pub mod tree;

pub use compressed::CompressedPattern;
pub use kernel::{detect_tier, KernelTier};
pub use tree::{PatternTree, TreePattern};

/// A fixed-capacity inline bit pattern of `64*W` bits.
///
/// `#[repr(transparent)]` guarantees a `Pattern<W>` is layout-identical to
/// `[u64; W]`, so the [`kernel`] module may view `&[Pattern<W>]` as a flat
/// `&[u64]` for its SIMD sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Pattern<const W: usize> {
    words: [u64; W],
}

/// One-word pattern (networks with ≤ 64 reduced reactions).
pub type Pattern1 = Pattern<1>;
/// Two-word pattern (≤ 128 reduced reactions).
pub type Pattern2 = Pattern<2>;
/// Four-word pattern (≤ 256 reduced reactions).
pub type Pattern4 = Pattern<4>;

impl<const W: usize> Default for Pattern<W> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<const W: usize> Pattern<W> {
    /// Number of bits this pattern can hold.
    pub const CAPACITY: usize = 64 * W;

    /// The empty pattern.
    #[inline]
    pub fn empty() -> Self {
        Pattern { words: [0; W] }
    }

    /// Pattern with bits `0..n` set.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "pattern capacity exceeded");
        let mut p = Self::empty();
        for i in 0..n {
            p.set(i);
        }
        p
    }

    /// Builds a pattern from an iterator of set bit indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut p = Self::empty();
        for i in iter {
            p.set(i);
        }
        p
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY, "bit index out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY, "bit index out of range");
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < Self::CAPACITY, "bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bitwise union.
    #[inline]
    pub fn union(&self, rhs: &Self) -> Self {
        let mut out = [0u64; W];
        for ((o, &a), &b) in out.iter_mut().zip(&self.words).zip(&rhs.words) {
            *o = a | b;
        }
        Pattern { words: out }
    }

    /// Bitwise intersection.
    #[inline]
    pub fn intersect(&self, rhs: &Self) -> Self {
        let mut out = [0u64; W];
        for ((o, &a), &b) in out.iter_mut().zip(&self.words).zip(&rhs.words) {
            *o = a & b;
        }
        Pattern { words: out }
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        let mut c = 0;
        for i in 0..W {
            c += self.words[i].count_ones();
        }
        c
    }

    /// Number of set bits in the union of two patterns, without
    /// materializing it — the single hottest operation of the algorithm.
    #[inline]
    pub fn union_count(&self, rhs: &Self) -> u32 {
        let mut c = 0;
        for i in 0..W {
            c += (self.words[i] | rhs.words[i]).count_ones();
        }
        c
    }

    /// Number of set bits in the symmetric difference (fused XOR+popcount).
    #[inline]
    pub fn xor_count(&self, rhs: &Self) -> u32 {
        let mut c = 0;
        for i in 0..W {
            c += (self.words[i] ^ rhs.words[i]).count_ones();
        }
        c
    }

    /// Whether `self` is a subset of `rhs`.
    #[inline]
    pub fn is_subset_of(&self, rhs: &Self) -> bool {
        for i in 0..W {
            if self.words[i] & !rhs.words[i] != 0 {
                return false;
            }
        }
        true
    }

    /// Whether the pattern has no set bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Raw words (for hashing / sorting keys).
    #[inline]
    pub fn words(&self) -> &[u64; W] {
        &self.words
    }
}

impl<const W: usize> fmt::Debug for Pattern<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern{{")?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Heap-allocated pattern of arbitrary width, for generic tooling and tests.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct DynPattern {
    words: Vec<u64>,
}

impl DynPattern {
    /// Empty pattern able to hold `nbits` bits.
    pub fn with_capacity(nbits: usize) -> Self {
        DynPattern { words: vec![0; nbits.div_ceil(64)] }
    }

    /// Sets bit `i` (the pattern grows as needed).
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether every set bit of `self` is set in `rhs` (widths may differ;
    /// missing words are zero).
    pub fn is_subset_of(&self, rhs: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !rhs.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Bitwise union (result width is the wider operand's).
    pub fn union(&self, rhs: &Self) -> Self {
        let mut out = DynPattern::default();
        self.union_into(rhs, &mut out);
        out
    }

    /// Bitwise union written into a caller-provided pattern, reusing its
    /// word buffer — the allocation-free form for loops that union many
    /// pairs (a fresh `Vec` per pair otherwise dominates the naive path).
    pub fn union_into(&self, rhs: &Self, out: &mut Self) {
        let n = self.words.len().max(rhs.words.len());
        out.words.clear();
        out.words.extend((0..n).map(|i| {
            self.words.get(i).copied().unwrap_or(0) | rhs.words.get(i).copied().unwrap_or(0)
        }));
    }

    /// Bitwise intersection.
    pub fn intersect(&self, rhs: &Self) -> Self {
        let n = self.words.len().min(rhs.words.len());
        DynPattern { words: (0..n).map(|i| self.words[i] & rhs.words[i]).collect() }
    }

    /// Iterates over set bit indices.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// The pattern interface the algorithm core is generic over.
///
/// Implemented by every inline width; the core monomorphizes per width so the
/// inner loop compiles to straight-line word operations.
pub trait BitPattern:
    Clone + Copy + PartialEq + Eq + Hash + Ord + Send + Sync + Default + fmt::Debug + 'static
{
    /// Capacity in bits.
    fn capacity() -> usize;
    /// The empty pattern.
    fn empty() -> Self;
    /// Set a bit.
    fn set(&mut self, i: usize);
    /// Test a bit.
    fn get(&self, i: usize) -> bool;
    /// Union.
    fn union(&self, rhs: &Self) -> Self;
    /// Intersection.
    fn intersect(&self, rhs: &Self) -> Self;
    /// Popcount.
    fn count(&self) -> u32;
    /// Popcount of the union (fused hot path).
    fn union_count(&self, rhs: &Self) -> u32;
    /// Popcount of the symmetric difference (fused hot path).
    fn xor_count(&self, rhs: &Self) -> u32;
    /// Subset test.
    fn is_subset_of(&self, rhs: &Self) -> bool;
    /// Set bit indices, ascending.
    fn ones(&self) -> Vec<usize>;

    /// Calls `f` with every set bit index in ascending order — the
    /// allocation-free counterpart of [`ones`](Self::ones) for hot loops.
    fn for_each_one<F: FnMut(usize)>(&self, mut f: F) {
        for i in self.ones() {
            f(i);
        }
    }

    /// Negative-side block length (pairs) the cache-blocked generation
    /// kernel should use for this pattern width (sized so one block's two
    /// pattern streams stay L1-resident).
    fn block_pairs() -> usize {
        kernel::block_pairs(std::mem::size_of::<Self>())
    }

    /// Batched adjacency pre-filter over one block: appends `base + i` to
    /// `hits` for every pair with `(pat | negs[i]).count() +
    /// (sup ^ nsups[i]).count() <= max`, returning the number appended.
    /// `bounds` is caller-owned scratch. The default is the portable
    /// scalar loop; inline widths dispatch into the SIMD [`kernel`].
    #[allow(clippy::too_many_arguments)] // hot-path API: scratch + output buffers ride with the block operands
    fn prefilter_block(
        tier: KernelTier,
        pat: &Self,
        sup: &Self,
        negs: &[Self],
        nsups: &[Self],
        max: u32,
        base: u32,
        bounds: &mut Vec<u32>,
        hits: &mut Vec<u32>,
    ) -> usize {
        let _ = (tier, bounds);
        let before = hits.len();
        for (i, n) in negs.iter().enumerate() {
            if pat.union_count(n) + sup.xor_count(&nsups[i]) <= max {
                hits.push(base + i as u32);
            }
        }
        hits.len() - before
    }

    /// Whether any pattern in `cands` is a subset of `sup` (batched form
    /// of the naive adjacency scan's early-exit probe).
    fn subset_any(tier: KernelTier, cands: &[Self], sup: &Self) -> bool {
        let _ = tier;
        cands.iter().any(|c| c.is_subset_of(sup))
    }
}

impl<const W: usize> BitPattern for Pattern<W> {
    #[inline]
    fn capacity() -> usize {
        Self::CAPACITY
    }
    #[inline]
    fn empty() -> Self {
        Pattern::empty()
    }
    #[inline]
    fn set(&mut self, i: usize) {
        Pattern::set(self, i)
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        Pattern::get(self, i)
    }
    #[inline]
    fn union(&self, rhs: &Self) -> Self {
        Pattern::union(self, rhs)
    }
    #[inline]
    fn intersect(&self, rhs: &Self) -> Self {
        Pattern::intersect(self, rhs)
    }
    #[inline]
    fn count(&self) -> u32 {
        Pattern::count(self)
    }
    #[inline]
    fn union_count(&self, rhs: &Self) -> u32 {
        Pattern::union_count(self, rhs)
    }
    #[inline]
    fn xor_count(&self, rhs: &Self) -> u32 {
        Pattern::xor_count(self, rhs)
    }
    #[inline]
    fn is_subset_of(&self, rhs: &Self) -> bool {
        Pattern::is_subset_of(self, rhs)
    }
    fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
    #[inline]
    fn for_each_one<F: FnMut(usize)>(&self, mut f: F) {
        for i in self.iter_ones() {
            f(i);
        }
    }
    fn prefilter_block(
        tier: KernelTier,
        pat: &Self,
        sup: &Self,
        negs: &[Self],
        nsups: &[Self],
        max: u32,
        base: u32,
        bounds: &mut Vec<u32>,
        hits: &mut Vec<u32>,
    ) -> usize {
        kernel::prefilter_hits(tier, pat, sup, negs, nsups, max, base, bounds, hits)
    }
    #[inline]
    fn subset_any(tier: KernelTier, cands: &[Self], sup: &Self) -> bool {
        kernel::is_subset_any(tier, cands, sup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut p = Pattern2::empty();
        assert!(p.is_empty());
        p.set(0);
        p.set(63);
        p.set(64);
        p.set(127);
        assert!(p.get(0) && p.get(63) && p.get(64) && p.get(127));
        assert!(!p.get(1) && !p.get(65));
        assert_eq!(p.count(), 4);
        p.clear(64);
        assert!(!p.get(64));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn union_and_counts() {
        let a = Pattern1::from_indices([0, 5, 10]);
        let b = Pattern1::from_indices([5, 11]);
        let u = a.union(&b);
        assert_eq!(u, Pattern1::from_indices([0, 5, 10, 11]));
        assert_eq!(a.union_count(&b), 4);
        assert_eq!(a.intersect(&b), Pattern1::from_indices([5]));
    }

    #[test]
    fn union_count_matches_union_then_count() {
        let a = Pattern4::from_indices([0, 70, 140, 250]);
        let b = Pattern4::from_indices([1, 70, 141, 255]);
        assert_eq!(a.union_count(&b), a.union(&b).count());
    }

    #[test]
    fn dyn_union_into_reuses_buffer() {
        let dynp = |bits: &[usize]| {
            let mut p = DynPattern::default();
            for &b in bits {
                p.set(b);
            }
            p
        };
        let a = dynp(&[0, 5, 130]);
        let b = dynp(&[5, 64]);
        let mut out = dynp(&[200, 300]); // stale, wider
        let cap_before = {
            a.union_into(&b, &mut out);
            out.words.capacity()
        };
        assert_eq!(out, a.union(&b));
        // A second union into the same buffer must not grow it again.
        a.union_into(&b, &mut out);
        assert_eq!(out.words.capacity(), cap_before);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 5, 64, 130]);
    }

    #[test]
    fn xor_count_matches_symmetric_difference() {
        let a = Pattern2::from_indices([0, 5, 64, 100]);
        let b = Pattern2::from_indices([5, 64, 101]);
        assert_eq!(a.xor_count(&b), 3); // {0, 100, 101}
        assert_eq!(a.xor_count(&a), 0);
    }

    #[test]
    fn subset() {
        let a = Pattern2::from_indices([3, 70]);
        let b = Pattern2::from_indices([3, 70, 100]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Pattern2::empty().is_subset_of(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let p = Pattern2::from_indices([127, 0, 64, 63, 5]);
        assert_eq!(p.iter_ones().collect::<Vec<_>>(), vec![0, 5, 63, 64, 127]);
    }

    #[test]
    fn first_n() {
        let p = Pattern2::first_n(70);
        assert_eq!(p.count(), 70);
        assert!(p.get(69) && !p.get(70));
        assert!(Pattern1::first_n(0).is_empty());
        assert_eq!(Pattern1::first_n(64).count(), 64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn first_n_overflow_panics() {
        let _ = Pattern1::first_n(65);
    }

    #[test]
    fn ordering_is_total_and_word_major() {
        let a = Pattern1::from_indices([0]);
        let b = Pattern1::from_indices([1]);
        assert!(a < b);
        let mut v = vec![b, a, a];
        v.sort();
        v.dedup();
        assert_eq!(v, vec![a, b]);
    }

    #[test]
    fn dyn_pattern_grows() {
        let mut p = DynPattern::with_capacity(10);
        p.set(5);
        p.set(300);
        assert!(p.get(5) && p.get(300) && !p.get(6));
        assert_eq!(p.count(), 2);
        assert_eq!(p.iter_ones().collect::<Vec<_>>(), vec![5, 300]);
    }

    #[test]
    fn trait_object_safety_not_required_generic_use() {
        fn union_size<P: BitPattern>(a: &P, b: &P) -> u32 {
            a.union_count(b)
        }
        let a = Pattern1::from_indices([1, 2]);
        let b = Pattern1::from_indices([2, 3]);
        assert_eq!(union_size(&a, &b), 3);
    }

    #[test]
    fn debug_format_lists_bits() {
        let p = Pattern1::from_indices([2, 4]);
        assert_eq!(format!("{p:?}"), "Pattern{2,4}");
    }
}
