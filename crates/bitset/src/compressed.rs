//! Delta/RLE-compressed support patterns.
//!
//! A survivor mode's support is a sparse, sorted set of reaction indices,
//! and real metabolic supports cluster into short runs (pathways touch
//! consecutive reduced reactions after the nullspace permutation). This
//! module stores a pattern as a byte stream of `(gap, run)` tokens —
//! LEB128 varints of the gap from the end of the previous run to the start
//! of the next, followed by `run_length - 1` — which compresses a typical
//! yeast-scale support to a handful of bytes versus the fixed `64*W`-bit
//! inline [`Pattern`](crate::Pattern).
//!
//! The encoding is *canonical*: a given bit set has exactly one byte
//! representation, so equality and hashing on the raw bytes agree with set
//! equality. Decoding is a strictly sequential scan, which is exactly the
//! access pattern of the spillable mode-matrix stripes that use this type
//! as their on-disk cell format.

use crate::{BitPattern, DynPattern};

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit set
/// on continuation bytes).
#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes` starting at `*pos`, advancing `*pos`.
/// Returns `None` on truncated input or overflow past `usize`.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<usize> {
    let mut v: usize = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= usize::BITS {
            return None;
        }
        v |= ((b & 0x7f) as usize).checked_shl(shift)?;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// A support pattern compressed as delta/RLE varints over its sorted set-bit
/// indices.
///
/// Construction is only possible through the encoders (or the validating
/// [`from_encoded`](Self::from_encoded)), so every instance holds a
/// canonical encoding; `PartialEq`/`Hash` therefore compare as sets.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CompressedPattern {
    bytes: Vec<u8>,
    count: u32,
}

impl CompressedPattern {
    /// Encodes a pattern from strictly ascending set-bit indices.
    ///
    /// # Panics
    /// If the indices are not strictly ascending.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut bytes = Vec::new();
        let mut count: u32 = 0;
        let mut cursor = 0usize; // one past the end of the previous run
        let mut run: Option<(usize, usize)> = None; // (start, len)
        for i in iter {
            count += 1;
            match run {
                None => run = Some((i, 1)),
                Some((s, len)) if i == s + len => run = Some((s, len + 1)),
                Some((s, len)) => {
                    write_varint(&mut bytes, s - cursor);
                    write_varint(&mut bytes, len - 1);
                    cursor = s + len;
                    assert!(i >= cursor, "indices must be strictly ascending");
                    run = Some((i, 1));
                }
            }
        }
        if let Some((s, len)) = run {
            write_varint(&mut bytes, s - cursor);
            write_varint(&mut bytes, len - 1);
        }
        CompressedPattern { bytes, count }
    }

    /// Encodes a [`DynPattern`].
    pub fn from_dyn(p: &DynPattern) -> Self {
        Self::from_indices(p.iter_ones())
    }

    /// Encodes any inline [`BitPattern`].
    pub fn from_pattern<P: BitPattern>(p: &P) -> Self {
        Self::from_indices(p.ones())
    }

    /// Decodes into a [`DynPattern`].
    pub fn to_dyn(&self) -> DynPattern {
        let mut p = DynPattern::default();
        for i in self.iter_ones() {
            p.set(i);
        }
        p
    }

    /// Decodes into an inline [`BitPattern`]. The caller must know the
    /// target width is wide enough; out-of-range bits panic in debug builds
    /// exactly as a direct `set` would.
    pub fn to_pattern<P: BitPattern>(&self) -> P {
        let mut p = P::empty();
        for i in self.iter_ones() {
            p.set(i);
        }
        p
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the pattern has no set bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tests bit `i` (sequential scan — intended for tests and spot checks,
    /// not hot loops).
    pub fn get(&self, i: usize) -> bool {
        self.iter_ones().take_while(|&b| b <= i).any(|b| b == i)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones { bytes: &self.bytes, pos: 0, cursor: 0, run_left: 0 }
    }

    /// Whether every set bit of `self` is set in `rhs` (merge walk over the
    /// two decoded streams; no decompression buffer).
    pub fn is_subset_of(&self, rhs: &Self) -> bool {
        if self.count > rhs.count {
            return false;
        }
        let mut b = rhs.iter_ones();
        let mut next_b = b.next();
        'outer: for a in self.iter_ones() {
            while let Some(v) = next_b {
                match v.cmp(&a) {
                    std::cmp::Ordering::Less => next_b = b.next(),
                    std::cmp::Ordering::Equal => {
                        next_b = b.next();
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Set union (merge walk; result is re-encoded canonically).
    pub fn union(&self, rhs: &Self) -> Self {
        let mut a = self.iter_ones().peekable();
        let mut b = rhs.iter_ones().peekable();
        Self::from_indices(std::iter::from_fn(move || match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) if x == y => {
                a.next();
                b.next()
            }
            (Some(&x), Some(&y)) if x < y => a.next(),
            (Some(_), Some(_)) => b.next(),
            (Some(_), None) => a.next(),
            (None, _) => b.next(),
        }))
    }

    /// Set intersection (merge walk; result is re-encoded canonically).
    pub fn intersect(&self, rhs: &Self) -> Self {
        let mut b = rhs.iter_ones().peekable();
        Self::from_indices(self.iter_ones().filter(move |&x| {
            while b.peek().is_some_and(|&y| y < x) {
                b.next();
            }
            b.peek() == Some(&x)
        }))
    }

    /// The canonical encoded byte stream (for stripe serialization).
    #[inline]
    pub fn encoded(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the encoded byte stream.
    #[inline]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Heap footprint of this pattern in bytes.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.bytes.capacity() + std::mem::size_of::<Self>()
    }

    /// Rebuilds a pattern from a previously [`encoded`](Self::encoded) byte
    /// stream, validating that the stream decodes cleanly to exactly
    /// `count` strictly ascending bits. Returns `None` on any malformation
    /// (truncated varint, trailing garbage, count mismatch).
    pub fn from_encoded(bytes: Vec<u8>, count: u32) -> Option<Self> {
        let mut pos = 0usize;
        let mut decoded: u32 = 0;
        while pos < bytes.len() {
            let _gap = read_varint(&bytes, &mut pos)?;
            let run_m1 = read_varint(&bytes, &mut pos)?;
            decoded = decoded.checked_add(u32::try_from(run_m1).ok()?.checked_add(1)?)?;
        }
        (decoded == count).then_some(CompressedPattern { bytes, count })
    }
}

impl std::fmt::Debug for CompressedPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompressedPattern{{")?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Ascending iterator over the set bits of a [`CompressedPattern`].
pub struct Ones<'a> {
    bytes: &'a [u8],
    pos: usize,
    cursor: usize,
    run_left: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.run_left == 0 {
            if self.pos >= self.bytes.len() {
                return None;
            }
            // Encoders guarantee well-formed streams; a validating decode
            // for untrusted bytes lives in `from_encoded`.
            let gap = read_varint(self.bytes, &mut self.pos)?;
            let run_m1 = read_varint(self.bytes, &mut self.pos)?;
            self.cursor += gap;
            self.run_left = run_m1 + 1;
        }
        let i = self.cursor;
        self.cursor += 1;
        self.run_left -= 1;
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynp(bits: &[usize]) -> DynPattern {
        let mut p = DynPattern::default();
        for &b in bits {
            p.set(b);
        }
        p
    }

    #[test]
    fn round_trip_simple() {
        for bits in [&[][..], &[0], &[5], &[0, 1, 2], &[3, 7, 8, 9, 200], &[63, 64, 65, 1000]] {
            let c = CompressedPattern::from_indices(bits.iter().copied());
            assert_eq!(c.iter_ones().collect::<Vec<_>>(), bits, "bits {bits:?}");
            assert_eq!(c.count() as usize, bits.len());
            assert_eq!(c.to_dyn(), dynp(bits));
        }
    }

    #[test]
    fn runs_compress_well() {
        // 64 consecutive bits: one (gap, run) token, ≤ 3 bytes.
        let c = CompressedPattern::from_indices(100..164);
        assert_eq!(c.count(), 64);
        assert!(c.encoded_len() <= 3, "got {} bytes", c.encoded_len());
    }

    #[test]
    fn canonical_equality_and_subset() {
        let a = CompressedPattern::from_indices([1, 2, 3, 64]);
        let b = CompressedPattern::from_dyn(&dynp(&[1, 2, 3, 64]));
        assert_eq!(a, b);
        let sup = CompressedPattern::from_indices([0, 1, 2, 3, 64, 90]);
        assert!(a.is_subset_of(&sup));
        assert!(!sup.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(CompressedPattern::default().is_subset_of(&a));
    }

    #[test]
    fn union_intersect_match_dyn() {
        let xs = [1usize, 5, 6, 7, 130];
        let ys = [0usize, 6, 130, 131];
        let a = CompressedPattern::from_indices(xs);
        let b = CompressedPattern::from_indices(ys);
        assert_eq!(a.union(&b).to_dyn(), dynp(&xs).union(&dynp(&ys)));
        assert_eq!(a.intersect(&b).to_dyn(), dynp(&xs).intersect(&dynp(&ys)));
    }

    #[test]
    fn from_encoded_validates() {
        let c = CompressedPattern::from_indices([2, 3, 9]);
        let ok = CompressedPattern::from_encoded(c.encoded().to_vec(), c.count());
        assert_eq!(ok.as_ref(), Some(&c));
        // Wrong count is rejected.
        assert!(CompressedPattern::from_encoded(c.encoded().to_vec(), 7).is_none());
        // Truncated stream is rejected.
        assert!(CompressedPattern::from_encoded(vec![0x80], 1).is_none());
    }

    #[test]
    fn inline_pattern_round_trip() {
        let p = crate::Pattern2::from_indices([0, 63, 64, 127]);
        let c = CompressedPattern::from_pattern(&p);
        assert_eq!(c.to_pattern::<crate::Pattern2>(), p);
    }
}
