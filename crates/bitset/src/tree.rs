//! Bit-pattern trees for sub/superset queries over support patterns.
//!
//! The combinatorial elementarity test asks, for every candidate support
//! `q`, whether *any* stored support is a subset of `q`. The classical
//! implementation scans all stored patterns — `O(|stored|)` per query, which
//! is the dominant cost of the adjacency ablation and of duplicate dropping
//! on large iterations. This module implements the bit-pattern-tree
//! technique of Terzer & Stelling (*Bioinformatics* 2008): a binary tree
//! that splits the stored patterns on a discriminating bit per node. A
//! subset query at a node split on bit `b` must always search the
//! bit-**unset** child (patterns without `b` can still be subsets of
//! anything), but may skip the bit-**set** child entirely whenever the query
//! lacks `b`.
//!
//! Single-bit pruning alone degrades on *dense* support populations (late
//! nullspace iterations, where supports carry most bits), so every subtree
//! additionally records the **intersection** and **union** of the patterns
//! beneath it plus min/max popcounts. A subset search prunes a whole
//! subtree when the intersection mask is not a subset of the query (some
//! bit is set in *every* stored pattern but missing from the query) or when
//! the smallest stored popcount already exceeds the query's; superset
//! searches prune on the dual conditions (union mask, max popcount).
//!
//! The tree is generic over [`TreePattern`], implemented by every inline
//! [`Pattern`](crate::Pattern) width (via [`BitPattern`]) and by
//! [`DynPattern`].

use crate::{BitPattern, DynPattern};

/// The pattern operations the tree needs. Blanket-implemented for every
/// [`BitPattern`]; implemented directly for [`DynPattern`].
pub trait TreePattern: Clone + PartialEq {
    /// Tests bit `i`.
    fn bit(&self, i: usize) -> bool;
    /// Whether every set bit of `self` is set in `rhs`.
    fn subset_of(&self, rhs: &Self) -> bool;
    /// Set bit indices, ascending.
    fn one_bits(&self) -> Vec<usize>;
    /// Popcount.
    fn count_bits(&self) -> u32;
    /// Bitwise intersection.
    fn and(&self, rhs: &Self) -> Self;
    /// Bitwise union.
    fn or(&self, rhs: &Self) -> Self;
}

impl<P: BitPattern> TreePattern for P {
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self.get(i)
    }
    #[inline]
    fn subset_of(&self, rhs: &Self) -> bool {
        self.is_subset_of(rhs)
    }
    fn one_bits(&self) -> Vec<usize> {
        self.ones()
    }
    #[inline]
    fn count_bits(&self) -> u32 {
        self.count()
    }
    #[inline]
    fn and(&self, rhs: &Self) -> Self {
        self.intersect(rhs)
    }
    #[inline]
    fn or(&self, rhs: &Self) -> Self {
        self.union(rhs)
    }
}

impl TreePattern for DynPattern {
    #[inline]
    fn bit(&self, i: usize) -> bool {
        self.get(i)
    }
    #[inline]
    fn subset_of(&self, rhs: &Self) -> bool {
        DynPattern::is_subset_of(self, rhs)
    }
    fn one_bits(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
    #[inline]
    fn count_bits(&self) -> u32 {
        self.count()
    }
    #[inline]
    fn and(&self, rhs: &Self) -> Self {
        self.intersect(rhs)
    }
    #[inline]
    fn or(&self, rhs: &Self) -> Self {
        self.union(rhs)
    }
}

/// Patterns per leaf before a split is attempted. Leaves this small are
/// cheaper to scan linearly than to descend further.
const LEAF_MAX: usize = 8;

#[derive(Debug, Clone)]
enum Node<P> {
    /// Inner node split on `bit`: patterns with the bit set live under
    /// `one`, the rest under `zero` (indices into the arena).
    Branch {
        bit: u32,
        zero: u32,
        one: u32,
    },
    Leaf(Vec<P>),
}

/// Subtree pruning metadata, kept in an arena parallel to the nodes.
#[derive(Debug, Clone)]
struct Meta<P> {
    /// AND of every pattern in the subtree. If this is not a subset of a
    /// query, no stored pattern can be either.
    and_mask: P,
    /// OR of every pattern in the subtree. A query with a bit outside it
    /// has no stored superset below.
    or_mask: P,
    /// Smallest popcount in the subtree.
    min_count: u32,
    /// Largest popcount in the subtree.
    max_count: u32,
}

fn meta_of<P: TreePattern>(pats: &[P]) -> Meta<P> {
    let mut it = pats.iter();
    let first = it.next().expect("meta of a non-empty pattern set");
    let c0 = first.count_bits();
    let mut meta =
        Meta { and_mask: first.clone(), or_mask: first.clone(), min_count: c0, max_count: c0 };
    for p in it {
        meta.and_mask = meta.and_mask.and(p);
        meta.or_mask = meta.or_mask.or(p);
        let c = p.count_bits();
        meta.min_count = meta.min_count.min(c);
        meta.max_count = meta.max_count.max(c);
    }
    meta
}

impl<P: TreePattern> Meta<P> {
    fn absorb(&mut self, p: &P) {
        self.and_mask = self.and_mask.and(p);
        self.or_mask = self.or_mask.or(p);
        let c = p.count_bits();
        self.min_count = self.min_count.min(c);
        self.max_count = self.max_count.max(c);
    }
}

/// A static-topology bit-pattern tree over support patterns.
///
/// Built in bulk with [`PatternTree::from_patterns`] (which picks the most
/// discriminating bit per node) or grown with [`PatternTree::insert`]
/// (leaves split lazily). Queries never allocate.
#[derive(Debug, Clone, Default)]
pub struct PatternTree<P> {
    /// Arena; index 0 is the root when `len > 0`.
    nodes: Vec<Node<P>>,
    /// Pruning metadata, indexed like `nodes`.
    metas: Vec<Meta<P>>,
    len: usize,
}

/// Picks the bit whose set/unset split of `pats` is closest to balanced.
/// Candidate bits are exactly those set in the union but not the
/// intersection; returns `None` when no bit discriminates (all patterns
/// equal). Ties break toward the lowest bit index.
fn discriminating_bit<P: TreePattern>(pats: &[P], meta: &Meta<P>) -> Option<u32> {
    let n = pats.len();
    let mut best: Option<(usize, u32)> = None; // (|2c - n|, bit)
    for b in meta.or_mask.one_bits() {
        if meta.and_mask.bit(b) {
            continue; // set in every pattern: does not discriminate
        }
        let c = pats.iter().filter(|p| p.bit(b)).count();
        let score = (2 * c).abs_diff(n);
        if best.is_none_or(|(s, _)| score < s) {
            best = Some((score, b as u32));
        }
    }
    best.map(|(_, bit)| bit)
}

impl<P: TreePattern> PatternTree<P> {
    /// The empty tree.
    pub fn new() -> Self {
        PatternTree { nodes: Vec::new(), metas: Vec::new(), len: 0 }
    }

    /// Number of stored patterns (duplicates each count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Builds a tree over `pats`, choosing the most discriminating bit at
    /// every node.
    pub fn from_patterns(pats: Vec<P>) -> Self {
        let mut tree = PatternTree { nodes: Vec::new(), metas: Vec::new(), len: pats.len() };
        if !pats.is_empty() {
            tree.build_node(pats);
        }
        tree
    }

    /// Recursively builds the subtree for `pats`; returns its arena index.
    fn build_node(&mut self, pats: Vec<P>) -> u32 {
        let meta = meta_of(&pats);
        if pats.len() <= LEAF_MAX {
            return self.push(Node::Leaf(pats), meta);
        }
        let Some(bit) = discriminating_bit(&pats, &meta) else {
            // All remaining patterns are identical: an oversized leaf is
            // correct and scans in O(1) practical time (first hit returns).
            return self.push(Node::Leaf(pats), meta);
        };
        let (ones, zeros): (Vec<P>, Vec<P>) = pats.into_iter().partition(|p| p.bit(bit as usize));
        // Reserve the branch slot before the children so the root stays 0.
        let slot = self.push(Node::Branch { bit, zero: 0, one: 0 }, meta);
        let zero = self.build_node(zeros);
        let one = self.build_node(ones);
        self.nodes[slot as usize] = Node::Branch { bit, zero, one };
        slot
    }

    fn push(&mut self, node: Node<P>, meta: Meta<P>) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.metas.push(meta);
        idx
    }

    /// Inserts one pattern, splitting the target leaf when it overflows.
    pub fn insert(&mut self, p: P) {
        self.len += 1;
        if self.nodes.is_empty() {
            let meta = meta_of(std::slice::from_ref(&p));
            self.nodes.push(Node::Leaf(vec![p]));
            self.metas.push(meta);
            return;
        }
        let mut at = 0u32;
        loop {
            self.metas[at as usize].absorb(&p);
            match &mut self.nodes[at as usize] {
                Node::Branch { bit, zero, one } => {
                    at = if p.bit(*bit as usize) { *one } else { *zero };
                }
                Node::Leaf(pats) => {
                    pats.push(p);
                    if pats.len() > LEAF_MAX {
                        let pats = std::mem::take(pats);
                        let meta = &self.metas[at as usize];
                        if let Some(bit) = discriminating_bit(&pats, meta) {
                            let (ones, zeros): (Vec<P>, Vec<P>) =
                                pats.into_iter().partition(|q| q.bit(bit as usize));
                            let zero_meta = meta_of(&zeros);
                            let one_meta = meta_of(&ones);
                            let zero = self.push(Node::Leaf(zeros), zero_meta);
                            let one = self.push(Node::Leaf(ones), one_meta);
                            self.nodes[at as usize] = Node::Branch { bit, zero, one };
                        } else {
                            self.nodes[at as usize] = Node::Leaf(pats);
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Whether any stored pattern is a subset of `query` (equality counts).
    pub fn contains_subset_of(&self, query: &P) -> bool {
        !self.nodes.is_empty() && self.subset_search(0, query, query.count_bits(), false)
    }

    /// Whether any stored pattern is a **proper** subset of `query`
    /// (subset and not equal).
    pub fn contains_proper_subset_of(&self, query: &P) -> bool {
        !self.nodes.is_empty() && self.subset_search(0, query, query.count_bits(), true)
    }

    fn subset_search(&self, at: u32, query: &P, qcount: u32, proper: bool) -> bool {
        let meta = &self.metas[at as usize];
        // A subset has popcount ≤ the query's (strictly less when proper),
        // and every all-stored bit must appear in the query.
        if meta.min_count + u32::from(proper) > qcount || !meta.and_mask.subset_of(query) {
            return false;
        }
        match &self.nodes[at as usize] {
            Node::Branch { bit, zero, one } => {
                // Patterns under `one` all have `bit` set: they can only be
                // subsets of queries that also have it. Patterns under
                // `zero` are unconstrained — always searched.
                if query.bit(*bit as usize) && self.subset_search(*one, query, qcount, proper) {
                    return true;
                }
                self.subset_search(*zero, query, qcount, proper)
            }
            Node::Leaf(pats) => pats.iter().any(|p| p.subset_of(query) && (!proper || p != query)),
        }
    }

    /// Whether `query` itself is stored (exact membership).
    pub fn contains(&self, query: &P) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let qcount = query.count_bits();
        let mut at = 0u32;
        loop {
            let meta = &self.metas[at as usize];
            if qcount < meta.min_count
                || qcount > meta.max_count
                || !meta.and_mask.subset_of(query)
                || !query.subset_of(&meta.or_mask)
            {
                return false;
            }
            match &self.nodes[at as usize] {
                Node::Branch { bit, zero, one } => {
                    at = if query.bit(*bit as usize) { *one } else { *zero };
                }
                Node::Leaf(pats) => return pats.iter().any(|p| p == query),
            }
        }
    }

    /// Whether any stored pattern is a superset of `query` (equality
    /// counts). The pruning dual of [`PatternTree::contains_subset_of`].
    pub fn contains_superset_of(&self, query: &P) -> bool {
        !self.nodes.is_empty() && self.superset_search(0, query, query.count_bits())
    }

    fn superset_search(&self, at: u32, query: &P, qcount: u32) -> bool {
        let meta = &self.metas[at as usize];
        // A superset has popcount ≥ the query's and must cover every query
        // bit, so the query must sit inside the subtree's union.
        if meta.max_count < qcount || !query.subset_of(&meta.or_mask) {
            return false;
        }
        match &self.nodes[at as usize] {
            Node::Branch { bit, zero, one } => {
                // Supersets must carry every query bit: the zero child can
                // be skipped whenever the query has this node's bit.
                if self.superset_search(*one, query, qcount) {
                    return true;
                }
                !query.bit(*bit as usize) && self.superset_search(*zero, query, qcount)
            }
            Node::Leaf(pats) => pats.iter().any(|p| query.subset_of(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern1, Pattern2};

    fn naive_subset<P: TreePattern>(pats: &[P], q: &P, proper: bool) -> bool {
        pats.iter().any(|p| p.subset_of(q) && (!proper || p != q))
    }

    fn pat(bits: &[usize]) -> Pattern2 {
        Pattern2::from_indices(bits.iter().copied())
    }

    #[test]
    fn empty_tree_matches_nothing() {
        let t = PatternTree::<Pattern1>::new();
        assert!(t.is_empty());
        assert!(!t.contains_subset_of(&Pattern1::from_indices([0, 1])));
        assert!(!t.contains(&Pattern1::empty()));
        assert!(!t.contains_superset_of(&Pattern1::empty()));
    }

    #[test]
    fn subset_queries_match_naive_scan() {
        // Deterministic pseudo-random population, wide enough to split.
        let mut pats = Vec::new();
        let mut x = 0x1234_5678_u64;
        for _ in 0..300 {
            let mut bits = Vec::new();
            for _ in 0..5 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bits.push((x >> 33) as usize % 100);
            }
            pats.push(pat(&bits));
        }
        let tree = PatternTree::from_patterns(pats.clone());
        assert_eq!(tree.len(), 300);
        for q in &pats {
            assert!(tree.contains_subset_of(q), "every stored pattern subsets itself");
            assert!(tree.contains(q));
            assert!(tree.contains_superset_of(q));
        }
        let mut probes = pats.clone();
        probes.push(pat(&[1, 2, 3]));
        probes.push(Pattern2::empty());
        probes.push(pat(&(0..40).collect::<Vec<_>>()));
        for q in &probes {
            assert_eq!(tree.contains_subset_of(q), naive_subset(&pats, q, false));
            assert_eq!(tree.contains_proper_subset_of(q), naive_subset(&pats, q, true));
            assert_eq!(tree.contains_superset_of(q), pats.iter().any(|p| q.is_subset_of(p)));
        }
    }

    #[test]
    fn dense_populations_prune_by_masks_and_counts() {
        // Dense patterns (most bits set) defeat single-bit pruning; the
        // intersection-mask and popcount bounds must still give correct
        // answers. Population: all-but-a-few-bits patterns over 60 bits.
        let all: Vec<usize> = (0..60).collect();
        let mut pats = Vec::new();
        for i in 0..200usize {
            let drop = [i % 60, (i * 7 + 3) % 60, (i * 13 + 11) % 60];
            let bits: Vec<usize> = all.iter().copied().filter(|b| !drop.contains(b)).collect();
            pats.push(pat(&bits));
        }
        let tree = PatternTree::from_patterns(pats.clone());
        let mut probes = pats.clone();
        probes.push(pat(&all)); // full set: everything subsets it
        probes.push(pat(&all[..50]));
        probes.push(Pattern2::empty());
        for q in &probes {
            assert_eq!(tree.contains_subset_of(q), naive_subset(&pats, q, false));
            assert_eq!(tree.contains_proper_subset_of(q), naive_subset(&pats, q, true));
            assert_eq!(tree.contains_superset_of(q), pats.iter().any(|p| q.is_subset_of(p)));
            assert_eq!(tree.contains(q), pats.contains(q));
        }
    }

    #[test]
    fn proper_subset_excludes_equality() {
        let stored = vec![pat(&[1, 2])];
        let tree = PatternTree::from_patterns(stored);
        assert!(tree.contains_subset_of(&pat(&[1, 2])));
        assert!(!tree.contains_proper_subset_of(&pat(&[1, 2])));
        assert!(tree.contains_proper_subset_of(&pat(&[1, 2, 3])));
    }

    #[test]
    fn incremental_insert_agrees_with_bulk_build() {
        let pats: Vec<Pattern2> =
            (0..120).map(|i| pat(&[i % 7, (i * 3) % 50, (i * 11) % 90])).collect();
        let bulk = PatternTree::from_patterns(pats.clone());
        let mut grown = PatternTree::new();
        for p in &pats {
            grown.insert(*p);
        }
        assert_eq!(grown.len(), bulk.len());
        for i in 0..128 {
            let q = pat(&[i % 7, (i * 3) % 50, (i * 11) % 90, (i * 13) % 100]);
            assert_eq!(grown.contains_subset_of(&q), bulk.contains_subset_of(&q));
            assert_eq!(grown.contains(&q), bulk.contains(&q));
        }
    }

    #[test]
    fn duplicate_patterns_build_an_oversized_leaf() {
        // No discriminating bit exists: the tree must terminate with a
        // single leaf instead of recursing forever.
        let pats = vec![pat(&[4, 9]); 50];
        let tree = PatternTree::from_patterns(pats);
        assert_eq!(tree.len(), 50);
        assert!(tree.contains_subset_of(&pat(&[4, 9, 12])));
        assert!(!tree.contains_proper_subset_of(&pat(&[4, 9])));
    }

    #[test]
    fn dyn_pattern_trees_work() {
        let mk = |bits: &[usize]| {
            let mut p = crate::DynPattern::with_capacity(256);
            for &b in bits {
                p.set(b);
            }
            p
        };
        let pats: Vec<crate::DynPattern> =
            (0..60).map(|i| mk(&[i % 5, 100 + (i * 7) % 90, 200 + i % 3])).collect();
        let tree = PatternTree::from_patterns(pats.clone());
        for q in &pats {
            assert!(tree.contains_subset_of(q));
            assert!(!tree.contains_proper_subset_of(q) || naive_subset(&pats, q, true));
        }
        assert!(!tree.contains_subset_of(&mk(&[250])));
    }

    #[test]
    fn empty_pattern_is_subset_of_everything() {
        let mut tree = PatternTree::new();
        tree.insert(Pattern1::empty());
        assert!(tree.contains_subset_of(&Pattern1::from_indices([5])));
        assert!(tree.contains_subset_of(&Pattern1::empty()));
        assert!(!tree.contains_proper_subset_of(&Pattern1::empty()));
    }
}
