//! Vectorized batch kernels for the candidate-generation hot path.
//!
//! The Nullspace Algorithm's inner loop streams one positive mode's pattern
//! pair (`pat`, tail support `sup`) against dense arrays of negative-side
//! patterns, computing for every pair the adjacency pre-filter bound
//!
//! ```text
//! bound[i] = popcount(pat | negs[i]) + popcount(sup ^ nsups[i])
//! ```
//!
//! Because the positive side is fixed across a whole block, the sweep is a
//! pure data-parallel map over contiguous `[u64; W]` patterns — exactly the
//! shape SIMD wants. This module provides that sweep plus the two batch
//! primitives the engine's other scans reduce to ([`union_counts`] /
//! [`union_count_4`] and [`is_subset_any`]), each with an AVX2 path, an
//! SSE2 path and a portable scalar fallback selected once per process by
//! [`detect_tier`].
//!
//! Every tier is **bit-identical**: the vector paths compute the same word
//! ops and popcounts as the scalar reference, so results never depend on
//! the host CPU. The property suite in `tests/kernel_props.rs` checks each
//! primitive against the scalar ops across widths 1–8 and ragged tails.
//!
//! Safety: the x86 paths view `&[Pattern<W>]` as a flat `&[u64]`, which is
//! sound because [`Pattern`] is `#[repr(transparent)]` over `[u64; W]`.
//! Tier clamping ([`KernelTier::clamp`]) guarantees a vector path is only
//! entered when the CPU reports the feature, so the `unsafe` intrinsic
//! blocks are never reached on unsupported hardware.

use crate::Pattern;
use std::fmt;
use std::sync::OnceLock;

/// Instruction-set tier a kernel call executes at.
///
/// Ordered by capability so [`KernelTier::clamp`] can take a `min` against
/// the detected tier: a caller may *request* a tier (e.g. a forced-scalar
/// differential run), but never executes above what the CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable word-at-a-time reference path (always available).
    Scalar,
    /// 128-bit `std::arch` path (x86-64 baseline).
    Sse2,
    /// 256-bit `std::arch` path with `vpshufb` nibble-LUT popcounts.
    Avx2,
}

impl KernelTier {
    /// Stable lowercase name, used in stats, traces and checkpoints.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
        }
    }

    /// The highest tier ≤ `self` that the running CPU actually supports.
    #[inline]
    pub fn clamp(self) -> KernelTier {
        self.min(detect_tier())
    }
}

impl fmt::Display for KernelTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Best tier the running CPU supports, detected once per process.
pub fn detect_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelTier::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return KernelTier::Sse2;
            }
        }
        KernelTier::Scalar
    })
}

/// Negative-side block length (in pairs) for a pattern of `pattern_bytes`.
///
/// Chosen so one block's `negs` + `nsups` streams stay within half of a
/// 32 KiB L1D (≤ 16 KiB combined), leaving the other half for the positive
/// row, the bounds buffer and the survivor output: 1024 pairs at W=1, 512
/// at W=2, 256 at W=4.
pub fn block_pairs(pattern_bytes: usize) -> usize {
    (8 * 1024 / pattern_bytes.max(1)).clamp(16, 4096)
}

/// Views a pattern slice as its flat word storage.
///
/// Sound because `Pattern<W>` is `#[repr(transparent)]` over `[u64; W]`:
/// `len` patterns are exactly `len * W` contiguous `u64`s with the same
/// alignment as `u64`.
#[inline]
fn flat<const W: usize>(pats: &[Pattern<W>]) -> &[u64] {
    // SAFETY: see above — repr(transparent) guarantees layout identity.
    unsafe { std::slice::from_raw_parts(pats.as_ptr().cast::<u64>(), pats.len() * W) }
}

/// Fused union+xor popcount sweep: `out[i] = (pat | negs[i]).count() +
/// (sup ^ nsups[i]).count()` for every pair in the block.
///
/// `out` is cleared and resized to `negs.len()`.
pub fn bounds_sweep<const W: usize>(
    tier: KernelTier,
    pat: &Pattern<W>,
    sup: &Pattern<W>,
    negs: &[Pattern<W>],
    nsups: &[Pattern<W>],
    out: &mut Vec<u32>,
) {
    assert_eq!(negs.len(), nsups.len(), "pattern/support blocks must pair up");
    let n = negs.len();
    out.clear();
    out.resize(n, 0);
    match tier.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            // SAFETY: clamp() verified AVX2 via is_x86_feature_detected;
            // all slices are in-bounds (flat() preserves lengths, out has n).
            unsafe { x86::bounds_avx2(pat.words(), sup.words(), flat(negs), flat(nsups), W, out) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => {
            // SAFETY: SSE2 is part of the x86-64 baseline and clamp()
            // re-checked it; slice lengths as above.
            unsafe { x86::bounds_sse2(pat.words(), sup.words(), flat(negs), flat(nsups), W, out) }
        }
        _ => {
            for i in 0..n {
                out[i] = pat.union_count(&negs[i]) + sup.xor_count(&nsups[i]);
            }
        }
    }
}

/// Runs the adjacency pre-filter over a block: computes [`bounds_sweep`]
/// into `bounds`, then appends `base + i` to `hits` for every pair whose
/// bound is ≤ `max`. Returns the number of hits appended.
///
/// `bounds` is caller-provided scratch (arena-backed in the engine) so the
/// sweep allocates nothing in steady state; `hits` is appended to, not
/// cleared.
#[allow(clippy::too_many_arguments)] // hot-path API: scratch + output buffers ride alongside the block operands by design
pub fn prefilter_hits<const W: usize>(
    tier: KernelTier,
    pat: &Pattern<W>,
    sup: &Pattern<W>,
    negs: &[Pattern<W>],
    nsups: &[Pattern<W>],
    max: u32,
    base: u32,
    bounds: &mut Vec<u32>,
    hits: &mut Vec<u32>,
) -> usize {
    bounds_sweep(tier, pat, sup, negs, nsups, bounds);
    let before = hits.len();
    for (i, &b) in bounds.iter().enumerate() {
        if b <= max {
            hits.push(base + i as u32);
        }
    }
    hits.len() - before
}

/// Batch union popcount: `out[i] = (a | bs[i]).count()`.
///
/// `out` is cleared and resized to `bs.len()`.
pub fn union_counts<const W: usize>(
    tier: KernelTier,
    a: &Pattern<W>,
    bs: &[Pattern<W>],
    out: &mut Vec<u32>,
) {
    let n = bs.len();
    out.clear();
    out.resize(n, 0);
    match tier.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            // SAFETY: AVX2 verified by clamp(); slices in-bounds.
            unsafe { x86::union_counts_avx2(a.words(), flat(bs), W, out) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => {
            // SAFETY: SSE2 verified by clamp(); slices in-bounds.
            unsafe { x86::union_counts_sse2(a.words(), flat(bs), W, out) }
        }
        _ => {
            for i in 0..n {
                out[i] = a.union_count(&bs[i]);
            }
        }
    }
}

/// Four-lane union popcount: `[ (a|bs[0]).count(), …, (a|bs[3]).count() ]`.
///
/// The fixed-arity form of [`union_counts`] — at `W = 1` the whole batch is
/// a single 256-bit `or` + nibble-LUT popcount.
pub fn union_count_4<const W: usize>(
    tier: KernelTier,
    a: &Pattern<W>,
    bs: &[Pattern<W>; 4],
) -> [u32; 4] {
    let mut out = [0u32; 4];
    match tier.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            // SAFETY: AVX2 verified by clamp(); bs is exactly 4 patterns.
            unsafe { x86::union_counts_avx2(a.words(), flat(bs), W, &mut out) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => {
            // SAFETY: SSE2 verified by clamp(); bs is exactly 4 patterns.
            unsafe { x86::union_counts_sse2(a.words(), flat(bs), W, &mut out) }
        }
        _ => {
            for i in 0..4 {
                out[i] = a.union_count(&bs[i]);
            }
        }
    }
    out
}

/// Whether any pattern in `cands` is a subset of `sup`.
///
/// The batch form of the naive adjacency scan's early-exit subset probe:
/// at `W = 1` four candidates are tested per 256-bit `andnot`.
pub fn is_subset_any<const W: usize>(
    tier: KernelTier,
    cands: &[Pattern<W>],
    sup: &Pattern<W>,
) -> bool {
    match tier.clamp() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            // SAFETY: AVX2 verified by clamp(); slices in-bounds.
            unsafe { x86::subset_any_avx2(flat(cands), sup.words(), W) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => {
            // SAFETY: SSE2 verified by clamp(); slices in-bounds.
            unsafe { x86::subset_any_sse2(flat(cands), sup.words(), W) }
        }
        _ => cands.iter().any(|c| c.is_subset_of(sup)),
    }
}

#[cfg(target_arch = "x86_64")]
// Index loops are kept deliberately: they mirror the `i * w + k` pointer
// arithmetic of the flat slabs, which iterator chains would obscure.
#[allow(clippy::needless_range_loop)]
mod x86 {
    //! `std::arch` implementations. Every function here is `unsafe fn`
    //! with `#[target_feature]`; callers must have verified the feature
    //! (done centrally by `KernelTier::clamp`) and pass slices whose
    //! lengths satisfy `pat.len() == sup.len() == w` and
    //! `negs.len() == nsups.len() == out.len() * w`.

    use std::arch::x86_64::*;

    /// Per-byte popcount via the classic `vpshufb` nibble lookup.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_bytes(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    }

    /// Sums the four 64-bit lanes of `v`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes[0].wrapping_add(lanes[1]).wrapping_add(lanes[2]).wrapping_add(lanes[3])
    }

    /// Stores the four 64-bit lanes of `v`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lanes_epi64(v: __m256i) -> [u64; 4] {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes
    }

    /// AVX2 fused bound sweep. See `bounds_sweep` for the contract.
    ///
    /// Byte counts of the `or` and `xor` halves are added *before* the
    /// `psadbw` reduction: each byte holds ≤ 8 + 8 = 16, far below 255,
    /// so one `_mm256_sad_epu8` yields the fused per-lane sum directly.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bounds_avx2(
        pat: &[u64],
        sup: &[u64],
        negs: &[u64],
        nsups: &[u64],
        w: usize,
        out: &mut [u32],
    ) {
        let n = out.len();
        let zero = _mm256_setzero_si256();
        match w {
            1 => {
                // Four pairs per iteration: one 256-bit load per stream,
                // lane k of the sad result is pair i+k's fused bound.
                let vp = _mm256_set1_epi64x(pat[0] as i64);
                let vs = _mm256_set1_epi64x(sup[0] as i64);
                let mut i = 0;
                while i + 4 <= n {
                    // SAFETY (loads): i+4 <= n and the flat slices hold
                    // exactly n words at w=1, so 32-byte loads at offset i
                    // stay in bounds. loadu tolerates any alignment.
                    let vn = _mm256_loadu_si256(negs.as_ptr().add(i).cast());
                    let vx = _mm256_loadu_si256(nsups.as_ptr().add(i).cast());
                    let cnt = _mm256_add_epi8(
                        popcnt_bytes(_mm256_or_si256(vp, vn)),
                        popcnt_bytes(_mm256_xor_si256(vs, vx)),
                    );
                    let lanes = lanes_epi64(_mm256_sad_epu8(cnt, zero));
                    for k in 0..4 {
                        out[i + k] = lanes[k] as u32;
                    }
                    i += 4;
                }
                while i < n {
                    out[i] = (pat[0] | negs[i]).count_ones() + (sup[0] ^ nsups[i]).count_ones();
                    i += 1;
                }
            }
            2 => {
                // Two pairs per iteration: broadcast the 128-bit positive
                // side into both halves; sad lanes map to
                // [p_i.w0, p_i.w1, p_{i+1}.w0, p_{i+1}.w1].
                let vp = _mm256_broadcastsi128_si256(_mm_loadu_si128(pat.as_ptr().cast()));
                let vs = _mm256_broadcastsi128_si256(_mm_loadu_si128(sup.as_ptr().cast()));
                let mut i = 0;
                while i + 2 <= n {
                    let vn = _mm256_loadu_si256(negs.as_ptr().add(2 * i).cast());
                    let vx = _mm256_loadu_si256(nsups.as_ptr().add(2 * i).cast());
                    let cnt = _mm256_add_epi8(
                        popcnt_bytes(_mm256_or_si256(vp, vn)),
                        popcnt_bytes(_mm256_xor_si256(vs, vx)),
                    );
                    let lanes = lanes_epi64(_mm256_sad_epu8(cnt, zero));
                    out[i] = (lanes[0] + lanes[1]) as u32;
                    out[i + 1] = (lanes[2] + lanes[3]) as u32;
                    i += 2;
                }
                if i < n {
                    out[i] = (pat[0] | negs[2 * i]).count_ones()
                        + (pat[1] | negs[2 * i + 1]).count_ones()
                        + (sup[0] ^ nsups[2 * i]).count_ones()
                        + (sup[1] ^ nsups[2 * i + 1]).count_ones();
                }
            }
            _ => {
                // Generic width: 4-word lane groups per pair, scalar tail
                // for w % 4 words. Group sums accumulate in 64-bit lanes
                // so arbitrary widths cannot overflow the byte counters.
                let g4 = w / 4 * 4;
                for i in 0..n {
                    let nb = negs.as_ptr().add(i * w);
                    let xb = nsups.as_ptr().add(i * w);
                    let mut acc = zero;
                    let mut k = 0;
                    while k < g4 {
                        let u = _mm256_or_si256(
                            _mm256_loadu_si256(pat.as_ptr().add(k).cast()),
                            _mm256_loadu_si256(nb.add(k).cast()),
                        );
                        let x = _mm256_xor_si256(
                            _mm256_loadu_si256(sup.as_ptr().add(k).cast()),
                            _mm256_loadu_si256(xb.add(k).cast()),
                        );
                        let cnt = _mm256_add_epi8(popcnt_bytes(u), popcnt_bytes(x));
                        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
                        k += 4;
                    }
                    let mut c = hsum_epi64(acc) as u32;
                    for t in g4..w {
                        c +=
                            (pat[t] | *nb.add(t)).count_ones() + (sup[t] ^ *xb.add(t)).count_ones();
                    }
                    out[i] = c;
                }
            }
        }
    }

    /// SSE2 fused bound sweep: 128-bit wide `or`/`xor`, scalar popcounts
    /// of the extracted words (SSE2 has neither `pshufb` nor `popcnt`,
    /// so the win over scalar is load width only).
    #[target_feature(enable = "sse2")]
    pub unsafe fn bounds_sse2(
        pat: &[u64],
        sup: &[u64],
        negs: &[u64],
        nsups: &[u64],
        w: usize,
        out: &mut [u32],
    ) {
        let n = out.len();
        if w == 1 {
            let vp = _mm_set1_epi64x(pat[0] as i64);
            let vs = _mm_set1_epi64x(sup[0] as i64);
            let mut i = 0;
            while i + 2 <= n {
                // SAFETY (loads/stores): i+2 <= n keeps the 16-byte loads
                // in bounds of the n-word flat slices.
                let u = _mm_or_si128(vp, _mm_loadu_si128(negs.as_ptr().add(i).cast()));
                let x = _mm_xor_si128(vs, _mm_loadu_si128(nsups.as_ptr().add(i).cast()));
                let mut uw = [0u64; 2];
                let mut xw = [0u64; 2];
                _mm_storeu_si128(uw.as_mut_ptr().cast(), u);
                _mm_storeu_si128(xw.as_mut_ptr().cast(), x);
                out[i] = uw[0].count_ones() + xw[0].count_ones();
                out[i + 1] = uw[1].count_ones() + xw[1].count_ones();
                i += 2;
            }
            if i < n {
                out[i] = (pat[0] | negs[i]).count_ones() + (sup[0] ^ nsups[i]).count_ones();
            }
            return;
        }
        // Generic width: 2-word vector groups per pair + scalar tail word.
        let g2 = w / 2 * 2;
        for i in 0..n {
            let nb = negs.as_ptr().add(i * w);
            let xb = nsups.as_ptr().add(i * w);
            let mut c = 0u32;
            let mut k = 0;
            while k < g2 {
                let u = _mm_or_si128(
                    _mm_loadu_si128(pat.as_ptr().add(k).cast()),
                    _mm_loadu_si128(nb.add(k).cast()),
                );
                let x = _mm_xor_si128(
                    _mm_loadu_si128(sup.as_ptr().add(k).cast()),
                    _mm_loadu_si128(xb.add(k).cast()),
                );
                let mut uw = [0u64; 2];
                let mut xw = [0u64; 2];
                _mm_storeu_si128(uw.as_mut_ptr().cast(), u);
                _mm_storeu_si128(xw.as_mut_ptr().cast(), x);
                c += uw[0].count_ones()
                    + uw[1].count_ones()
                    + xw[0].count_ones()
                    + xw[1].count_ones();
                k += 2;
            }
            for t in g2..w {
                c += (pat[t] | *nb.add(t)).count_ones() + (sup[t] ^ *xb.add(t)).count_ones();
            }
            out[i] = c;
        }
    }

    /// AVX2 batch union popcount; same blocking as `bounds_avx2` minus
    /// the xor half.
    #[target_feature(enable = "avx2")]
    pub unsafe fn union_counts_avx2(a: &[u64], bs: &[u64], w: usize, out: &mut [u32]) {
        let n = out.len();
        let zero = _mm256_setzero_si256();
        match w {
            1 => {
                let va = _mm256_set1_epi64x(a[0] as i64);
                let mut i = 0;
                while i + 4 <= n {
                    let u = _mm256_or_si256(va, _mm256_loadu_si256(bs.as_ptr().add(i).cast()));
                    let lanes = lanes_epi64(_mm256_sad_epu8(popcnt_bytes(u), zero));
                    for k in 0..4 {
                        out[i + k] = lanes[k] as u32;
                    }
                    i += 4;
                }
                while i < n {
                    out[i] = (a[0] | bs[i]).count_ones();
                    i += 1;
                }
            }
            2 => {
                let va = _mm256_broadcastsi128_si256(_mm_loadu_si128(a.as_ptr().cast()));
                let mut i = 0;
                while i + 2 <= n {
                    let u = _mm256_or_si256(va, _mm256_loadu_si256(bs.as_ptr().add(2 * i).cast()));
                    let lanes = lanes_epi64(_mm256_sad_epu8(popcnt_bytes(u), zero));
                    out[i] = (lanes[0] + lanes[1]) as u32;
                    out[i + 1] = (lanes[2] + lanes[3]) as u32;
                    i += 2;
                }
                if i < n {
                    out[i] = (a[0] | bs[2 * i]).count_ones() + (a[1] | bs[2 * i + 1]).count_ones();
                }
            }
            _ => {
                let g4 = w / 4 * 4;
                for i in 0..n {
                    let bb = bs.as_ptr().add(i * w);
                    let mut acc = zero;
                    let mut k = 0;
                    while k < g4 {
                        let u = _mm256_or_si256(
                            _mm256_loadu_si256(a.as_ptr().add(k).cast()),
                            _mm256_loadu_si256(bb.add(k).cast()),
                        );
                        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcnt_bytes(u), zero));
                        k += 4;
                    }
                    let mut c = hsum_epi64(acc) as u32;
                    for t in g4..w {
                        c += (a[t] | *bb.add(t)).count_ones();
                    }
                    out[i] = c;
                }
            }
        }
    }

    /// SSE2 batch union popcount.
    #[target_feature(enable = "sse2")]
    pub unsafe fn union_counts_sse2(a: &[u64], bs: &[u64], w: usize, out: &mut [u32]) {
        let n = out.len();
        if w == 1 {
            let va = _mm_set1_epi64x(a[0] as i64);
            let mut i = 0;
            while i + 2 <= n {
                let u = _mm_or_si128(va, _mm_loadu_si128(bs.as_ptr().add(i).cast()));
                let mut uw = [0u64; 2];
                _mm_storeu_si128(uw.as_mut_ptr().cast(), u);
                out[i] = uw[0].count_ones();
                out[i + 1] = uw[1].count_ones();
                i += 2;
            }
            if i < n {
                out[i] = (a[0] | bs[i]).count_ones();
            }
            return;
        }
        let g2 = w / 2 * 2;
        for i in 0..n {
            let bb = bs.as_ptr().add(i * w);
            let mut c = 0u32;
            let mut k = 0;
            while k < g2 {
                let u = _mm_or_si128(
                    _mm_loadu_si128(a.as_ptr().add(k).cast()),
                    _mm_loadu_si128(bb.add(k).cast()),
                );
                let mut uw = [0u64; 2];
                _mm_storeu_si128(uw.as_mut_ptr().cast(), u);
                c += uw[0].count_ones() + uw[1].count_ones();
                k += 2;
            }
            for t in g2..w {
                c += (a[t] | *bb.add(t)).count_ones();
            }
            out[i] = c;
        }
    }

    /// AVX2 any-subset probe: `cands[i] ⊆ sup` iff `cands[i] & !sup == 0`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn subset_any_avx2(cands: &[u64], sup: &[u64], w: usize) -> bool {
        let n = cands.len() / w.max(1);
        let zero = _mm256_setzero_si256();
        match w {
            1 => {
                let vs = _mm256_set1_epi64x(sup[0] as i64);
                let mut i = 0;
                while i + 4 <= n {
                    let vc = _mm256_loadu_si256(cands.as_ptr().add(i).cast());
                    // andnot(a, b) = !a & b: bits of the candidate missing
                    // from sup. A zero lane means that candidate is a subset.
                    let nots = _mm256_andnot_si256(vs, vc);
                    let eq = _mm256_cmpeq_epi64(nots, zero);
                    if _mm256_movemask_epi8(eq) != 0 {
                        return true;
                    }
                    i += 4;
                }
                while i < n {
                    if cands[i] & !sup[0] == 0 {
                        return true;
                    }
                    i += 1;
                }
                false
            }
            2 => {
                let vs = _mm256_broadcastsi128_si256(_mm_loadu_si128(sup.as_ptr().cast()));
                let mut i = 0;
                while i + 2 <= n {
                    let vc = _mm256_loadu_si256(cands.as_ptr().add(2 * i).cast());
                    let eq = _mm256_cmpeq_epi64(_mm256_andnot_si256(vs, vc), zero);
                    let mask = _mm256_movemask_epi8(eq) as u32;
                    // A candidate is a subset iff both of its 64-bit lanes
                    // compared equal-to-zero (16 mask bits each).
                    if mask & 0xffff == 0xffff || mask >> 16 == 0xffff {
                        return true;
                    }
                    i += 2;
                }
                if i < n && cands[2 * i] & !sup[0] == 0 && cands[2 * i + 1] & !sup[1] == 0 {
                    return true;
                }
                false
            }
            4 => {
                let vs = _mm256_loadu_si256(sup.as_ptr().cast());
                for i in 0..n {
                    let vc = _mm256_loadu_si256(cands.as_ptr().add(4 * i).cast());
                    // testc(s, c) = 1 iff (!s & c) == 0, i.e. c ⊆ s.
                    if _mm256_testc_si256(vs, vc) != 0 {
                        return true;
                    }
                }
                false
            }
            _ => {
                let g4 = w / 4 * 4;
                'cand: for i in 0..n {
                    let cb = cands.as_ptr().add(i * w);
                    let mut acc = zero;
                    let mut k = 0;
                    while k < g4 {
                        let vc = _mm256_loadu_si256(cb.add(k).cast());
                        let vs = _mm256_loadu_si256(sup.as_ptr().add(k).cast());
                        acc = _mm256_or_si256(acc, _mm256_andnot_si256(vs, vc));
                        k += 4;
                    }
                    if _mm256_testz_si256(acc, acc) == 0 {
                        continue 'cand;
                    }
                    for t in g4..w {
                        if *cb.add(t) & !sup[t] != 0 {
                            continue 'cand;
                        }
                    }
                    return true;
                }
                false
            }
        }
    }

    /// SSE2 any-subset probe.
    #[target_feature(enable = "sse2")]
    pub unsafe fn subset_any_sse2(cands: &[u64], sup: &[u64], w: usize) -> bool {
        let n = cands.len() / w.max(1);
        let g2 = w / 2 * 2;
        'cand: for i in 0..n {
            let cb = cands.as_ptr().add(i * w);
            let mut k = 0;
            while k < g2 {
                let vc = _mm_loadu_si128(cb.add(k).cast());
                let vs = _mm_loadu_si128(sup.as_ptr().add(k).cast());
                let nots = _mm_andnot_si128(vs, vc);
                let mut nw = [0u64; 2];
                _mm_storeu_si128(nw.as_mut_ptr().cast(), nots);
                if nw[0] | nw[1] != 0 {
                    continue 'cand;
                }
                k += 2;
            }
            for t in g2..w {
                if *cb.add(t) & !sup[t] != 0 {
                    continue 'cand;
                }
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat<const W: usize>(seed: u64, density: u64) -> Pattern<W> {
        // Cheap deterministic pattern generator (splitmix64 words).
        let mut p = Pattern::<W>::empty();
        let mut s = seed;
        for i in 0..Pattern::<W>::CAPACITY {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            if (z ^ (z >> 31)) % 100 < density {
                p.set(i);
            }
        }
        p
    }

    fn tiers() -> Vec<KernelTier> {
        vec![KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2]
    }

    #[test]
    fn detect_tier_is_stable() {
        assert_eq!(detect_tier(), detect_tier());
    }

    #[test]
    fn block_pairs_by_width() {
        assert_eq!(block_pairs(8), 1024);
        assert_eq!(block_pairs(16), 512);
        assert_eq!(block_pairs(32), 256);
        assert_eq!(block_pairs(1 << 20), 16); // clamped floor
    }

    fn check_all<const W: usize>() {
        let pat_p = pat::<W>(1, 30);
        let sup_p = pat::<W>(2, 50);
        // Ragged length 7 exercises every vector tail path.
        let negs: Vec<Pattern<W>> = (0..7).map(|i| pat::<W>(10 + i, 40)).collect();
        let nsups: Vec<Pattern<W>> = (0..7).map(|i| pat::<W>(20 + i, 60)).collect();
        let mut want = Vec::new();
        bounds_sweep(KernelTier::Scalar, &pat_p, &sup_p, &negs, &nsups, &mut want);
        for tier in tiers() {
            let mut got = Vec::new();
            bounds_sweep(tier, &pat_p, &sup_p, &negs, &nsups, &mut got);
            assert_eq!(got, want, "bounds_sweep W={W} tier={tier}");

            let mut uc = Vec::new();
            union_counts(tier, &pat_p, &negs, &mut uc);
            let ucw: Vec<u32> = negs.iter().map(|b| pat_p.union_count(b)).collect();
            assert_eq!(uc, ucw, "union_counts W={W} tier={tier}");

            let four: [Pattern<W>; 4] = [negs[0], negs[1], negs[2], negs[3]];
            assert_eq!(
                union_count_4(tier, &pat_p, &four).to_vec(),
                ucw[..4].to_vec(),
                "union_count_4 W={W} tier={tier}"
            );

            assert_eq!(
                is_subset_any(tier, &negs, &sup_p),
                negs.iter().any(|c| c.is_subset_of(&sup_p)),
                "is_subset_any W={W} tier={tier}"
            );
            // Force a positive: a candidate equal to sup is a subset.
            let mut with_hit = negs.clone();
            with_hit.push(sup_p);
            assert!(is_subset_any(tier, &with_hit, &sup_p), "W={W} tier={tier}");
            assert!(!is_subset_any(tier, &[], &sup_p), "empty batch W={W} tier={tier}");
        }
    }

    #[test]
    fn tiers_agree_w1() {
        check_all::<1>();
    }

    #[test]
    fn tiers_agree_w2() {
        check_all::<2>();
    }

    #[test]
    fn tiers_agree_w4() {
        check_all::<4>();
    }

    #[test]
    fn tiers_agree_odd_widths() {
        check_all::<3>();
        check_all::<5>();
        check_all::<7>();
    }

    #[test]
    fn prefilter_hits_filters_and_offsets() {
        let pat_p = pat::<2>(3, 20);
        let sup_p = pat::<2>(4, 20);
        let negs: Vec<Pattern<2>> = (0..40).map(|i| pat::<2>(30 + i, 35)).collect();
        let nsups: Vec<Pattern<2>> = (0..40).map(|i| pat::<2>(70 + i, 35)).collect();
        let mut bounds = Vec::new();
        let max = {
            let mut b = Vec::new();
            bounds_sweep(KernelTier::Scalar, &pat_p, &sup_p, &negs, &nsups, &mut b);
            b.iter().copied().sum::<u32>() / b.len() as u32 // prune roughly half
        };
        let mut want = Vec::new();
        for (i, n) in negs.iter().enumerate() {
            if pat_p.union_count(n) + sup_p.xor_count(&nsups[i]) <= max {
                want.push(100 + i as u32);
            }
        }
        for tier in tiers() {
            let mut hits = Vec::new();
            let got = prefilter_hits(
                tier,
                &pat_p,
                &sup_p,
                &negs,
                &nsups,
                max,
                100,
                &mut bounds,
                &mut hits,
            );
            assert_eq!(hits, want, "tier={tier}");
            assert_eq!(got, want.len());
        }
    }
}
