//! Floating-point least squares and nonnegative least squares.
//!
//! Supports the flux-decomposition application of EFMs (Schwartz & Kanehisa
//! 2005/2006, cited in the paper's introduction): given a measured flux
//! distribution `v` and the EFM matrix `E`, find nonnegative weights `w`
//! minimizing `‖E·w − v‖₂` — the decomposition of a steady-state flux onto
//! elementary modes.

/// Dense column-major f64 helpers kept local to this module.
fn mat_t_vec(a: &[f64], rows: usize, cols: usize, v: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; cols];
    for r in 0..rows {
        let row = &a[r * cols..(r + 1) * cols];
        for c in 0..cols {
            out[c] += row[c] * v[r];
        }
    }
    out
}

/// Solves the square system `m·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` when the matrix is (numerically) singular.
pub fn solve_dense(m: &[f64], n: usize, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(m.len(), n * n);
    assert_eq!(b.len(), n);
    let mut a = m.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                a.swap(piv * n + c, col * n + c);
            }
            x.swap(piv, col);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            x[r] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        let mut s = x[col];
        for c in col + 1..n {
            s -= a[col * n + c] * x[c];
        }
        x[col] = s / a[col * n + col];
    }
    Some(x)
}

/// Unconstrained linear least squares via the normal equations:
/// minimizes `‖A·x − b‖₂` for a row-major `rows × cols` matrix `A`.
pub fn least_squares(a: &[f64], rows: usize, cols: usize, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.len(), rows * cols);
    assert_eq!(b.len(), rows);
    // Form AtA (cols × cols) and Atb.
    let mut ata = vec![0.0; cols * cols];
    for r in 0..rows {
        let row = &a[r * cols..(r + 1) * cols];
        for i in 0..cols {
            if row[i] == 0.0 {
                continue;
            }
            for j in 0..cols {
                ata[i * cols + j] += row[i] * row[j];
            }
        }
    }
    let atb = mat_t_vec(a, rows, cols, b);
    solve_dense(&ata, cols, &atb)
}

/// Result of a nonnegative least squares solve.
#[derive(Debug, Clone)]
pub struct NnlsSolution {
    /// The nonnegative weight vector.
    pub x: Vec<f64>,
    /// Final residual norm `‖A·x − b‖₂`.
    pub residual: f64,
    /// Iterations of the outer active-set loop.
    pub iterations: usize,
}

/// Lawson–Hanson active-set nonnegative least squares: minimizes
/// `‖A·x − b‖₂` subject to `x ≥ 0`.
pub fn nnls(a: &[f64], rows: usize, cols: usize, b: &[f64]) -> NnlsSolution {
    assert_eq!(a.len(), rows * cols);
    assert_eq!(b.len(), rows);
    let mut x = vec![0.0; cols];
    let mut passive: Vec<bool> = vec![false; cols];
    let max_iter = 3 * cols + 30;
    let tol = 1e-10;
    let mut iterations = 0;

    let residual_vec = |x: &[f64]| -> Vec<f64> {
        let mut r = b.to_vec();
        for row in 0..rows {
            let arow = &a[row * cols..(row + 1) * cols];
            let mut dot = 0.0;
            for c in 0..cols {
                dot += arow[c] * x[c];
            }
            r[row] -= dot;
        }
        r
    };

    for _ in 0..max_iter {
        iterations += 1;
        // Gradient w = Aᵀ(b − A·x); pick the most violated inactive index.
        let r = residual_vec(&x);
        let w = mat_t_vec(a, rows, cols, &r);
        let mut best: Option<(usize, f64)> = None;
        for c in 0..cols {
            if !passive[c] && w[c] > tol && best.is_none_or(|(_, bw)| w[c] > bw) {
                best = Some((c, w[c]));
            }
        }
        let Some((enter, _)) = best else {
            break; // KKT satisfied
        };
        passive[enter] = true;

        // Inner loop: solve LS on the passive set; clip negatives.
        loop {
            let pcols: Vec<usize> = (0..cols).filter(|&c| passive[c]).collect();
            let mut sub = vec![0.0; rows * pcols.len()];
            for row in 0..rows {
                for (j, &c) in pcols.iter().enumerate() {
                    sub[row * pcols.len() + j] = a[row * cols + c];
                }
            }
            let z = match least_squares(&sub, rows, pcols.len(), b) {
                Some(z) => z,
                None => {
                    // Degenerate passive set: drop the entering variable.
                    passive[enter] = false;
                    break;
                }
            };
            if z.iter().all(|&v| v > tol) {
                for (j, &c) in pcols.iter().enumerate() {
                    x[c] = z[j];
                }
                break;
            }
            // Step toward z, stopping at the first variable hitting zero.
            let mut alpha = f64::INFINITY;
            for (j, &c) in pcols.iter().enumerate() {
                if z[j] <= tol {
                    let d = x[c] - z[j];
                    if d > 0.0 {
                        alpha = alpha.min(x[c] / d);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (j, &c) in pcols.iter().enumerate() {
                x[c] += alpha * (z[j] - x[c]);
                if x[c] < tol {
                    x[c] = 0.0;
                    passive[c] = false;
                }
            }
        }
    }
    let r = residual_vec(&x);
    let residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    NnlsSolution { x, residual, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_dense_known() {
        // [2 1; 1 3] x = [3; 5] → x = (4/5, 7/5)
        let m = vec![2.0, 1.0, 1.0, 3.0];
        let x = solve_dense(&m, 2, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_singular() {
        let m = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&m, 2, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2t + 1 through noisy-free points.
        let ts = [0.0, 1.0, 2.0, 3.0];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &t in &ts {
            a.extend([t, 1.0]);
            b.push(2.0 * t + 1.0);
        }
        let x = least_squares(&a, 4, 2, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nnls_clips_negative_solution() {
        // Unconstrained solution has a negative weight; NNLS must zero it.
        let a = vec![
            1.0, 0.0, //
            0.0, 1.0, //
        ];
        let sol = nnls(&a, 2, 2, &[2.0, -3.0]);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert_eq!(sol.x[1], 0.0);
        assert!((sol.residual - 3.0).abs() < 1e-9);
    }

    #[test]
    fn nnls_exact_recovery() {
        // b is an exact nonnegative combination: recover it.
        let a = vec![
            1.0, 1.0, 0.0, //
            0.0, 1.0, 1.0, //
            1.0, 0.0, 1.0, //
        ];
        let truth = [1.0, 2.0, 3.0];
        let b: Vec<f64> = (0..3).map(|r| (0..3).map(|c| a[r * 3 + c] * truth[c]).sum()).collect();
        let sol = nnls(&a, 3, 3, &b);
        for (got, want) in sol.x.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(sol.residual < 1e-8);
    }

    #[test]
    fn nnls_zero_rhs() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let sol = nnls(&a, 2, 2, &[0.0, 0.0]);
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert!(sol.residual < 1e-12);
    }
}
