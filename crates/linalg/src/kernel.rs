//! Reduced row echelon form and kernel (nullspace) bases.
//!
//! The Nullspace Algorithm starts from a kernel basis of the reduced
//! stoichiometry matrix in the form `K = [I; R(2)]` (after a row
//! permutation): the *free* reactions carry the identity block, the *pivot*
//! reactions carry `R(2)`. Divide-and-conquer additionally requires that the
//! chosen partition reactions end up in the `R(2)` block so that they can be
//! ordered last and left unprocessed (Proposition 1 of the paper) — hence
//! the pivot-preference parameter.

use crate::Mat;
use efm_numeric::{to_primitive_integer_vec, DynInt, Rational, Scalar};

/// Result of reduced row echelon elimination.
#[derive(Debug, Clone)]
pub struct Rref<S: Scalar> {
    /// The matrix in reduced row echelon form (rows permuted so pivot `i`
    /// lives in row `i`).
    pub mat: Mat<S>,
    /// Pivot columns, one per pivot row, in pivot-row order.
    pub pivot_cols: Vec<usize>,
    /// Columns without a pivot (free columns), ascending.
    pub free_cols: Vec<usize>,
}

/// Computes the RREF of `m`, searching for pivots column-by-column in the
/// order given by `col_order` (every column must appear exactly once).
pub fn rref_with_col_order<S: Scalar>(m: &Mat<S>, col_order: &[usize]) -> Rref<S> {
    assert_eq!(col_order.len(), m.cols(), "col_order must cover all columns");
    let mut a = m.clone();
    let nr = a.rows();
    let mut pivot_cols = Vec::new();
    let mut next_row = 0;
    for &c in col_order {
        if next_row == nr {
            break;
        }
        // Pick the best-scoring nonzero entry in this column at/below next_row.
        let mut best: Option<(usize, f64)> = None;
        for r in next_row..nr {
            let v = a.get(r, c);
            if !v.is_zero() {
                let s = v.pivot_score();
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((r, s));
                }
            }
        }
        let Some((pr, _)) = best else {
            continue;
        };
        a.swap_rows(pr, next_row);
        // Normalize the pivot row.
        let pivot = a.get(next_row, c).clone();
        for j in 0..a.cols() {
            let v = a.get(next_row, j).exact_div(&pivot);
            a.set(next_row, j, v);
        }
        // Eliminate the column everywhere else.
        for r in 0..nr {
            if r == next_row {
                continue;
            }
            let factor = a.get(r, c).clone();
            if factor.is_zero() {
                continue;
            }
            for j in 0..a.cols() {
                let v = a.get(r, j).sub(&factor.mul(a.get(next_row, j)));
                a.set(r, j, v);
            }
            a.set(r, c, S::zero());
        }
        pivot_cols.push(c);
        next_row += 1;
    }
    let free_cols: Vec<usize> = (0..m.cols()).filter(|c| !pivot_cols.contains(c)).collect();
    Rref { mat: a, pivot_cols, free_cols }
}

/// RREF with natural left-to-right column order.
pub fn rref<S: Scalar>(m: &Mat<S>) -> Rref<S> {
    let order: Vec<usize> = (0..m.cols()).collect();
    rref_with_col_order(m, &order)
}

/// A kernel basis of a matrix `N` (columns of `k` span `{x : N·x = 0}`).
#[derive(Debug, Clone)]
pub struct KernelBasis<S: Scalar> {
    /// `cols(N) × d` matrix whose columns are the basis vectors. Row `i`
    /// corresponds to column `i` of `N`.
    pub k: Mat<S>,
    /// Free columns of `N`: the kernel restricted to these rows is the
    /// identity (basis vector `j` has 1 at `free_cols[j]`, 0 at the others).
    pub free_cols: Vec<usize>,
    /// Pivot columns of `N`: the rows of the `R(2)` block.
    pub pivot_cols: Vec<usize>,
}

/// Computes a kernel basis of `n`, preferring the columns in `prefer_pivot`
/// as pivot (dependent) columns. Pivot preference is best-effort: a
/// preferred column that is linearly dependent on earlier preferred columns
/// ends up free.
pub fn kernel_basis<S: Scalar>(n: &Mat<S>, prefer_pivot: &[usize]) -> KernelBasis<S> {
    let q = n.cols();
    for &c in prefer_pivot {
        assert!(c < q, "prefer_pivot index out of range");
    }
    let mut order: Vec<usize> = prefer_pivot.to_vec();
    order.extend((0..q).filter(|c| !prefer_pivot.contains(c)));
    let r = rref_with_col_order(n, &order);
    let d = r.free_cols.len();
    let mut k = Mat::<S>::zeros(q, d);
    for (j, &f) in r.free_cols.iter().enumerate() {
        k.set(f, j, S::one());
        for (prow, &pc) in r.pivot_cols.iter().enumerate() {
            let v = r.mat.get(prow, f);
            if !v.is_zero() {
                k.set(pc, j, v.neg());
            }
        }
    }
    KernelBasis { k, free_cols: r.free_cols, pivot_cols: r.pivot_cols }
}

/// Converts a rational kernel basis into primitive integer columns (each
/// column scaled by the lcm of denominators and divided by the gcd).
pub fn kernel_to_primitive_int(k: &Mat<Rational>) -> Mat<DynInt> {
    let mut out = Mat::<DynInt>::zeros(k.rows(), k.cols());
    for j in 0..k.cols() {
        let col = k.col(j);
        let ints = to_primitive_integer_vec(&col);
        for (i, v) in ints.into_iter().enumerate() {
            out.set(i, j, v);
        }
    }
    out
}

/// Builds a rational matrix from `i64` entries.
pub fn rational_mat(rows: &[&[i64]]) -> Mat<Rational> {
    Mat::from_i64_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::rank;

    #[test]
    fn rref_identity_is_fixed_point() {
        let m = rational_mat(&[&[1, 0], &[0, 1]]);
        let r = rref(&m);
        assert_eq!(r.mat, m);
        assert_eq!(r.pivot_cols, vec![0, 1]);
        assert!(r.free_cols.is_empty());
    }

    #[test]
    fn rref_known_form() {
        let m = rational_mat(&[&[1, 2, 3], &[2, 4, 7]]);
        let r = rref(&m);
        // Pivots at columns 0 and 2; column 1 free with coefficient 2.
        assert_eq!(r.pivot_cols, vec![0, 2]);
        assert_eq!(r.free_cols, vec![1]);
        assert_eq!(r.mat.get(0, 1), &Rational::from_i64(2));
        assert!(r.mat.get(0, 2).is_zero());
        assert_eq!(r.mat.get(1, 2), &Rational::one());
    }

    #[test]
    fn kernel_annihilates() {
        let n = rational_mat(&[&[1, -1, 0, 2], &[0, 1, -1, 1]]);
        let kb = kernel_basis(&n, &[]);
        assert_eq!(kb.k.cols(), 2);
        let prod = n.matmul(&kb.k);
        assert!(prod.is_zero(), "N·K must be 0, got {prod:?}");
        assert_eq!(kb.free_cols.len() + kb.pivot_cols.len(), 4);
    }

    #[test]
    fn kernel_identity_block() {
        let n = rational_mat(&[&[1, 1, 1]]);
        let kb = kernel_basis(&n, &[]);
        assert_eq!(kb.k.cols(), 2);
        for (j, &f) in kb.free_cols.iter().enumerate() {
            assert!(kb.k.get(f, j).is_one());
            for (j2, _) in kb.free_cols.iter().enumerate() {
                if j2 != j {
                    assert!(kb.k.get(f, j2).is_zero());
                }
            }
        }
    }

    #[test]
    fn pivot_preference_is_honored() {
        let n = rational_mat(&[&[1, 1, 0, 0], &[0, 0, 1, 1]]);
        // Ask for columns 1 and 3 to be pivots.
        let kb = kernel_basis(&n, &[1, 3]);
        assert_eq!(kb.pivot_cols, vec![1, 3]);
        assert!(n.matmul(&kb.k).is_zero());
    }

    #[test]
    fn pivot_preference_best_effort_on_dependence() {
        // Columns 0 and 1 are identical: they cannot both be pivots.
        let n = rational_mat(&[&[1, 1, 2]]);
        let kb = kernel_basis(&n, &[0, 1]);
        assert_eq!(kb.pivot_cols, vec![0]);
        assert_eq!(kb.free_cols, vec![1, 2]);
    }

    #[test]
    fn kernel_dimension_matches_rank() {
        let n = rational_mat(&[&[1, 2, 3, 4], &[2, 4, 6, 8], &[0, 1, 0, 1]]);
        let kb = kernel_basis(&n, &[]);
        assert_eq!(kb.k.cols(), n.cols() - rank(&n));
        assert!(n.matmul(&kb.k).is_zero());
    }

    #[test]
    fn kernel_of_full_rank_square_is_empty() {
        let n = rational_mat(&[&[1, 0], &[0, 1]]);
        let kb = kernel_basis(&n, &[]);
        assert_eq!(kb.k.cols(), 0);
    }

    #[test]
    fn primitive_int_conversion() {
        let n = rational_mat(&[&[1, 2, 0], &[0, 2, 4]]);
        let kb = kernel_basis(&n, &[]);
        let ki = kernel_to_primitive_int(&kb.k);
        // Kernel of [[1,2,0],[0,2,4]] is spanned by (4, -2, 1).
        assert_eq!(ki.cols(), 1);
        let col = ki.col(0);
        let as_i64: Vec<i64> = col.iter().map(|v| v.to_i128().unwrap() as i64).collect();
        let canonical =
            if as_i64[0] < 0 { as_i64.iter().map(|v| -v).collect::<Vec<_>>() } else { as_i64 };
        assert_eq!(canonical, vec![4, -2, 1]);
    }
}
