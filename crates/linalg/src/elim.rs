//! Rank computation via fraction-free (Bareiss) elimination.
//!
//! The algebraic rank test of the Nullspace Algorithm asks, for every
//! surviving candidate mode, whether the submatrix of the stoichiometry
//! matrix restricted to the candidate's support has nullity exactly 1
//! (Jevremovic et al. 2008/2010). That submatrix is small (at most
//! `m × (m+1)` after the summary rejection), but the test runs millions of
//! times, so the elimination works in a caller-provided scratch buffer with
//! no per-call allocation.
//!
//! Bareiss's algorithm performs integer-preserving elimination: every
//! division (`exact_div`) is exact by the Sylvester determinant identity, so
//! with [`efm_numeric::DynInt`] the rank is computed without rounding. With
//! [`efm_numeric::F64Tol`] the same code degrades gracefully to tolerance-
//! based elimination with full pivoting.

use crate::Mat;
use efm_numeric::Scalar;

/// Rank of a matrix (allocates a working copy).
pub fn rank<S: Scalar>(m: &Mat<S>) -> usize {
    let mut scratch = Vec::new();
    let cols: Vec<usize> = (0..m.cols()).collect();
    rank_of_cols(m, &cols, &mut scratch)
}

/// Nullity (dimension of the right kernel) of a matrix.
pub fn nullity<S: Scalar>(m: &Mat<S>) -> usize {
    m.cols() - rank(m)
}

/// Rank of the submatrix formed by the selected columns of `m`, using (and
/// reusing) `scratch` as working storage.
pub fn rank_of_cols<S: Scalar>(m: &Mat<S>, cols: &[usize], scratch: &mut Vec<S>) -> usize {
    let nr = m.rows();
    let nc = cols.len();
    scratch.clear();
    scratch.reserve(nr * nc);
    for r in 0..nr {
        for &c in cols {
            scratch.push(m.get(r, c).clone());
        }
    }
    bareiss_rank_in_place(scratch, nr, nc)
}

/// Nullity of the submatrix formed by the selected columns.
pub fn nullity_of_cols<S: Scalar>(m: &Mat<S>, cols: &[usize], scratch: &mut Vec<S>) -> usize {
    cols.len() - rank_of_cols(m, cols, scratch)
}

/// In-place Bareiss elimination on a row-major `nr × nc` buffer; returns the
/// rank. Uses full pivoting (rows and columns) with [`Scalar::pivot_score`].
pub fn bareiss_rank_in_place<S: Scalar>(a: &mut [S], nr: usize, nc: usize) -> usize {
    assert_eq!(a.len(), nr * nc, "buffer shape mismatch");
    let idx = |r: usize, c: usize| r * nc + c;
    let steps = nr.min(nc);
    let mut prev = S::one();
    let mut rank = 0;
    // Column permutation is tracked implicitly by swapping in the buffer.
    for step in 0..steps {
        // Full pivot search over the remaining submatrix.
        let mut best: Option<(usize, usize, f64)> = None;
        for r in step..nr {
            for c in step..nc {
                let v = &a[idx(r, c)];
                if !v.is_zero() {
                    let score = v.pivot_score();
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((r, c, score));
                    }
                }
            }
        }
        let Some((pr, pc, _)) = best else {
            break; // remaining submatrix is zero
        };
        // Swap pivot into (step, step).
        if pr != step {
            for c in 0..nc {
                a.swap(idx(pr, c), idx(step, c));
            }
        }
        if pc != step {
            for r in 0..nr {
                a.swap(idx(r, pc), idx(r, step));
            }
        }
        rank += 1;
        let pivot = a[idx(step, step)].clone();
        for r in step + 1..nr {
            let factor = a[idx(r, step)].clone();
            if factor.is_zero() {
                // Still must rescale the row for the Bareiss identity:
                // a[r][c] = (pivot*a[r][c] - 0*a[step][c]) / prev.
                for c in step + 1..nc {
                    let v = pivot.mul(&a[idx(r, c)]).exact_div(&prev);
                    a[idx(r, c)] = v;
                }
            } else {
                for c in step + 1..nc {
                    let v = S::fused_comb(&pivot, &a[idx(r, c)], &factor, &a[idx(step, c)])
                        .exact_div(&prev);
                    a[idx(r, c)] = v;
                }
            }
            a[idx(r, step)] = S::zero();
        }
        prev = pivot;
    }
    rank
}

/// Floating-point rank of selected columns via Gaussian elimination with
/// partial pivoting, column max-scaling, and an absolute tolerance.
///
/// This is the "numerical algorithm such as the LU" the paper's rank test
/// prescribes: with exact (Bareiss) arithmetic the intermediate entries of
/// genome-scale submatrices grow to hundreds of digits, while the test only
/// needs the rank. Column scaling makes the tolerance meaningful for
/// networks mixing unit and biomass-scale (≈4·10⁴) coefficients.
pub fn rank_of_cols_f64<S: Scalar>(
    m: &Mat<S>,
    cols: &[usize],
    scratch: &mut Vec<f64>,
    tol: f64,
) -> usize {
    let nr = m.rows();
    let nc = cols.len();
    scratch.clear();
    scratch.resize(nr * nc, 0.0);
    for (j, &c) in cols.iter().enumerate() {
        let mut maxabs = 0.0f64;
        for r in 0..nr {
            let v = m.get(r, c).to_f64();
            scratch[r * nc + j] = v;
            maxabs = maxabs.max(v.abs());
        }
        if maxabs > 0.0 {
            for r in 0..nr {
                scratch[r * nc + j] /= maxabs;
            }
        }
    }
    gauss_rank_in_place_f64(scratch, nr, nc, tol)
}

/// In-place floating-point rank of a row-major `nr × nc` buffer.
pub fn gauss_rank_in_place_f64(a: &mut [f64], nr: usize, nc: usize, tol: f64) -> usize {
    assert_eq!(a.len(), nr * nc, "buffer shape mismatch");
    let idx = |r: usize, c: usize| r * nc + c;
    let mut rank = 0;
    let mut row = 0;
    for col in 0..nc {
        if row == nr {
            break;
        }
        // Partial pivoting: largest magnitude in this column at/below row.
        let mut best = row;
        let mut best_abs = a[idx(row, col)].abs();
        for r in row + 1..nr {
            let v = a[idx(r, col)].abs();
            if v > best_abs {
                best_abs = v;
                best = r;
            }
        }
        if best_abs <= tol {
            continue;
        }
        if best != row {
            for c in col..nc {
                a.swap(idx(best, c), idx(row, c));
            }
        }
        let pivot = a[idx(row, col)];
        for r in row + 1..nr {
            let f = a[idx(r, col)] / pivot;
            if f != 0.0 {
                for c in col..nc {
                    a[idx(r, c)] -= f * a[idx(row, c)];
                }
            }
        }
        rank += 1;
        row += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_numeric::{DynInt, F64Tol};

    type M = Mat<DynInt>;

    #[test]
    fn rank_of_identity() {
        assert_eq!(rank(&M::identity(4)), 4);
    }

    #[test]
    fn rank_of_zero() {
        assert_eq!(rank(&M::zeros(3, 5)), 0);
        assert_eq!(nullity(&M::zeros(3, 5)), 5);
    }

    #[test]
    fn rank_with_dependent_rows() {
        let m = M::from_i64_rows(&[&[1, 2, 3], &[2, 4, 6], &[0, 1, 1]]);
        assert_eq!(rank(&m), 2);
        assert_eq!(nullity(&m), 1);
    }

    #[test]
    fn rank_wide_and_tall() {
        let wide = M::from_i64_rows(&[&[1, 0, 2, 0], &[0, 1, 0, 2]]);
        assert_eq!(rank(&wide), 2);
        let tall = wide.transpose();
        assert_eq!(rank(&tall), 2);
        assert_eq!(nullity(&tall), 0);
    }

    #[test]
    fn rank_needs_column_pivoting() {
        // First column zero; elimination must pivot across columns.
        let m = M::from_i64_rows(&[&[0, 1, 0], &[0, 0, 1]]);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn rank_of_selected_cols_and_scratch_reuse() {
        let m = M::from_i64_rows(&[&[1, 2, 3, 4], &[2, 4, 6, 8], &[1, 0, 1, 0]]);
        let mut scratch = Vec::new();
        assert_eq!(rank_of_cols(&m, &[0, 1], &mut scratch), 2);
        assert_eq!(rank_of_cols(&m, &[0, 2], &mut scratch), 2);
        assert_eq!(rank_of_cols(&m, &[1, 3], &mut scratch), 1);
        assert_eq!(nullity_of_cols(&m, &[0, 1, 2, 3], &mut scratch), 2);
    }

    #[test]
    fn bareiss_stays_exact_with_awkward_pivots() {
        // Hilbert-like integer matrix with large entries: determinant nonzero.
        let m = M::from_i64_rows(&[&[60, 30, 20], &[30, 20, 15], &[20, 15, 12]]);
        assert_eq!(rank(&m), 3);
    }

    #[test]
    fn float_rank_matches_exact() {
        let rows: &[&[i64]] = &[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]];
        let exact = M::from_i64_rows(rows);
        let float = Mat::<F64Tol>::from_i64_rows(rows);
        assert_eq!(rank(&exact), 2);
        assert_eq!(rank(&float), 2);
    }

    #[test]
    fn f64_rank_of_cols_matches_exact() {
        let m = M::from_i64_rows(&[&[40141, 2, 3, 40141], &[0, 1, -1, 0], &[40141, 3, 2, 40141]]);
        let mut fs = Vec::new();
        let mut es = Vec::new();
        for cols in [vec![0, 3], vec![0, 1, 2], vec![0, 1, 2, 3], vec![1, 2]] {
            let exact = rank_of_cols(&m, &cols, &mut es);
            let fast = rank_of_cols_f64(&m, &cols, &mut fs, 1e-9);
            assert_eq!(exact, fast, "cols {cols:?}");
        }
    }

    #[test]
    fn f64_rank_scaling_handles_mixed_magnitudes() {
        // Column 1 = 1e-4 × column 0 direction-wise would be borderline
        // without per-column scaling.
        let mut m = Mat::<F64Tol>::zeros(3, 2);
        for r in 0..3 {
            m.set(r, 0, F64Tol((r as f64 + 1.0) * 40141.0));
            m.set(r, 1, F64Tol((r as f64 + 1.0) * 1e-4));
        }
        let mut s = Vec::new();
        assert_eq!(rank_of_cols_f64(&m, &[0, 1], &mut s, 1e-9), 1);
    }

    #[test]
    fn rank_is_permutation_invariant() {
        let m = M::from_i64_rows(&[&[1, -1, 0, 2], &[3, 0, 1, -2], &[4, -1, 1, 0]]);
        let base = rank(&m); // third row = row0 + row1 → rank 2
        assert_eq!(base, 2);
        let shuffled = m.select_cols(&[3, 1, 0, 2]).select_rows(&[2, 0, 1]);
        assert_eq!(rank(&shuffled), base);
    }
}
