//! Exact linear programming over rationals (dense simplex).
//!
//! Network compression needs *sign-aware* blocked-reaction detection: a
//! reaction is blocked not only when its kernel row vanishes but also when
//! irreversibility constraints forbid any steady-state flux through it —
//! the paper's preprocessing ("eliminating redundant reactions ... using
//! known methods") relies on this to shrink S. cerevisiae Network I to
//! 35×55. The question "is there `v` with `N·v = 0`, `v_irrev ≥ 0`,
//! `v_j = 1`?" is a small LP feasibility problem, solved here exactly:
//!
//! * free variables are eliminated by Gaussian pivoting (their rows are
//!   always satisfiable and are recorded for witness back-substitution);
//! * the remaining nonnegative system runs phase-1 simplex with Bland's
//!   rule (no cycling, exact rational arithmetic, no tolerances);
//! * phase-2 ([`lp_maximize`]) supports bounded optimization, e.g. flux
//!   variability analysis.

use crate::Mat;
use efm_numeric::Rational;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Optimal value attained.
    Optimal(Rational),
}

/// A dense simplex tableau for `A x = b, x ≥ 0` with exact arithmetic.
struct Tableau {
    /// m × (n + 1) rows: coefficients then rhs.
    rows: Vec<Vec<Rational>>,
    /// Objective row (length n + 1, rhs = negated objective value).
    obj: Vec<Rational>,
    /// Basis variable per row.
    basis: Vec<usize>,
    n: usize,
    /// Only columns `< enter_limit` may enter the basis (used by phase 2
    /// to lock out artificials).
    enter_limit: usize,
}

impl Tableau {
    /// Bland's rule simplex on the current tableau; returns false when the
    /// objective is unbounded.
    fn solve(&mut self) -> bool {
        loop {
            // Entering: smallest index with positive reduced cost
            // (maximization form: obj row holds c − z, enter while > 0).
            let enter = (0..self.enter_limit).find(|&j| self.obj[j].signum() > 0);
            let Some(enter) = enter else {
                return true;
            };
            // Leaving: minimum ratio, ties by smallest basis index (Bland).
            let mut leave: Option<(usize, Rational)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                if row[enter].signum() > 0 {
                    let ratio = row[self.n].div(&row[enter]);
                    let better = match &leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((leave, _)) = leave else {
                return false; // unbounded
            };
            self.pivot(leave, enter);
        }
    }

    fn pivot(&mut self, r: usize, c: usize) {
        let p = self.rows[r][c].clone();
        for v in self.rows[r].iter_mut() {
            *v = v.div(&p);
        }
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            let f = self.rows[i][c].clone();
            if f.is_zero() {
                continue;
            }
            for j in 0..=self.n {
                let delta = f.mul(&self.rows[r][j]);
                self.rows[i][j] = self.rows[i][j].sub(&delta);
            }
        }
        let f = self.obj[c].clone();
        if !f.is_zero() {
            for j in 0..=self.n {
                let delta = f.mul(&self.rows[r][j]);
                self.obj[j] = self.obj[j].sub(&delta);
            }
        }
        self.basis[r] = c;
    }

    /// Current value of variable `j`.
    fn value_of(&self, j: usize) -> Rational {
        for (i, &b) in self.basis.iter().enumerate() {
            if b == j {
                return self.rows[i][self.n].clone();
            }
        }
        Rational::zero()
    }
}

/// A problem `A x = b` with per-variable sign restriction (`true` = x ≥ 0,
/// `false` = free).
pub struct LpProblem {
    /// Equality constraint matrix.
    pub a: Mat<Rational>,
    /// Right-hand side.
    pub b: Vec<Rational>,
    /// Per-column: restricted to nonnegative?
    pub nonneg: Vec<bool>,
}

/// Elimination record for one free variable: `(var, row_coeffs, rhs)` so
/// that `var = (rhs − Σ coeffs·x) / pivot` after solving.
struct FreeElim {
    var: usize,
    coeffs: Vec<Rational>,
    rhs: Rational,
    pivot: Rational,
}

fn eliminate_free(p: &LpProblem) -> (Vec<Vec<Rational>>, Vec<Rational>, Vec<usize>, Vec<FreeElim>) {
    let m = p.a.rows();
    let n = p.a.cols();
    let mut rows: Vec<Vec<Rational>> =
        (0..m).map(|i| (0..n).map(|j| p.a.get(i, j).clone()).collect()).collect();
    let mut rhs: Vec<Rational> = p.b.clone();
    let mut live_rows: Vec<bool> = vec![true; m];
    let mut elims: Vec<FreeElim> = Vec::new();

    for var in (0..n).filter(|&j| !p.nonneg[j]) {
        // Find a live row with a nonzero coefficient on this free variable.
        let Some(r) = (0..m).find(|&i| live_rows[i] && !rows[i][var].is_zero()) else {
            continue; // free var absent: set to 0 in the witness
        };
        let pivot = rows[r][var].clone();
        // Eliminate from all other live rows.
        for i in 0..m {
            if i == r || !live_rows[i] || rows[i][var].is_zero() {
                continue;
            }
            let f = rows[i][var].div(&pivot);
            let (row_i, row_r) = if i < r {
                let (a, b) = rows.split_at_mut(r);
                (&mut a[i], &b[0])
            } else {
                let (a, b) = rows.split_at_mut(i);
                (&mut b[0], &a[r])
            };
            for (cell, pv) in row_i.iter_mut().zip(row_r.iter()).take(n) {
                let delta = f.mul(pv);
                *cell = cell.sub(&delta);
            }
            let delta = f.mul(&rhs[r]);
            rhs[i] = rhs[i].sub(&delta);
        }
        // Record and retire the pivot row: whatever the other variables
        // take, this free variable absorbs the residual.
        elims.push(FreeElim { var, coeffs: rows[r].clone(), rhs: rhs[r].clone(), pivot });
        live_rows[r] = false;
    }

    let kept: Vec<usize> = (0..m).filter(|&i| live_rows[i]).collect();
    let kept_rows: Vec<Vec<Rational>> = kept.iter().map(|&i| rows[i].clone()).collect();
    let kept_rhs: Vec<Rational> = kept.iter().map(|&i| rhs[i].clone()).collect();
    let cols: Vec<usize> = (0..n).filter(|&j| p.nonneg[j]).collect();
    (kept_rows, kept_rhs, cols, elims)
}

/// Tests feasibility of `A x = b` with the given sign restrictions.
/// Returns a witness `x` on success.
pub fn lp_feasible(p: &LpProblem) -> Option<Vec<Rational>> {
    let n_all = p.a.cols();
    assert_eq!(p.b.len(), p.a.rows(), "rhs length mismatch");
    assert_eq!(p.nonneg.len(), n_all, "nonneg length mismatch");
    let (rows, rhs, cols, elims) = eliminate_free(p);
    let m = rows.len();
    let n = cols.len();

    // Standard form with artificials; ensure rhs ≥ 0.
    let mut trows: Vec<Vec<Rational>> = Vec::with_capacity(m);
    for (i, row) in rows.iter().enumerate() {
        let mut t: Vec<Rational> = Vec::with_capacity(n + m + 1);
        let flip = rhs[i].signum() < 0;
        for &c in &cols {
            t.push(if flip { row[c].neg() } else { row[c].clone() });
        }
        for k in 0..m {
            t.push(if k == i { Rational::one() } else { Rational::zero() });
        }
        t.push(if flip { rhs[i].neg() } else { rhs[i].clone() });
        trows.push(t);
    }
    // Phase-1 objective: maximize −Σ artificials → reduced obj row.
    let mut obj = vec![Rational::zero(); n + m + 1];
    for row in &trows {
        for (j, cell) in obj.iter_mut().enumerate() {
            *cell = cell.add(&row[j]);
        }
    }
    for cell in obj.iter_mut().take(n + m).skip(n) {
        *cell = Rational::zero();
    }
    let mut tab =
        Tableau { rows: trows, obj, basis: (n..n + m).collect(), n: n + m, enter_limit: n + m };
    let bounded = tab.solve();
    debug_assert!(bounded, "phase-1 objective is bounded by construction");
    if !tab.obj[tab.n].is_zero() {
        return None; // artificial residue: infeasible
    }
    // Build the witness: nonneg variables from the tableau, then
    // back-substitute the eliminated free variables in reverse order.
    let mut x = vec![Rational::zero(); n_all];
    for (k, &c) in cols.iter().enumerate() {
        x[c] = tab.value_of(k);
    }
    for e in elims.iter().rev() {
        let mut acc = e.rhs.clone();
        for (j, coeff) in e.coeffs.iter().enumerate() {
            if j != e.var && !coeff.is_zero() {
                acc = acc.sub(&coeff.mul(&x[j]));
            }
        }
        x[e.var] = acc.div(&e.pivot);
    }
    Some(x)
}

/// Maximizes `c·x` subject to `A x = b` and the sign restrictions.
pub fn lp_maximize(p: &LpProblem, c: &[Rational]) -> LpOutcome {
    let n_all = p.a.cols();
    assert_eq!(c.len(), n_all, "objective length mismatch");
    let (rows, rhs, cols, elims) = eliminate_free(p);
    let m = rows.len();
    let n = cols.len();

    // Substitute eliminated free variables into the objective:
    // var = (rhs − Σ coeffs·x)/pivot contributes c_var·that.
    let mut eff_c: Vec<Rational> = c.to_vec();
    let mut const_term = Rational::zero();
    for e in elims.iter().rev() {
        let cv = eff_c[e.var].clone();
        if cv.is_zero() {
            continue;
        }
        eff_c[e.var] = Rational::zero();
        let scale = cv.div(&e.pivot);
        const_term = const_term.add(&scale.mul(&e.rhs));
        for (j, coeff) in e.coeffs.iter().enumerate() {
            if j != e.var && !coeff.is_zero() {
                eff_c[j] = eff_c[j].sub(&scale.mul(coeff));
            }
        }
    }
    // Any remaining free variable with nonzero objective and no constraint
    // row: unbounded.
    for (j, c) in eff_c.iter().enumerate().take(n_all) {
        if !p.nonneg[j] && !c.is_zero() && !elims.iter().any(|e| e.var == j) {
            return LpOutcome::Unbounded;
        }
    }

    // Phase 1 (reuse lp_feasible machinery conceptually; rebuilt here to
    // keep the tableau for phase 2).
    let mut trows: Vec<Vec<Rational>> = Vec::with_capacity(m);
    for (i, row) in rows.iter().enumerate() {
        let mut t: Vec<Rational> = Vec::with_capacity(n + m + 1);
        let flip = rhs[i].signum() < 0;
        for &ccol in &cols {
            t.push(if flip { row[ccol].neg() } else { row[ccol].clone() });
        }
        for k in 0..m {
            t.push(if k == i { Rational::one() } else { Rational::zero() });
        }
        t.push(if flip { rhs[i].neg() } else { rhs[i].clone() });
        trows.push(t);
    }
    let mut obj = vec![Rational::zero(); n + m + 1];
    for row in &trows {
        for (j, cell) in obj.iter_mut().enumerate() {
            *cell = cell.add(&row[j]);
        }
    }
    for cell in obj.iter_mut().take(n + m).skip(n) {
        *cell = Rational::zero();
    }
    let mut tab =
        Tableau { rows: trows, obj, basis: (n..n + m).collect(), n: n + m, enter_limit: n + m };
    tab.solve();
    if !tab.obj[tab.n].is_zero() {
        return LpOutcome::Infeasible;
    }
    // Drive artificials out of the basis where possible; rows whose basis
    // stays artificial are redundant (all-zero) and can keep them at 0.
    for i in 0..tab.basis.len() {
        if tab.basis[i] >= n {
            if let Some(c2) = (0..n).find(|&j| !tab.rows[i][j].is_zero()) {
                tab.pivot(i, c2);
            }
        }
    }
    // Phase 2: objective over structural variables only (artificials get a
    // prohibitive negative cost by simply excluding them: set reduced cost
    // ≤ 0 by zeroing and never entering them).
    let mut obj2 = vec![Rational::zero(); tab.n + 1];
    for (k, &ccol) in cols.iter().enumerate() {
        obj2[k] = eff_c[ccol].clone();
    }
    // Reduce against the current basis.
    for (i, &b) in tab.basis.iter().enumerate() {
        if b < tab.n && !obj2[b].is_zero() {
            let f = obj2[b].clone();
            for (o, cell) in obj2.iter_mut().zip(&tab.rows[i]).take(tab.n + 1) {
                let delta = f.mul(cell);
                *o = o.sub(&delta);
            }
        }
    }
    // Never let artificials re-enter.
    tab.enter_limit = n;
    tab.obj = obj2;
    if !tab.solve() {
        return LpOutcome::Unbounded;
    }
    // Optimal value = −obj rhs + constant from eliminated variables.
    LpOutcome::Optimal(tab.obj[tab.n].neg().add(&const_term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational_mat;

    fn r(v: i64) -> Rational {
        Rational::from_i64(v)
    }

    fn prob(a: Mat<Rational>, b: Vec<i64>, nonneg: Vec<bool>) -> LpProblem {
        LpProblem { a, b: b.into_iter().map(r).collect(), nonneg }
    }

    #[test]
    fn feasible_simple() {
        // x + y = 2, x,y ≥ 0 — feasible.
        let p = prob(rational_mat(&[&[1, 1]]), vec![2], vec![true, true]);
        let x = lp_feasible(&p).unwrap();
        assert_eq!(x[0].add(&x[1]), r(2));
        assert!(x[0].signum() >= 0 && x[1].signum() >= 0);
    }

    #[test]
    fn infeasible_negative_sum() {
        // x + y = -1, x,y ≥ 0 — infeasible.
        let p = prob(rational_mat(&[&[1, 1]]), vec![-1], vec![true, true]);
        assert!(lp_feasible(&p).is_none());
    }

    #[test]
    fn free_variable_rescues() {
        // x + y = -1 with y free — feasible (y = -1 - x).
        let p = prob(rational_mat(&[&[1, 1]]), vec![-1], vec![true, false]);
        let x = lp_feasible(&p).unwrap();
        assert_eq!(x[0].add(&x[1]), r(-1));
        assert!(x[0].signum() >= 0);
    }

    #[test]
    fn witness_satisfies_all_rows() {
        let a = rational_mat(&[&[1, -1, 0, 2], &[0, 1, -1, 1], &[1, 0, -1, 3]]);
        let p = prob(a.clone(), vec![3, 1, 4], vec![true, false, true, false]);
        let x = lp_feasible(&p).unwrap();
        let res = a.matvec(&x);
        assert_eq!(res, vec![r(3), r(1), r(4)]);
        assert!(x[0].signum() >= 0 && x[2].signum() >= 0);
    }

    #[test]
    fn inconsistent_equalities() {
        // x = 1 and x = 2 simultaneously.
        let p = prob(rational_mat(&[&[1], &[1]]), vec![1, 2], vec![true]);
        assert!(lp_feasible(&p).is_none());
    }

    #[test]
    fn redundant_rows_ok() {
        let p = prob(rational_mat(&[&[1, 1], &[2, 2]]), vec![2, 4], vec![true, true]);
        assert!(lp_feasible(&p).is_some());
    }

    #[test]
    fn maximize_bounded() {
        // max x subject to x + y = 5, x,y ≥ 0 → 5.
        let p = prob(rational_mat(&[&[1, 1]]), vec![5], vec![true, true]);
        assert_eq!(lp_maximize(&p, &[r(1), r(0)]), LpOutcome::Optimal(r(5)));
        // max x + 2y → 10 at (0,5).
        assert_eq!(lp_maximize(&p, &[r(1), r(2)]), LpOutcome::Optimal(r(10)));
    }

    #[test]
    fn maximize_unbounded() {
        // max x subject to x − y = 0, x,y ≥ 0: ray (t, t).
        let p = prob(rational_mat(&[&[1, -1]]), vec![0], vec![true, true]);
        assert_eq!(lp_maximize(&p, &[r(1), r(0)]), LpOutcome::Unbounded);
    }

    #[test]
    fn maximize_infeasible() {
        let p = prob(rational_mat(&[&[1, 1]]), vec![-3], vec![true, true]);
        assert_eq!(lp_maximize(&p, &[r(1), r(0)]), LpOutcome::Infeasible);
    }

    #[test]
    fn maximize_with_free_vars() {
        // max x st x + f = 1 (f free), x ≥ 0, and x ≤ 4 via x + s = 4.
        let a = rational_mat(&[&[1, 1, 0], &[1, 0, 1]]);
        let p = prob(a, vec![1, 4], vec![true, false, true]);
        assert_eq!(lp_maximize(&p, &[r(1), r(0), r(0)]), LpOutcome::Optimal(r(4)));
        // Objective on the free variable: f = 1 − x ∈ (−∞, 1]; max f = 1.
        let a = rational_mat(&[&[1, 1, 0], &[1, 0, 1]]);
        let p = prob(a, vec![1, 4], vec![true, false, true]);
        assert_eq!(lp_maximize(&p, &[r(0), r(1), r(0)]), LpOutcome::Optimal(r(1)));
    }

    #[test]
    fn steady_state_flux_feasibility() {
        // Tiny network: in → A → out. v_in = v_out ≥ 0; forcing v_in = 1
        // feasible, v_in = −1 infeasible.
        let n = rational_mat(&[&[1, -1]]);
        // Add row v_0 = 1.
        let a = rational_mat(&[&[1, -1], &[1, 0]]);
        let p = prob(a.clone(), vec![0, 1], vec![true, true]);
        assert!(lp_feasible(&p).is_some());
        let p = prob(a, vec![0, -1], vec![true, true]);
        assert!(lp_feasible(&p).is_none());
        let _ = n;
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Classic degenerate LP; Bland's rule must terminate.
        let a = rational_mat(&[&[1, 1, 1, 0], &[1, -1, 0, 1]]);
        let p = prob(a, vec![0, 0], vec![true, true, true, true]);
        let x = lp_feasible(&p).unwrap();
        assert!(x.iter().all(|v| v.signum() >= 0));
        assert_eq!(
            lp_maximize(
                &{
                    let a = rational_mat(&[&[1, 1, 1, 0], &[1, -1, 0, 1]]);
                    prob(a, vec![0, 0], vec![true, true, true, true])
                },
                &[r(1), r(0), r(0), r(0)]
            ),
            LpOutcome::Optimal(r(0))
        );
    }
}
