//! # efm-linalg — exact dense linear algebra for EFM computation
//!
//! Three jobs, all in service of the Nullspace Algorithm:
//!
//! 1. **Rank tests** ([`rank_of_cols`], [`nullity_of_cols`]) — fraction-free
//!    Bareiss elimination in caller-provided scratch space; this is the
//!    algebraic elementarity test executed millions of times per run.
//! 2. **Kernel bases** ([`kernel_basis`]) — RREF-based nullspace construction
//!    in the `[I; R(2)]` shape the algorithm starts from, with pivot-column
//!    preferences for the divide-and-conquer partition reactions.
//! 3. **Applications** ([`nnls`]) — flux decomposition onto modes.
//!
//! Everything is generic over [`efm_numeric::Scalar`]; exact integer /
//! rational arithmetic is the default throughout the workspace.

#![warn(missing_docs)]

mod elim;
mod kernel;
mod matrix;
mod nnls;
mod simplex;

pub use elim::{
    bareiss_rank_in_place, gauss_rank_in_place_f64, nullity, nullity_of_cols, rank, rank_of_cols,
    rank_of_cols_f64,
};
pub use kernel::{
    kernel_basis, kernel_to_primitive_int, rational_mat, rref, rref_with_col_order, KernelBasis,
    Rref,
};
pub use matrix::Mat;
pub use nnls::{least_squares, nnls, solve_dense, NnlsSolution};
pub use simplex::{lp_feasible, lp_maximize, LpOutcome, LpProblem};
