//! Dense row-major matrices over any [`Scalar`].

use efm_numeric::Scalar;
use std::fmt;

/// A dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Mat<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Mat<S> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![S::zero(); rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            *m.get_mut(i, i) = S::one();
        }
        m
    }

    /// Builds a matrix from nested rows. Panics on ragged input.
    pub fn from_rows(rows: Vec<Vec<S>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Builds from integer literals (test / dataset convenience).
    pub fn from_i64_rows(rows: &[&[i64]]) -> Self {
        Self::from_rows(rows.iter().map(|r| r.iter().map(|&v| S::from_i64(v)).collect()).collect())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element reference.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &S {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }

    /// Mutable element reference.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut S {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Sets an element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[S] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A column, cloned.
    pub fn col(&self, c: usize) -> Vec<S> {
        (0..self.rows).map(|r| self.get(r, c).clone()).collect()
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Swaps two columns.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c).clone());
            }
        }
        out
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a.mul(rhs.get(k, j));
                    let cur = out.get(i, j).add(&add);
                    out.set(i, j, cur);
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[S]) -> Vec<S> {
        assert_eq!(self.cols, v.len(), "shape mismatch in matvec");
        (0..self.rows)
            .map(|r| {
                let mut acc = S::zero();
                for (c, vc) in v.iter().enumerate() {
                    let a = self.get(r, c);
                    if !a.is_zero() {
                        acc = acc.add(&a.mul(vc));
                    }
                }
                acc
            })
            .collect()
    }

    /// New matrix keeping only the given columns, in the given order.
    pub fn select_cols(&self, cols: &[usize]) -> Self {
        let mut out = Self::zeros(self.rows, cols.len());
        for (j, &c) in cols.iter().enumerate() {
            for r in 0..self.rows {
                out.set(r, j, self.get(r, c).clone());
            }
        }
        out
    }

    /// New matrix keeping only the given rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        let mut out = Self::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c).clone());
            }
        }
        out
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(Scalar::is_zero)
    }

    /// Maps every element through `f` into a new scalar type.
    pub fn map<T: Scalar>(&self, f: impl Fn(&S) -> T) -> Mat<T> {
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(f).collect() }
    }
}

impl<S: Scalar> fmt::Debug for Mat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efm_numeric::DynInt;

    type M = Mat<DynInt>;

    #[test]
    fn construction_and_access() {
        let m = M::from_i64_rows(&[&[1, 2], &[3, 4], &[5, 6]]);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.get(2, 1), &DynInt::from_i64(6));
        assert_eq!(m.row(1), &[DynInt::from_i64(3), DynInt::from_i64(4)]);
        assert_eq!(m.col(0), vec![DynInt::from_i64(1), DynInt::from_i64(3), DynInt::from_i64(5)]);
    }

    #[test]
    fn identity_matmul() {
        let m = M::from_i64_rows(&[&[1, 2], &[3, 4]]);
        let i = M::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = M::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        let b = M::from_i64_rows(&[&[7, 8], &[9, 10], &[11, 12]]);
        let c = a.matmul(&b);
        assert_eq!(c, M::from_i64_rows(&[&[58, 64], &[139, 154]]));
    }

    #[test]
    fn matvec_known() {
        let a = M::from_i64_rows(&[&[1, -1, 0], &[2, 0, 3]]);
        let v: Vec<DynInt> = [1i64, 2, 3].iter().map(|&x| DynInt::from_i64(x)).collect();
        let got = a.matvec(&v);
        assert_eq!(got, vec![DynInt::from_i64(-1), DynInt::from_i64(11)]);
    }

    #[test]
    fn transpose_involution() {
        let a = M::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), &DynInt::from_i64(6));
    }

    #[test]
    fn selections() {
        let a = M::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        assert_eq!(a.select_cols(&[2, 0]), M::from_i64_rows(&[&[3, 1], &[6, 4], &[9, 7]]));
        assert_eq!(a.select_rows(&[1]), M::from_i64_rows(&[&[4, 5, 6]]));
    }

    #[test]
    fn swaps() {
        let mut a = M::from_i64_rows(&[&[1, 2], &[3, 4]]);
        a.swap_rows(0, 1);
        assert_eq!(a, M::from_i64_rows(&[&[3, 4], &[1, 2]]));
        a.swap_cols(0, 1);
        assert_eq!(a, M::from_i64_rows(&[&[4, 3], &[2, 1]]));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = M::from_rows(vec![vec![DynInt::zero()], vec![]]);
    }
}
