//! Property tests for the linear algebra substrate: rank bounds and
//! invariances, kernel correctness, RREF shape, LP certificates.

use efm_linalg::{
    kernel_basis, lp_feasible, lp_maximize, nullity, rank, rank_of_cols_f64, rref, LpOutcome,
    LpProblem, Mat,
};
use efm_numeric::{DynInt, Rational};
use proptest::prelude::*;

fn small_mat() -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1usize..5, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(-4i64..5, c), r)
    })
}

fn to_int(rows: &[Vec<i64>]) -> Mat<DynInt> {
    Mat::from_rows(rows.iter().map(|r| r.iter().map(|&v| DynInt::from_i64(v)).collect()).collect())
}

fn to_rat(rows: &[Vec<i64>]) -> Mat<Rational> {
    Mat::from_rows(
        rows.iter().map(|r| r.iter().map(|&v| Rational::from_i64(v)).collect()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn rank_bounds_and_transpose_invariance(rows in small_mat()) {
        let m = to_int(&rows);
        let r = rank(&m);
        prop_assert!(r <= m.rows().min(m.cols()));
        prop_assert_eq!(r, rank(&m.transpose()));
    }

    #[test]
    fn rank_matches_f64_rank(rows in small_mat()) {
        let m = to_int(&rows);
        let cols: Vec<usize> = (0..m.cols()).collect();
        let mut scratch = Vec::new();
        let f = rank_of_cols_f64(&m, &cols, &mut scratch, 1e-9);
        prop_assert_eq!(rank(&m), f);
    }

    #[test]
    fn kernel_annihilates_and_spans(rows in small_mat()) {
        let n = to_rat(&rows);
        let kb = kernel_basis(&n, &[]);
        prop_assert_eq!(kb.k.cols(), nullity(&n));
        prop_assert!(n.matmul(&kb.k).is_zero());
        // Basis columns are linearly independent: rank(K) = dim.
        if kb.k.cols() > 0 {
            prop_assert_eq!(rank(&kb.k), kb.k.cols());
        }
    }

    #[test]
    fn rref_pivots_are_canonical(rows in small_mat()) {
        let n = to_rat(&rows);
        let r = rref(&n);
        prop_assert_eq!(r.pivot_cols.len(), rank(&n));
        for (i, &c) in r.pivot_cols.iter().enumerate() {
            prop_assert!(r.mat.get(i, c).is_one(), "pivot must be 1");
            for i2 in 0..n.rows() {
                if i2 != i {
                    prop_assert!(r.mat.get(i2, c).is_zero(), "pivot column must be unit");
                }
            }
        }
    }

    #[test]
    fn lp_feasible_witness_is_valid(rows in small_mat(), nonneg_mask in any::<u8>()) {
        let a = to_rat(&rows);
        let nonneg: Vec<bool> = (0..a.cols()).map(|j| nonneg_mask >> (j % 8) & 1 == 1).collect();
        // Homogeneous system: x = 0 is always feasible, so lp_feasible must
        // succeed and its witness must satisfy the constraints.
        let p = LpProblem { a: a.clone(), b: vec![Rational::zero(); a.rows()], nonneg: nonneg.clone() };
        let x = lp_feasible(&p).expect("homogeneous system is feasible");
        let res = a.matvec(&x);
        prop_assert!(res.iter().all(|v| v.is_zero()));
        for (xi, nn) in x.iter().zip(&nonneg) {
            if *nn {
                prop_assert!(xi.signum() >= 0);
            }
        }
    }

    #[test]
    fn lp_maximize_zero_objective_is_zero(rows in small_mat()) {
        let a = to_rat(&rows);
        let c = vec![Rational::zero(); a.cols()];
        let p = LpProblem {
            a: a.clone(),
            b: vec![Rational::zero(); a.rows()],
            nonneg: vec![true; a.cols()],
        };
        match lp_maximize(&p, &c) {
            LpOutcome::Optimal(v) => prop_assert!(v.is_zero()),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }
}
