//! validate-trace — schema validation for exported Chrome traces.
//!
//! ```text
//! validate-trace <trace.json> [--require-tracks N] [--require-names a,b,c]
//!                             [--require-flows N]
//! ```
//!
//! Checks, in order:
//! 1. the file is well-formed JSON with a `traceEvents` array;
//! 2. every event carries `ph`, `pid` and `tid`, and every `B`/`E`/
//!    `i`/`C` event carries a numeric `ts`; flow events (`s`/`t`/`f`)
//!    additionally carry a numeric `id`;
//! 3. per track (tid), timestamps are non-decreasing and `B`/`E`
//!    events balance without going negative (valid span nesting);
//! 4. flow pairing: every flow id has exactly one `s` (start) and
//!    exactly one `f` (finish), every `t`/`f` has a matching `s`, and
//!    the finish does not precede the start — the exporter is expected
//!    to drop dangling chains (e.g. a send whose receiver died), so any
//!    unpaired flow in the file is a bug;
//! 5. `--require-tracks N`: at least N named (thread_name) tracks with
//!    at least one span each — one per cluster rank;
//! 6. `--require-names a,b,...`: each name occurs somewhere as a span
//!    or instant event — used by CI to assert the six engine phases,
//!    barrier waits and injected faults all made it into the trace;
//! 7. `--require-flows N`: at least N distinct flow chains — used by CI
//!    to assert causal message arrows survived export.
//!
//! Exits 0 on success, 1 with a message on the first violation.

use efm_obs::json::{parse, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate-trace: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = None;
    let mut require_tracks = 0usize;
    let mut require_flows = 0usize;
    let mut require_names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-tracks" => {
                require_tracks = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--require-tracks wants a number");
                    std::process::exit(2);
                })
            }
            "--require-flows" => {
                require_flows = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--require-flows wants a number");
                    std::process::exit(2);
                })
            }
            "--require-names" => {
                require_names = it
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                    .unwrap_or_default()
            }
            other if !other.starts_with('-') => path = Some(other.to_string()),
            _ => {
                eprintln!(
                    "usage: validate-trace <trace.json> [--require-tracks N] \
                     [--require-names a,b,c] [--require-flows N]"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        return fail("no trace file given");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        return fail("no traceEvents array");
    };

    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut depth: BTreeMap<i64, i64> = BTreeMap::new();
    let mut track_names: BTreeMap<i64, String> = BTreeMap::new();
    let mut tracks_with_spans: BTreeSet<i64> = BTreeSet::new();
    let mut seen_names: BTreeSet<String> = BTreeSet::new();
    // Per flow id: (starts, steps, finishes, start ts, finish ts).
    let mut flows: BTreeMap<i64, (u32, u32, u32, f64, f64)> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph").and_then(Value::as_str) {
            Some(p) => p,
            None => return fail(&format!("event {i} has no ph")),
        };
        let tid = match e.get("tid").and_then(Value::as_num) {
            Some(t) => t as i64,
            None => return fail(&format!("event {i} has no tid")),
        };
        if e.get("pid").and_then(Value::as_num).is_none() {
            return fail(&format!("event {i} has no pid"));
        }
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if let Some(n) =
                        e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                    {
                        track_names.insert(tid, n.to_string());
                    }
                }
                continue;
            }
            "B" | "E" | "i" | "C" | "s" | "t" | "f" => {
                let Some(ts) = e.get("ts").and_then(Value::as_num) else {
                    return fail(&format!("event {i} (ph={ph}) has no ts"));
                };
                let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                if ts < *last {
                    return fail(&format!(
                        "event {i}: ts {ts} goes backwards on tid {tid} (last {last})"
                    ));
                }
                *last = ts;
                if matches!(ph, "s" | "t" | "f") {
                    let Some(id) = e.get("id").and_then(Value::as_num) else {
                        return fail(&format!("event {i} (ph={ph}) has no flow id"));
                    };
                    let entry =
                        flows.entry(id as i64).or_insert((0, 0, 0, f64::INFINITY, f64::INFINITY));
                    match ph {
                        "s" => {
                            entry.0 += 1;
                            entry.3 = ts;
                        }
                        "t" => entry.1 += 1,
                        _ => {
                            entry.2 += 1;
                            entry.4 = ts;
                        }
                    }
                }
            }
            other => return fail(&format!("event {i}: unknown ph {other:?}")),
        }
        if let Some(n) = e.get("name").and_then(Value::as_str) {
            seen_names.insert(n.to_string());
        }
        match ph {
            "B" => {
                *depth.entry(tid).or_insert(0) += 1;
                tracks_with_spans.insert(tid);
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return fail(&format!("event {i}: E without B on tid {tid}"));
                }
            }
            _ => {}
        }
    }
    for (tid, d) in &depth {
        if *d != 0 {
            return fail(&format!("tid {tid}: {d} unclosed span(s)"));
        }
    }
    for (id, (starts, steps, finishes, start_ts, finish_ts)) in &flows {
        if *starts != 1 {
            return fail(&format!("flow {id}: {starts} start(s), want exactly 1"));
        }
        if *finishes != 1 {
            return fail(&format!(
                "flow {id}: {finishes} finish(es) for {starts} start + {steps} step(s), \
                 want exactly 1"
            ));
        }
        if finish_ts < start_ts {
            return fail(&format!(
                "flow {id}: finish ts {finish_ts} precedes start ts {start_ts}"
            ));
        }
    }
    if flows.len() < require_flows {
        return fail(&format!("wanted {require_flows} flow chains, found {}", flows.len()));
    }
    let named_span_tracks =
        tracks_with_spans.iter().filter(|tid| track_names.contains_key(tid)).count();
    if named_span_tracks < require_tracks {
        return fail(&format!(
            "wanted {require_tracks} named tracks with spans, found {named_span_tracks} \
             ({:?})",
            track_names.values().collect::<Vec<_>>()
        ));
    }
    for want in &require_names {
        if !seen_names.iter().any(|n| n.contains(want.as_str())) {
            return fail(&format!("required event name {want:?} never appears"));
        }
    }
    println!(
        "validate-trace: OK: {} events, {} tracks ({} named), {} distinct names, {} flows",
        events.len(),
        tracks_with_spans.len().max(last_ts.len()),
        track_names.len(),
        seen_names.len(),
        flows.len()
    );
    ExitCode::SUCCESS
}
