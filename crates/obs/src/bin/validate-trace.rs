//! validate-trace — schema validation for exported Chrome traces.
//!
//! ```text
//! validate-trace <trace.json> [--require-tracks N] [--require-names a,b,c]
//! ```
//!
//! Checks, in order:
//! 1. the file is well-formed JSON with a `traceEvents` array;
//! 2. every event carries `ph`, `pid` and `tid`, and every `B`/`E`/
//!    `i`/`C` event carries a numeric `ts`;
//! 3. per track (tid), timestamps are non-decreasing and `B`/`E`
//!    events balance without going negative (valid span nesting);
//! 4. `--require-tracks N`: at least N named (thread_name) tracks with
//!    at least one span each — one per cluster rank;
//! 5. `--require-names a,b,...`: each name occurs somewhere as a span
//!    or instant event — used by CI to assert the six engine phases,
//!    barrier waits and injected faults all made it into the trace.
//!
//! Exits 0 on success, 1 with a message on the first violation.

use efm_obs::json::{parse, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate-trace: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = None;
    let mut require_tracks = 0usize;
    let mut require_names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-tracks" => {
                require_tracks = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--require-tracks wants a number");
                    std::process::exit(2);
                })
            }
            "--require-names" => {
                require_names = it
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                    .unwrap_or_default()
            }
            other if !other.starts_with('-') => path = Some(other.to_string()),
            _ => {
                eprintln!(
                    "usage: validate-trace <trace.json> [--require-tracks N] \
                     [--require-names a,b,c]"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        return fail("no trace file given");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        return fail("no traceEvents array");
    };

    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut depth: BTreeMap<i64, i64> = BTreeMap::new();
    let mut track_names: BTreeMap<i64, String> = BTreeMap::new();
    let mut tracks_with_spans: BTreeSet<i64> = BTreeSet::new();
    let mut seen_names: BTreeSet<String> = BTreeSet::new();

    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph").and_then(Value::as_str) {
            Some(p) => p,
            None => return fail(&format!("event {i} has no ph")),
        };
        let tid = match e.get("tid").and_then(Value::as_num) {
            Some(t) => t as i64,
            None => return fail(&format!("event {i} has no tid")),
        };
        if e.get("pid").and_then(Value::as_num).is_none() {
            return fail(&format!("event {i} has no pid"));
        }
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if let Some(n) =
                        e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                    {
                        track_names.insert(tid, n.to_string());
                    }
                }
                continue;
            }
            "B" | "E" | "i" | "C" => {
                let Some(ts) = e.get("ts").and_then(Value::as_num) else {
                    return fail(&format!("event {i} (ph={ph}) has no ts"));
                };
                let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                if ts < *last {
                    return fail(&format!(
                        "event {i}: ts {ts} goes backwards on tid {tid} (last {last})"
                    ));
                }
                *last = ts;
            }
            other => return fail(&format!("event {i}: unknown ph {other:?}")),
        }
        if let Some(n) = e.get("name").and_then(Value::as_str) {
            seen_names.insert(n.to_string());
        }
        match ph {
            "B" => {
                *depth.entry(tid).or_insert(0) += 1;
                tracks_with_spans.insert(tid);
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return fail(&format!("event {i}: E without B on tid {tid}"));
                }
            }
            _ => {}
        }
    }
    for (tid, d) in &depth {
        if *d != 0 {
            return fail(&format!("tid {tid}: {d} unclosed span(s)"));
        }
    }
    let named_span_tracks =
        tracks_with_spans.iter().filter(|tid| track_names.contains_key(tid)).count();
    if named_span_tracks < require_tracks {
        return fail(&format!(
            "wanted {require_tracks} named tracks with spans, found {named_span_tracks} \
             ({:?})",
            track_names.values().collect::<Vec<_>>()
        ));
    }
    for want in &require_names {
        if !seen_names.iter().any(|n| n.contains(want.as_str())) {
            return fail(&format!("required event name {want:?} never appears"));
        }
    }
    println!(
        "validate-trace: OK: {} events, {} tracks ({} named), {} distinct names",
        events.len(),
        tracks_with_spans.len().max(last_ts.len()),
        track_names.len(),
        seen_names.len()
    );
    ExitCode::SUCCESS
}
