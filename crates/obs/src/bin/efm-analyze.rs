//! efm-analyze — critical-path extraction and wall-clock attribution for
//! exported cluster traces.
//!
//! ```text
//! efm-analyze <trace.json> [--json <out.json>]
//! efm-analyze --check-bundle <dir>
//! ```
//!
//! The first form walks a merged Chrome trace (as written by `--trace`),
//! reconstructs the cross-rank happens-before graph from flow events
//! (`ph:"s"/"t"/"f"` bind a sender timestamp to every receiver timestamp),
//! and reports:
//!
//! * **Attribution** — every microsecond of every rank track is charged
//!   to a category by its *innermost* enclosing span: `compute` (engine
//!   phases, setup, iteration, finalize), `comm` (communicate /
//!   allgather / message spans), `barrier` (barrier waits), `straggler`
//!   (injected straggle sleeps), `checkpoint` (snapshot writes), or
//!   `recovery` (inter-attempt gaps bracketed by a supervisor action).
//!   Time covered by no span and no supervisor action is `other` — the
//!   honesty bucket; coverage is reported against it.
//! * **Critical path** — starting from the last event on the
//!   latest-finishing rank, the walk repeatedly jumps backward through
//!   the most recent flow arrival on the current track to the sender's
//!   timestamp, yielding the chain of segments that actually bounded the
//!   run. Each segment is attributed with the same category sweep, and
//!   the path records whether it crossed a `view change` edge (the
//!   failover handoff) — the signature of a run whose length was set by
//!   a rank death.
//! * **Per-subset totals** — wall time under `subset <id>: …` spans, for
//!   divide-and-conquer runs.
//!
//! Output is a JSON document (stdout, or `--json <path>`) plus a
//! human-readable table on stderr.
//!
//! The second form validates a postmortem bundle directory written by the
//! flight recorder: the manifest parses, every file it lists exists, and
//! the contained trace/metrics parse as JSON.

use efm_obs::json::{escape, parse, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::process::ExitCode;

const CATEGORIES: [&str; 7] =
    ["compute", "comm", "barrier", "straggler", "checkpoint", "recovery", "other"];

/// Innermost-span name → attribution category.
fn category(name: &str) -> &'static str {
    let n = name;
    if n.starts_with("barrier wait") || n.starts_with("barrier release") {
        "barrier"
    } else if n == "straggle" {
        "straggler"
    } else if n.starts_with("allgather")
        || n.starts_with("communicate")
        || n.starts_with("allreduce")
        || n.starts_with("broadcast")
        || n.starts_with("gather")
        || n.starts_with("scatter")
        || n.starts_with("send")
        || n.starts_with("recv")
        || n.starts_with("msg ")
    {
        "comm"
    } else if n.starts_with("checkpoint") {
        "checkpoint"
    } else {
        "compute"
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Ph {
    Meta,
    Begin,
    End,
    Instant,
    Counter,
    FlowStart,
    FlowStep,
    FlowEnd,
}

struct Ev {
    ph: Ph,
    ts: f64,
    name: String,
}

struct Trace {
    /// Per-tid events in timestamp order (export order within a track).
    by_tid: BTreeMap<i64, Vec<Ev>>,
    track_names: BTreeMap<i64, String>,
    /// `supervisor: …` instants, any track, sorted by ts.
    supervisor_ts: Vec<f64>,
    /// flow id → (sender tid, sender ts, flow name).
    flow_src: BTreeMap<i64, (i64, f64, String)>,
    /// Per-tid flow arrivals (`t`/`f`): (ts, flow id), sorted by ts.
    arrivals: BTreeMap<i64, Vec<(f64, i64)>>,
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text)?;
    let events = doc.get("traceEvents").and_then(Value::as_arr).ok_or("no traceEvents array")?;
    let mut t = Trace {
        by_tid: BTreeMap::new(),
        track_names: BTreeMap::new(),
        supervisor_ts: Vec::new(),
        flow_src: BTreeMap::new(),
        arrivals: BTreeMap::new(),
    };
    for e in events {
        let ph = match e.get("ph").and_then(Value::as_str) {
            Some("M") => Ph::Meta,
            Some("B") => Ph::Begin,
            Some("E") => Ph::End,
            Some("i") | Some("I") => Ph::Instant,
            Some("C") => Ph::Counter,
            Some("s") => Ph::FlowStart,
            Some("t") => Ph::FlowStep,
            Some("f") => Ph::FlowEnd,
            _ => continue,
        };
        let tid = e.get("tid").and_then(Value::as_num).unwrap_or(0.0) as i64;
        let name = e.get("name").and_then(Value::as_str).unwrap_or("").to_string();
        if ph == Ph::Meta {
            if name == "thread_name" {
                if let Some(n) = e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                {
                    t.track_names.insert(tid, n.to_string());
                }
            }
            continue;
        }
        let Some(ts) = e.get("ts").and_then(Value::as_num) else { continue };
        let id = e.get("id").and_then(Value::as_num).unwrap_or(-1.0) as i64;
        if ph == Ph::Instant && name.starts_with("supervisor:") {
            t.supervisor_ts.push(ts);
        }
        match ph {
            Ph::FlowStart => {
                t.flow_src.insert(id, (tid, ts, name.clone()));
            }
            Ph::FlowStep | Ph::FlowEnd => {
                t.arrivals.entry(tid).or_default().push((ts, id));
            }
            _ => {}
        }
        t.by_tid.entry(tid).or_default().push(Ev { ph, ts, name });
    }
    t.supervisor_ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for v in t.arrivals.values_mut() {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    Ok(t)
}

/// One track's attribution: per-category microseconds plus the uncovered
/// gaps (for recovery classification) and subset span totals.
#[derive(Default)]
struct Sweep {
    cats: BTreeMap<&'static str, f64>,
    gaps: Vec<(f64, f64)>,
    subsets: BTreeMap<u64, f64>,
    first_ts: f64,
    last_ts: f64,
}

/// Stack sweep over one track, optionally clipped to `[clip0, clip1]`.
/// Every elementary interval between consecutive events is charged to the
/// innermost open span's category; stack-empty intervals become gaps.
fn sweep(events: &[Ev], clip: Option<(f64, f64)>) -> Sweep {
    let mut s = Sweep::default();
    if events.is_empty() {
        return s;
    }
    s.first_ts = events[0].ts;
    s.last_ts = events[events.len() - 1].ts;
    let (c0, c1) = clip.unwrap_or((f64::NEG_INFINITY, f64::INFINITY));
    let mut stack: Vec<&str> = Vec::new();
    let mut subset_open: Vec<(u64, f64)> = Vec::new();
    let mut prev = events[0].ts;
    for e in events {
        let (a, b) = (prev.max(c0), e.ts.min(c1));
        if b > a {
            match stack.last() {
                Some(top) => *s.cats.entry(category(top)).or_insert(0.0) += b - a,
                None => s.gaps.push((a, b)),
            }
        }
        match e.ph {
            Ph::Begin => {
                if let Some(rest) = e.name.strip_prefix("subset ") {
                    let id: Option<u64> =
                        rest.split(|c: char| !c.is_ascii_digit()).next().and_then(|d| d.parse().ok());
                    if let Some(id) = id {
                        subset_open.push((id, e.ts.max(c0)));
                    }
                }
                stack.push(&e.name);
            }
            Ph::End => {
                if let Some(top) = stack.pop() {
                    if top.starts_with("subset ") {
                        if let Some((id, t0)) = subset_open.pop() {
                            let t1 = e.ts.min(c1);
                            if t1 > t0 {
                                *s.subsets.entry(id).or_insert(0.0) += t1 - t0;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        prev = e.ts;
    }
    s
}

/// Reclassifies a track's gaps: a gap bracketing a supervisor action is
/// recovery (the rank was torn down and respawned); anything else stays
/// unattributed.
fn settle_gaps(s: &mut Sweep, supervisor_ts: &[f64]) {
    for (g0, g1) in std::mem::take(&mut s.gaps) {
        let recovery = supervisor_ts.iter().any(|ts| *ts >= g0 && *ts <= g1);
        let cat = if recovery { "recovery" } else { "other" };
        *s.cats.entry(cat).or_insert(0.0) += g1 - g0;
    }
}

struct CpSegment {
    tid: i64,
    t0: f64,
    t1: f64,
    via: Option<String>,
}

/// Backward happens-before walk: from `(tid, t)`, the most recent flow
/// arrival at or before `t` hands the path to the sender's timestamp;
/// with no arrival left, the path runs to the track's first event and
/// terminates. Each flow id is used at most once, so the walk always
/// terminates even on ties.
fn critical_path(trace: &Trace, start_tid: i64, start_ts: f64) -> (Vec<CpSegment>, bool) {
    let mut segs = Vec::new();
    let mut crossed = false;
    let mut used: BTreeSet<i64> = BTreeSet::new();
    let mut cur = (start_tid, start_ts);
    for _ in 0..100_000 {
        let (tid, t) = cur;
        let first_ts = trace.by_tid.get(&tid).and_then(|v| v.first()).map_or(t, |e| e.ts);
        let hop = trace.arrivals.get(&tid).and_then(|arr| {
            arr.iter()
                .rev()
                .find(|(ts, id)| *ts <= t && !used.contains(id) && trace.flow_src.contains_key(id))
        });
        match hop {
            Some(&(ats, id)) => {
                used.insert(id);
                let (stid, sts, ref name) = trace.flow_src[&id];
                segs.push(CpSegment { tid, t0: ats, t1: t, via: Some(name.clone()) });
                crossed |= name == "view change";
                cur = (stid, sts);
            }
            None => {
                segs.push(CpSegment { tid, t0: first_ts, t1: t, via: None });
                break;
            }
        }
    }
    (segs, crossed)
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

fn check_bundle(dir: &str) -> ExitCode {
    let dir = std::path::Path::new(dir);
    let manifest = dir.join("manifest.json");
    let text = match std::fs::read_to_string(&manifest) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {}: {e}", manifest.display())),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("manifest is not valid JSON: {e}")),
    };
    for key in ["tag", "reason", "at_us", "files"] {
        if doc.get(key).is_none() {
            return fail(&format!("manifest missing {key:?}"));
        }
    }
    let files = doc.get("files").and_then(Value::as_arr).unwrap_or(&[]);
    for f in files {
        let Some(name) = f.as_str() else { continue };
        let path = dir.join(name);
        if !path.exists() {
            return fail(&format!("manifest lists {name} but it is missing"));
        }
        if name.ends_with(".json") {
            let body = match std::fs::read_to_string(&path) {
                Ok(b) => b,
                Err(e) => return fail(&format!("cannot read {name}: {e}")),
            };
            if let Err(e) = parse(&body) {
                return fail(&format!("{name} is not valid JSON: {e}"));
            }
        }
    }
    let trace = dir.join("trace.json");
    if trace.exists() {
        let body = std::fs::read_to_string(&trace).unwrap_or_default();
        match parse(&body) {
            Ok(d) if d.get("traceEvents").and_then(Value::as_arr).is_some() => {}
            _ => return fail("trace.json has no traceEvents array"),
        }
    }
    println!(
        "efm-analyze: bundle OK: tag={} files={}",
        doc.get("tag").and_then(Value::as_str).unwrap_or("?"),
        files.len()
    );
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("efm-analyze: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = None;
    let mut json_out = None;
    let mut bundle = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = it.next(),
            "--check-bundle" => bundle = it.next(),
            other if !other.starts_with('-') => path = Some(other.to_string()),
            _ => {
                eprintln!(
                    "usage: efm-analyze <trace.json> [--json out.json] | \
                     efm-analyze --check-bundle <dir>"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = bundle {
        return check_bundle(&dir);
    }
    let Some(path) = path else {
        return fail("no trace file given");
    };
    let trace = match load(&path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };

    // --- Per-track attribution. Coverage is judged on rank tracks only:
    // auxiliary tracks (supervisor, heartbeat detector) are mostly idle
    // by design and would poison the denominator.
    let mut per_track: BTreeMap<i64, Sweep> = BTreeMap::new();
    let mut subsets: BTreeMap<u64, f64> = BTreeMap::new();
    for (tid, events) in &trace.by_tid {
        let mut s = sweep(events, None);
        settle_gaps(&mut s, &trace.supervisor_ts);
        for (id, us) in &s.subsets {
            *subsets.entry(*id).or_insert(0.0) += us;
        }
        per_track.insert(*tid, s);
    }
    let is_rank = |tid: &i64| {
        trace.track_names.get(tid).is_some_and(|n| n.starts_with("rank "))
    };
    let rank_tids: Vec<i64> = trace.by_tid.keys().copied().filter(is_rank).collect();
    if rank_tids.is_empty() {
        return fail("no rank tracks in trace (was it recorded with --trace on a cluster run?)");
    }
    let mut totals: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut rank_wall = 0.0f64;
    for tid in &rank_tids {
        let s = &per_track[tid];
        rank_wall += s.last_ts - s.first_ts;
        for (c, us) in &s.cats {
            *totals.entry(c).or_insert(0.0) += us;
        }
    }
    let other = totals.get("other").copied().unwrap_or(0.0);
    let coverage_pct = if rank_wall > 0.0 { 100.0 * (1.0 - other / rank_wall) } else { 100.0 };

    // --- Critical path from the latest-finishing rank.
    let (&end_tid, end_sweep) = per_track
        .iter()
        .filter(|(tid, _)| is_rank(tid))
        .max_by(|a, b| a.1.last_ts.partial_cmp(&b.1.last_ts).unwrap())
        .expect("rank tracks are non-empty");
    let (segs, crosses_view_change) = critical_path(&trace, end_tid, end_sweep.last_ts);
    let mut cp_cats: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut cp_len = 0.0f64;
    for seg in &segs {
        cp_len += seg.t1 - seg.t0;
        if let Some(events) = trace.by_tid.get(&seg.tid) {
            let mut s = sweep(events, Some((seg.t0, seg.t1)));
            settle_gaps(&mut s, &trace.supervisor_ts);
            for (c, us) in &s.cats {
                *cp_cats.entry(c).or_insert(0.0) += us;
            }
        }
    }

    // --- JSON report.
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"trace\": \"{}\",\n", escape(&path));
    let _ = write!(out, "  \"rank_wall_us\": {rank_wall:.0},\n");
    let _ = write!(out, "  \"coverage_pct\": {coverage_pct:.2},\n");
    out.push_str("  \"totals_us\": {");
    for (i, c) in CATEGORIES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{c}\": {:.0}", totals.get(c).copied().unwrap_or(0.0));
    }
    out.push_str("},\n  \"ranks\": [\n");
    for (i, tid) in rank_tids.iter().enumerate() {
        let s = &per_track[tid];
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"tid\": {tid}, \"name\": \"{}\", \"wall_us\": {:.0}, \"categories_us\": {{",
            escape(trace.track_names.get(tid).map_or("", |s| s)),
            s.last_ts - s.first_ts
        );
        for (j, c) in CATEGORIES.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{c}\": {:.0}", s.cats.get(c).copied().unwrap_or(0.0));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n  \"subsets\": [");
    for (i, (id, us)) in subsets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"id\": {id}, \"total_us\": {us:.0}}}");
    }
    out.push_str("],\n");
    let _ = write!(out, "  \"critical_path\": {{\n    \"length_us\": {cp_len:.0},\n");
    let _ = write!(out, "    \"segments\": {},\n", segs.len());
    let _ = write!(out, "    \"crosses_view_change\": {crosses_view_change},\n");
    out.push_str("    \"categories_us\": {");
    for (i, c) in CATEGORIES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{c}\": {:.0}", cp_cats.get(c).copied().unwrap_or(0.0));
    }
    out.push_str("},\n    \"path\": [\n");
    for (i, seg) in segs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "      {{\"tid\": {}, \"track\": \"{}\", \"t0_us\": {:.0}, \"t1_us\": {:.0}{}}}",
            seg.tid,
            escape(trace.track_names.get(&seg.tid).map_or("", |s| s)),
            seg.t0,
            seg.t1,
            seg.via
                .as_ref()
                .map(|v| format!(", \"via\": \"{}\"", escape(v)))
                .unwrap_or_default()
        );
    }
    out.push_str("\n    ]\n  }\n}\n");
    match &json_out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &out) {
                return fail(&format!("cannot write {p}: {e}"));
            }
        }
        None => print!("{out}"),
    }

    // --- Human table (stderr so the JSON on stdout stays pipeable).
    eprintln!("efm-analyze: {} ({} tracks, {} rank tracks)", path, trace.by_tid.len(), rank_tids.len());
    eprintln!("{:<12} {:>10} {:>8}", "category", "total", "share");
    for c in CATEGORIES {
        let us = totals.get(c).copied().unwrap_or(0.0);
        if us == 0.0 {
            continue;
        }
        eprintln!("{c:<12} {:>10} {:>7.1}%", fmt_us(us), 100.0 * us / rank_wall.max(1.0));
    }
    eprintln!(
        "coverage: {coverage_pct:.1}% of {} rank wall-clock attributed",
        fmt_us(rank_wall)
    );
    eprintln!(
        "critical path: {} across {} segment(s), crosses view change: {crosses_view_change}",
        fmt_us(cp_len),
        segs.len()
    );
    if !subsets.is_empty() {
        let top: Vec<String> = subsets
            .iter()
            .map(|(id, us)| format!("subset {id}: {}", fmt_us(*us)))
            .collect();
        eprintln!("subsets: {}", top.join(", "));
    }
    ExitCode::SUCCESS
}
