//! Log-bucket latency histograms.
//!
//! The per-phase span totals say *how much* time a run spent waiting at
//! barriers or retrying sends; they cannot say whether that was one
//! pathological 400 ms stall or four thousand healthy 100 µs waits —
//! the distinction the paper's straggler analysis (and any serving
//! layer built on top of it) actually needs. A [`Histogram`] records a
//! `u64` sample (microseconds at every call site in this workspace)
//! into power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`, with
//! bucket 0 also absorbing zero. 64 buckets cover the full `u64` range,
//! so recording never clips.
//!
//! Design constraints, in order:
//!
//! * **Mergeable.** Bucket counts are plain sums, so per-rank
//!   histograms merge associatively and commutatively into the rank-0
//!   aggregate — the same shape as the counter aggregation in
//!   `cluster_supports_segment`.
//! * **Resume-correctable.** [`Histogram::unmerge`] subtracts a
//!   previously-merged histogram (bucket-wise, saturating), mirroring
//!   the `ck.stats.* × replicas` double-count correction used for
//!   counters when ranks resume from a shared checkpoint. `max` is a
//!   peak and survives unmerge unchanged, exactly like `peak_bytes`.
//! * **Cheap.** Recording is one branch, one `ilog2`, four adds under
//!   the global registry mutex. Hot paths only reach here after the
//!   global [`crate::enabled`] gate, and only on events that are
//!   already at least a syscall or a sleep (barrier waits, spill I/O,
//!   checkpoint writes, retry backoff), so the lock is uncontended in
//!   practice.
//!
//! Quantiles are read from the bucket upper bounds, clamped to the
//! observed maximum: p99 of a log-bucket histogram is exact to within a
//! factor of two, which is the right fidelity for "is the tail 100 µs
//! or 100 ms".

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of power-of-two buckets; covers the whole `u64` sample range.
pub const BUCKETS: usize = 64;

/// A mergeable log-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample seen. Peak semantics: survives [`Histogram::unmerge`].
    pub max: u64,
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds zeros.
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 { 0 } else { v.ilog2() as usize }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram in. Associative and commutative: merging
    /// per-rank histograms in any grouping yields the same aggregate.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Subtract a previously-merged histogram — the double-count
    /// correction for ranks that resumed from a shared checkpoint (the
    /// checkpointed distribution was replicated into every survivor's
    /// report, so the aggregate subtracts `replicas` copies). Counts
    /// and sum subtract saturating; `max` is a peak and is kept.
    pub fn unmerge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_sub(other.count);
        self.sum = self.sum.saturating_sub(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_sub(*o);
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the q-th sample, clamped to the observed max (so `p100`
    /// is exact). Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { self.sum / self.count }
    }
}

static HISTS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

/// Record a sample into the named global histogram. No-op while
/// tracing is disabled — same gate as every other recording entry
/// point, so the fault-free untraced path stays free.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    HISTS.lock().unwrap().entry(name.to_string()).or_default().record(value);
}

/// [`record`] with a computed name. Gate the `format!` behind
/// [`crate::enabled`].
pub fn record_dyn(name: String, value: u64) {
    if !crate::enabled() {
        return;
    }
    HISTS.lock().unwrap().entry(name).or_default().record(value);
}

/// Current state of one named histogram, if it was ever touched.
pub fn get(name: &str) -> Option<Histogram> {
    HISTS.lock().unwrap().get(name).cloned()
}

/// Copy of every registered histogram, name-sorted (BTreeMap order) so
/// exports are deterministic.
pub fn all() -> Vec<(String, Histogram)> {
    HISTS.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Clear the registry (called from [`crate::reset`]).
pub fn reset_all() {
    HISTS.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2, 3
        assert_eq!(h.buckets[2], 2); // 4, 7
        assert_eq!(h.buckets[3], 1); // 8
        assert_eq!(h.buckets[9], 1); // 1023
        assert_eq!(h.buckets[10], 1); // 1024
        assert_eq!(h.max, 1024);
    }

    #[test]
    fn quantiles_track_the_tail() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(h.p50() >= 100 && h.p50() < 200, "p50={}", h.p50());
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!(h.p99() <= 1_000_000);
        assert!(h.p99() >= 100);
    }

    #[test]
    fn merge_then_unmerge_roundtrips() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 10, 80] {
            a.record(v);
        }
        for v in [3, 700] {
            b.record(v);
        }
        let orig = a.clone();
        a.merge(&b);
        assert_eq!(a.count, 5);
        a.unmerge(&b);
        assert_eq!(a.count, orig.count);
        assert_eq!(a.sum, orig.sum);
        assert_eq!(a.buckets, orig.buckets);
        // max is a peak: unmerge keeps it, mirroring peak_bytes.
        assert_eq!(a.max, 700);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0);
    }
}
