//! The human `--progress` line.
//!
//! One stderr line per (throttled) engine iteration with a
//! survivor-derived ETA. The nullspace algorithm's iteration cost is
//! dominated by the pos×neg pair grid, whose size follows the survivor
//! count — so the ETA assumes each remaining iteration costs what the
//! current pair grid costs. That deliberately over-estimates early
//! (grids grow) and converges as the run approaches the final
//! iterations, which is when an ETA matters.
//!
//! Both sides of the ETA are measured in **pairs examined**: observed
//! cost is `elapsed / cumulative pairs examined`, remaining work is
//! `remaining iterations × current grid size`. An earlier revision
//! divided by *passed* candidates (the post-prefilter survivors) while
//! multiplying by *examined* pairs, which inflated the ETA by the
//! pairs/candidates prefilter ratio — often 10–100× on tree-filtered
//! runs.
//!
//! Multi-rank and steal-scheduled runs emit from several threads, so
//! each line carries the caller's rank / D&C-subset tag (a thread-local
//! set via [`set_progress_context`]) and the throttle check, line
//! formatting and write happen under one lock — concurrent emitters
//! cannot interleave fragments of a line.

use std::cell::RefCell;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static PROGRESS: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    start_us: u64,
    last_emit_us: u64,
}

thread_local! {
    static CONTEXT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Minimum gap between printed lines (except the final iteration).
const THROTTLE_US: u64 = 200_000;

/// Is the progress line enabled? One relaxed atomic load.
#[inline(always)]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Enable or disable the progress line and reset its clock.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::SeqCst);
    *STATE.lock().unwrap() = None;
}

/// Tag progress lines emitted from the current thread, e.g.
/// `"rank 0"` or `"rank 0 subset 3"`. Cluster ranks and the subset
/// scheduler set this so interleaved multi-rank / steal-schedule output
/// says which worker each line belongs to. `None` clears the tag.
pub fn set_progress_context(label: Option<String>) {
    CONTEXT.with(|c| *c.borrow_mut() = label);
}

/// The current thread's progress tag, if any.
pub fn progress_context() -> Option<String> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Report one completed engine iteration. No-op unless enabled.
///
/// * `iter`/`total_iters` — iterations done / total reaction rows.
/// * `survivors` — current intermediate mode count.
/// * `last_pairs` — pos×neg pairs examined by the iteration just done.
/// * `pairs_done` — cumulative pairs examined so far (the same unit,
///   so the ETA's cost-per-pair and remaining-pairs legs agree).
pub fn progress(iter: u64, total_iters: u64, survivors: u64, last_pairs: u64, pairs_done: u64) {
    if !progress_enabled() {
        return;
    }
    let now = crate::now_us();
    let tag = CONTEXT.with(|c| c.borrow().clone());
    // Throttle decision, formatting and the write all happen under the
    // state lock: one writer at a time, whole lines only.
    let mut st_guard = STATE.lock().unwrap();
    let st = st_guard.get_or_insert(State { start_us: now, last_emit_us: 0 });
    let due = iter >= total_iters || now.saturating_sub(st.last_emit_us) >= THROTTLE_US;
    if !due {
        return;
    }
    st.last_emit_us = now;
    let elapsed_s = (now - st.start_us) as f64 / 1e6;
    let eta_str = match eta_secs(iter, total_iters, last_pairs, pairs_done, elapsed_s) {
        Some(e) => format!("eta~{}", fmt_secs(e)),
        None => "eta~?".to_string(),
    };
    let tag = tag.map(|t| format!(" {t}")).unwrap_or_default();
    let line = format!(
        "[progress{tag}] iter {iter}/{total_iters}  survivors={survivors}  \
         pairs={pairs_done}  elapsed={}  {eta_str}\n",
        fmt_secs(elapsed_s)
    );
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
}

/// ETA = (elapsed time per examined pair so far) × (remaining
/// iterations at the current pair-grid size). Pair units on both
/// sides. Returns `None` before any pairs have been examined.
fn eta_secs(
    iter: u64,
    total_iters: u64,
    last_pairs: u64,
    pairs_done: u64,
    elapsed_s: f64,
) -> Option<f64> {
    if pairs_done == 0 || iter == 0 {
        return None;
    }
    let remaining = total_iters.saturating_sub(iter);
    let per_pair = elapsed_s / pairs_done as f64;
    Some(per_pair * remaining as f64 * last_pairs.max(1) as f64)
}

fn fmt_secs(s: f64) -> String {
    if s >= 90.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_converges_to_zero_at_the_end() {
        let eta = eta_secs(10, 10, 50, 1000, 2.0).unwrap();
        assert_eq!(eta, 0.0);
    }

    #[test]
    fn eta_scales_with_remaining_grid() {
        let near = eta_secs(9, 10, 100, 1000, 10.0).unwrap();
        let far = eta_secs(5, 10, 100, 1000, 10.0).unwrap();
        assert!(far > near);
    }

    #[test]
    fn eta_uses_pair_units_on_both_sides() {
        // 1000 pairs examined in 2 s → 2 ms per pair. One remaining
        // iteration at a 100-pair grid → 0.2 s, regardless of how few
        // candidates passed the prefilter (the old bug divided by the
        // passed count, inflating this by the prefilter ratio).
        let eta = eta_secs(9, 10, 100, 1000, 2.0).unwrap();
        assert!((eta - 0.2).abs() < 1e-9, "eta={eta}");
    }

    #[test]
    fn eta_unknown_before_first_pair() {
        assert_eq!(eta_secs(0, 10, 0, 0, 0.5), None);
        assert_eq!(eta_secs(1, 10, 10, 0, 0.5), None);
    }

    #[test]
    fn context_tag_is_thread_local() {
        set_progress_context(Some("rank 0 subset 3".into()));
        assert_eq!(progress_context().as_deref(), Some("rank 0 subset 3"));
        let other = std::thread::spawn(progress_context).join().unwrap();
        assert_eq!(other, None, "tag must not leak across threads");
        set_progress_context(None);
        assert_eq!(progress_context(), None);
    }

    #[test]
    fn formats_spans_of_time() {
        assert_eq!(fmt_secs(0.25), "250ms");
        assert_eq!(fmt_secs(2.5), "2.5s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }
}
