//! The human `--progress` line.
//!
//! One stderr line per (throttled) engine iteration with a
//! survivor-derived ETA. The nullspace algorithm's iteration cost is
//! dominated by the pos×neg pair grid, whose size follows the survivor
//! count — so the ETA assumes each remaining iteration costs what the
//! current pair grid costs. That deliberately over-estimates early
//! (grids grow) and converges as the run approaches the final
//! iterations, which is when an ETA matters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static PROGRESS: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    start_us: u64,
    last_emit_us: u64,
}

/// Minimum gap between printed lines (except the final iteration).
const THROTTLE_US: u64 = 200_000;

/// Is the progress line enabled? One relaxed atomic load.
#[inline(always)]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Enable or disable the progress line and reset its clock.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::SeqCst);
    *STATE.lock().unwrap() = None;
}

/// Report one completed engine iteration. No-op unless enabled.
///
/// * `iter`/`total_iters` — iterations done / total reaction rows.
/// * `survivors` — current intermediate mode count.
/// * `last_pairs` — pos×neg pairs examined by the iteration just done.
/// * `candidates` — cumulative candidates generated so far.
pub fn progress(iter: u64, total_iters: u64, survivors: u64, last_pairs: u64, candidates: u64) {
    if !progress_enabled() {
        return;
    }
    let now = crate::now_us();
    let (elapsed_us, due) = {
        let mut st = STATE.lock().unwrap();
        let st = st.get_or_insert(State { start_us: now, last_emit_us: 0 });
        let due = iter >= total_iters || now.saturating_sub(st.last_emit_us) >= THROTTLE_US;
        if due {
            st.last_emit_us = now;
        }
        (now - st.start_us, due)
    };
    if !due {
        return;
    }
    let elapsed_s = elapsed_us as f64 / 1e6;
    let eta = eta_secs(iter, total_iters, last_pairs, candidates, elapsed_s);
    let eta_str = match eta {
        Some(e) => format!("eta~{}", fmt_secs(e)),
        None => "eta~?".to_string(),
    };
    eprintln!(
        "[progress] iter {iter}/{total_iters}  survivors={survivors}  \
         candidates={candidates}  elapsed={}  {eta_str}",
        fmt_secs(elapsed_s)
    );
}

/// ETA = (time per candidate so far) × (remaining iterations at the
/// current pair-grid size). Returns `None` before any candidates exist.
fn eta_secs(
    iter: u64,
    total_iters: u64,
    last_pairs: u64,
    candidates: u64,
    elapsed_s: f64,
) -> Option<f64> {
    if candidates == 0 || iter == 0 {
        return None;
    }
    let remaining = total_iters.saturating_sub(iter);
    let per_candidate = elapsed_s / candidates as f64;
    Some(per_candidate * remaining as f64 * last_pairs.max(1) as f64)
}

fn fmt_secs(s: f64) -> String {
    if s >= 90.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_converges_to_zero_at_the_end() {
        let eta = eta_secs(10, 10, 50, 1000, 2.0).unwrap();
        assert_eq!(eta, 0.0);
    }

    #[test]
    fn eta_scales_with_remaining_grid() {
        let near = eta_secs(9, 10, 100, 1000, 10.0).unwrap();
        let far = eta_secs(5, 10, 100, 1000, 10.0).unwrap();
        assert!(far > near);
    }

    #[test]
    fn formats_spans_of_time() {
        assert_eq!(fmt_secs(0.25), "250ms");
        assert_eq!(fmt_secs(2.5), "2.5s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }
}
