//! Exporters for a recorded [`Snapshot`].
//!
//! * [`chrome_trace`] — Chrome `trace_event` JSON ("JSON Array Format"
//!   wrapped in a `traceEvents` object). Open it in `chrome://tracing`
//!   or drag it into <https://ui.perfetto.dev> to get a per-rank
//!   flamegraph of the six engine phases, barrier waits and faults.
//! * [`jsonl`] — one JSON object per line, easy to grep/stream.
//! * [`metrics_json`] — final counter totals as a single JSON object,
//!   the `--metrics-out` payload.

use crate::json::escape;
use crate::{EventKind, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};

/// All tracks share one Chrome "process".
const PID: u32 = 1;

/// Which flow ids have both halves recorded, and which arrival closes
/// each chain. A message sent into a run that aborted may never be
/// received; emitting its lone `ph:"s"` would leave a dangling flow, so
/// the exporter only emits chains that completed. A multi-recipient
/// flow (barrier release, view change) has several arrivals: all but
/// the last become `ph:"t"` steps, the last becomes the `ph:"f"`
/// finish, which is exactly the chain shape the format expects.
struct FlowPlan {
    /// flow id → ts of the final arrival (the `ph:"f"` event).
    finish_ts: BTreeMap<u64, u64>,
}

impl FlowPlan {
    fn build(snap: &Snapshot) -> FlowPlan {
        let mut starts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut last_end: BTreeMap<u64, u64> = BTreeMap::new();
        for t in &snap.tracks {
            for e in &t.events {
                match e.kind {
                    EventKind::FlowStart(id) => {
                        starts.entry(id).or_insert(e.ts_us);
                    }
                    EventKind::FlowEnd(id) => {
                        let slot = last_end.entry(id).or_insert(e.ts_us);
                        *slot = (*slot).max(e.ts_us);
                    }
                    _ => {}
                }
            }
        }
        let finish_ts =
            last_end.into_iter().filter(|(id, _)| starts.contains_key(id)).collect();
        FlowPlan { finish_ts }
    }

    /// `Some(ph)` if this event should be emitted, `None` to drop it.
    fn phase(&self, kind: &EventKind, ts_us: u64) -> Option<&'static str> {
        match kind {
            EventKind::FlowStart(id) => self.finish_ts.contains_key(id).then_some("s"),
            EventKind::FlowEnd(id) => {
                let last = *self.finish_ts.get(id)?;
                Some(if ts_us >= last { "f" } else { "t" })
            }
            _ => None,
        }
    }
}

/// Render the snapshot as Chrome `trace_event` JSON.
///
/// Span events use `ph:"B"`/`ph:"E"`, instants `ph:"i"` (thread scope),
/// counter samples `ph:"C"`. Per-track `thread_name` metadata labels
/// ranks, and `thread_sort_index` keeps rank order stable in the UI.
/// Timestamps are microseconds, as the format requires.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let flows = FlowPlan::build(snap);
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    emit(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"efm-suite\"}}}}"
        ),
        &mut out,
    );
    for t in &snap.tracks {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                escape(&t.name)
            ),
            &mut out,
        );
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                t.tid, t.tid
            ),
            &mut out,
        );
    }
    for t in &snap.tracks {
        for e in &t.events {
            let line = match &e.kind {
                EventKind::Begin => format!(
                    "{{\"ph\":\"B\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\"}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
                EventKind::End => {
                    format!("{{\"ph\":\"E\",\"pid\":{PID},\"tid\":{},\"ts\":{}}}", t.tid, e.ts_us)
                }
                EventKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                     \"s\":\"t\"}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
                EventKind::Counter(v) => format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                     \"args\":{{\"value\":{v}}}}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
                EventKind::FlowStart(id) | EventKind::FlowEnd(id) => {
                    let Some(ph) = flows.phase(&e.kind, e.ts_us) else { continue };
                    // `bp:"e"` binds the finish to its enclosing slice,
                    // which is how Perfetto anchors the arrow head.
                    let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
                    format!(
                        "{{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{},\"ts\":{},\
                         \"name\":\"{}\",\"cat\":\"flow\",\"id\":{id}{bp}}}",
                        t.tid,
                        e.ts_us,
                        escape(&e.name)
                    )
                }
            };
            emit(line, &mut out);
        }
        if t.dropped > 0 {
            let ts = t.events.last().map_or(0, |e| e.ts_us);
            emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{ts},\
                     \"name\":\"{} events dropped (track full)\",\"s\":\"t\"}}",
                    t.tid, t.dropped
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n]");
    if !snap.meta.is_empty() {
        // `otherData` is the trace_event format's free-form metadata
        // object; chrome://tracing and Perfetto show it in the trace
        // info panel and ignore unknown keys.
        out.push_str(",\n\"otherData\":{");
        for (i, (name, value)) in snap.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(name), escape(value));
        }
        out.push('}');
    }
    out.push_str("}\n");
    out
}

/// Render the snapshot as JSONL: one event object per line, ordered by
/// track then record order. Fields: `ts_us`, `tid`, `track`, `ph`
/// (`B`/`E`/`I`/`C`, flow halves `s`/`f`), `name`, `value` for counter
/// samples and `flow` for flow events. Unlike [`chrome_trace`], flow
/// halves are emitted raw (no pairing pass) — JSONL is the grep
/// format, and a dangling send is precisely what one greps for.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for t in &snap.tracks {
        for e in &t.events {
            let (ph, value, flow) = match &e.kind {
                EventKind::Begin => ("B", None, None),
                EventKind::End => ("E", None, None),
                EventKind::Instant => ("I", None, None),
                EventKind::Counter(v) => ("C", Some(*v), None),
                EventKind::FlowStart(id) => ("s", None, Some(*id)),
                EventKind::FlowEnd(id) => ("f", None, Some(*id)),
            };
            let _ = write!(
                out,
                "{{\"ts_us\":{},\"tid\":{},\"track\":\"{}\",\"ph\":\"{}\",\"name\":\"{}\"",
                e.ts_us,
                t.tid,
                escape(&t.name),
                ph,
                escape(&e.name)
            );
            if let Some(v) = value {
                let _ = write!(out, ",\"value\":{v}");
            }
            if let Some(id) = flow {
                let _ = write!(out, ",\"flow\":{id}");
            }
            out.push_str("}\n");
        }
    }
    out
}

/// Final counter/gauge totals as one JSON object:
/// `{"counters":{...},"meta":{...},"histograms":{...}}` (the `meta`
/// and `histograms` sections are omitted when empty). Each histogram
/// reports `count`, `sum`, `mean`, `p50`/`p95`/`p99`, `max`, and its
/// non-empty log buckets as `"log2_bucket": count` pairs, which keeps
/// the object mergeable downstream.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": {}", escape(name), value);
    }
    out.push_str("\n}");
    if !snap.meta.is_empty() {
        out.push_str(",\"meta\":{");
        for (i, (name, value)) in snap.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": \"{}\"", escape(name), escape(value));
        }
        out.push_str("\n}");
    }
    if !snap.hists.is_empty() {
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in snap.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  \"{}\": {{\"count\":{},\"sum\":{},\"mean\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"buckets\":{{",
                escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
            let mut firstb = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !std::mem::take(&mut firstb) {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{b}\":{c}");
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n}");
    }
    out.push_str("}\n");
    out
}

/// Write [`chrome_trace`] output to `w`.
pub fn write_chrome_trace<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace(snap).as_bytes())
}

/// Write [`jsonl`] output to `w`.
pub fn write_jsonl<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(jsonl(snap).as_bytes())
}

/// Write [`metrics_json`] output to `w`.
pub fn write_metrics<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(metrics_json(snap).as_bytes())
}
