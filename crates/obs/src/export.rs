//! Exporters for a recorded [`Snapshot`].
//!
//! * [`chrome_trace`] — Chrome `trace_event` JSON ("JSON Array Format"
//!   wrapped in a `traceEvents` object). Open it in `chrome://tracing`
//!   or drag it into <https://ui.perfetto.dev> to get a per-rank
//!   flamegraph of the six engine phases, barrier waits and faults.
//! * [`jsonl`] — one JSON object per line, easy to grep/stream.
//! * [`metrics_json`] — final counter totals as a single JSON object,
//!   the `--metrics-out` payload.

use crate::json::escape;
use crate::{EventKind, Snapshot};
use std::fmt::Write as _;
use std::io::{self, Write};

/// All tracks share one Chrome "process".
const PID: u32 = 1;

/// Render the snapshot as Chrome `trace_event` JSON.
///
/// Span events use `ph:"B"`/`ph:"E"`, instants `ph:"i"` (thread scope),
/// counter samples `ph:"C"`. Per-track `thread_name` metadata labels
/// ranks, and `thread_sort_index` keeps rank order stable in the UI.
/// Timestamps are microseconds, as the format requires.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    emit(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"efm-suite\"}}}}"
        ),
        &mut out,
    );
    for t in &snap.tracks {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                escape(&t.name)
            ),
            &mut out,
        );
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                t.tid, t.tid
            ),
            &mut out,
        );
    }
    for t in &snap.tracks {
        for e in &t.events {
            let line = match &e.kind {
                EventKind::Begin => format!(
                    "{{\"ph\":\"B\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\"}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
                EventKind::End => {
                    format!("{{\"ph\":\"E\",\"pid\":{PID},\"tid\":{},\"ts\":{}}}", t.tid, e.ts_us)
                }
                EventKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                     \"s\":\"t\"}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
                EventKind::Counter(v) => format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                     \"args\":{{\"value\":{v}}}}}",
                    t.tid,
                    e.ts_us,
                    escape(&e.name)
                ),
            };
            emit(line, &mut out);
        }
        if t.dropped > 0 {
            let ts = t.events.last().map_or(0, |e| e.ts_us);
            emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{ts},\
                     \"name\":\"{} events dropped (track full)\",\"s\":\"t\"}}",
                    t.tid, t.dropped
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n]");
    if !snap.meta.is_empty() {
        // `otherData` is the trace_event format's free-form metadata
        // object; chrome://tracing and Perfetto show it in the trace
        // info panel and ignore unknown keys.
        out.push_str(",\n\"otherData\":{");
        for (i, (name, value)) in snap.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(name), escape(value));
        }
        out.push('}');
    }
    out.push_str("}\n");
    out
}

/// Render the snapshot as JSONL: one event object per line, ordered by
/// track then record order. Fields: `ts_us`, `tid`, `track`, `ph`
/// (`B`/`E`/`I`/`C`), `name`, and `value` for counter samples.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for t in &snap.tracks {
        for e in &t.events {
            let (ph, value) = match &e.kind {
                EventKind::Begin => ("B", None),
                EventKind::End => ("E", None),
                EventKind::Instant => ("I", None),
                EventKind::Counter(v) => ("C", Some(*v)),
            };
            let _ = write!(
                out,
                "{{\"ts_us\":{},\"tid\":{},\"track\":\"{}\",\"ph\":\"{}\",\"name\":\"{}\"",
                e.ts_us,
                t.tid,
                escape(&t.name),
                ph,
                escape(&e.name)
            );
            if let Some(v) = value {
                let _ = write!(out, ",\"value\":{v}");
            }
            out.push_str("}\n");
        }
    }
    out
}

/// Final counter/gauge totals as one JSON object:
/// `{"counters":{"name":value,...},"meta":{"name":"value",...}}` (the
/// `meta` section is omitted when no metadata was recorded).
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": {}", escape(name), value);
    }
    out.push_str("\n}");
    if !snap.meta.is_empty() {
        out.push_str(",\"meta\":{");
        for (i, (name, value)) in snap.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": \"{}\"", escape(name), escape(value));
        }
        out.push_str("\n}");
    }
    out.push_str("}\n");
    out
}

/// Write [`chrome_trace`] output to `w`.
pub fn write_chrome_trace<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace(snap).as_bytes())
}

/// Write [`jsonl`] output to `w`.
pub fn write_jsonl<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(jsonl(snap).as_bytes())
}

/// Write [`metrics_json`] output to `w`.
pub fn write_metrics<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(metrics_json(snap).as_bytes())
}
