//! A minimal JSON writer/parser used by the exporters and their tests.
//!
//! The offline build has no serde, so the exporters hand-write JSON and
//! the round-trip tests plus the `validate-trace` tool re-parse it with
//! this recursive-descent parser. It accepts exactly RFC 8259 JSON
//! (objects, arrays, strings with escapes, numbers, booleans, null) and
//! is not performance-sensitive: traces are parsed once, at validation
//! time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document. Trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("short \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                _ => {
                    // Re-scan a full UTF-8 char from the byte stream.
                    let rest = &self.b[self.i - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())
                        .or_else(|e| match std::str::from_utf8(&rest[..rest.len().min(4)]) {
                            Ok(s) => Ok(s),
                            Err(_) => Err(e),
                        })?;
                    let ch = s.chars().next().ok_or("empty char")?;
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            out.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let nasty = "a\"b\\c\nd\te\u{1}f≠g";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
