//! Flight recorder: self-contained postmortem bundles.
//!
//! When a chaos run dies — a `ClusterError`, a rank panic, a
//! supervisor restart or failover — the evidence is spread across the
//! in-memory ring buffers, the counter registry, the histogram
//! registry and the supervisor's recovery log, all of which evaporate
//! with the process. [`write_bundle`] freezes that evidence to disk as
//! one directory per incident so the failure is diagnosable after the
//! fact:
//!
//! ```text
//! <postmortem-dir>/pm-003-failover/
//!   manifest.json   incident tag, reason, timestamp, run metadata,
//!                   file inventory
//!   trace.json      Chrome trace of everything still in the ring
//!                   buffers (the "trace tail"); opens in Perfetto,
//!                   passes validate-trace
//!   metrics.json    counters + latency histograms at time of death
//!   <extra files>   caller-supplied context: run_stats.json,
//!                   recovery.txt, checkpoint.fingerprint, …
//! ```
//!
//! The bundle is written best-effort from failure paths: errors are
//! returned but callers are expected to log-and-continue, never to let
//! postmortem I/O mask the original failure. Bundles are numbered by a
//! process-wide sequence so repeated incidents in one supervised run
//! (restart, restart, give-up) sort in causal order.

use crate::json::escape;
use crate::{export, now_us, snapshot};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Dump a postmortem bundle under `dir` and return the bundle path.
///
/// `tag` names the incident kind (`"failover"`, `"restart"`,
/// `"give-up"`, `"error"`); `reason` is the human-readable cause
/// (typically the rendered error). `extra` is written verbatim as
/// additional files — callers pass serialized `RunStats`, the
/// `RecoveryLog`, a checkpoint fingerprint, whatever they hold that
/// the obs registries do not.
pub fn write_bundle(
    dir: &Path,
    tag: &str,
    reason: &str,
    extra: &[(&str, String)],
) -> io::Result<PathBuf> {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let bundle = dir.join(format!("pm-{seq:03}-{tag}"));
    fs::create_dir_all(&bundle)?;

    let snap = snapshot();
    fs::write(bundle.join("trace.json"), export::chrome_trace(&snap))?;
    fs::write(bundle.join("metrics.json"), export::metrics_json(&snap))?;
    for (name, contents) in extra {
        fs::write(bundle.join(name), contents)?;
    }

    let mut manifest = String::from("{\n");
    let _ = write!(manifest, "  \"tag\": \"{}\",\n", escape(tag));
    let _ = write!(manifest, "  \"reason\": \"{}\",\n", escape(reason));
    let _ = write!(manifest, "  \"at_us\": {},\n", now_us());
    let _ = write!(manifest, "  \"events_captured\": {},\n", snap.event_count());
    manifest.push_str("  \"meta\": {");
    for (i, (k, v)) in snap.meta.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        let _ = write!(manifest, "\n    \"{}\": \"{}\"", escape(k), escape(v));
    }
    manifest.push_str("\n  },\n  \"files\": [\"trace.json\", \"metrics.json\"");
    for (name, _) in extra {
        let _ = write!(manifest, ", \"{}\"", escape(name));
    }
    manifest.push_str("]\n}\n");
    fs::write(bundle.join("manifest.json"), manifest)?;
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bundle_is_self_contained_and_parses() {
        let dir = std::env::temp_dir().join(format!("efm-pm-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = write_bundle(
            &dir,
            "unit",
            "injected \"failure\" for test",
            &[("recovery.txt", "attempt 1: restarted\n".to_string())],
        )
        .expect("bundle write");
        for f in ["manifest.json", "trace.json", "metrics.json", "recovery.txt"] {
            assert!(path.join(f).is_file(), "missing {f}");
        }
        let manifest = fs::read_to_string(path.join("manifest.json")).unwrap();
        let v = json::parse(&manifest).expect("manifest parses");
        assert_eq!(v.get("tag").and_then(|t| t.as_str()), Some("unit"));
        assert!(v.get("reason").and_then(|r| r.as_str()).unwrap().contains("failure"));
        let trace = fs::read_to_string(path.join("trace.json")).unwrap();
        assert!(json::parse(&trace).is_ok(), "trace must be valid JSON");
        let _ = fs::remove_dir_all(&dir);
    }
}
