//! efm-obs — tracing, metrics and trace export for the EFM suite.
//!
//! The paper's evaluation is built entirely on per-phase, per-node
//! measurement (Tables II–IV: wall time of the six cluster phases,
//! candidate and survivor counts, per-node memory). This crate is the
//! substrate those measurements flow through at run time:
//!
//! * **Spans** — RAII guards recording `Begin`/`End` pairs with
//!   monotonic microsecond timestamps into a per-thread buffer. A span
//!   per engine phase per iteration makes a run flamegraph-ready.
//! * **Instant events** — point-in-time markers (faults, aborts,
//!   restarts, checkpoints).
//! * **Counters / gauges** — typed named totals (candidates generated,
//!   dedup hits, rank-test calls, bytes per link) sampled into the
//!   trace each time they change and exported as final totals.
//! * **Exporters** — Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>), a JSONL event
//!   log, and a plain-JSON metrics dump (see [`export`]).
//! * **Progress** — an optional human `--progress` line with a
//!   survivor-derived ETA (see [`progress`]).
//!
//! # Cost model
//!
//! Tracing is **globally disabled by default**. Every recording entry
//! point first loads one relaxed `AtomicBool`; on the disabled path no
//! allocation, no lock, no clock read and no formatting happens —
//! [`span`] returns an inert guard and the counter helpers return
//! immediately. Callers that must build a dynamic name (for example a
//! per-link counter key) are expected to gate the `format!` behind
//! [`enabled`] themselves, which every call site in this workspace does.
//!
//! When enabled, each thread records into its own buffer behind an
//! uncontended mutex ("lock-light": the owning thread is the only
//! writer; the exporter only locks after worker threads have finished,
//! or briefly during a live snapshot). Buffers are registered in a
//! global registry so events survive scoped-thread exit — this is what
//! lets the simulated cluster's rank threads die and still contribute
//! their track to the merged trace, standing in for the rank-0
//! gather an MPI implementation would perform.
//!
//! # Tracks
//!
//! Every thread gets a track (Chrome `tid`). Cluster ranks claim
//! `tid == rank` via [`set_track`] so the merged trace shows one track
//! per rank; unnamed threads (rayon workers, the main thread) get
//! automatic tids starting at [`AUTO_TID_BASE`] to keep the rank range
//! clean.
//!
//! Buffers are bounded ([`TRACK_CAP`] events per track). When a track
//! fills up, new `Begin`/`Instant`/`Counter` events are dropped and
//! counted; `End` events are always recorded so span nesting stays
//! balanced (the overshoot is bounded by the live span depth). The
//! exporter surfaces the drop count rather than silently truncating.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod export;
pub mod hist;
pub mod json;
pub mod postmortem;
pub mod progress;

/// Automatic track ids start here; ids below are reserved for cluster
/// ranks (`tid == rank`) claimed through [`set_track`].
pub const AUTO_TID_BASE: u32 = 10_000;

/// Per-track event capacity. At ~48 bytes an event this bounds a track
/// at a few MiB; a traced yeast-scale run stays far below it.
pub const TRACK_CAP: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(AUTO_TID_BASE);
static REGISTRY: Mutex<Vec<SharedTrack>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static META: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());

/// Is tracing globally enabled? One relaxed atomic load; this is the
/// whole disabled-path cost of every recording entry point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable tracing. Also pins the monotonic epoch on
/// first use so timestamps from before/after an enable toggle share one
/// timeline.
pub fn set_enabled(on: bool) {
    clock_epoch();
    ENABLED.store(on, Ordering::SeqCst);
}

fn clock_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic epoch. Safe to call
/// whether or not tracing is enabled; used by the supervisor to stamp
/// `RecoveryEvent`s so restarts correlate with the trace timeline.
pub fn now_us() -> u64 {
    clock_epoch().elapsed().as_micros() as u64
}

/// What a single trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (matched by the next unbalanced `End` on the track).
    Begin,
    /// Span closed. Carries no name; pairing is positional per track.
    End,
    /// Point-in-time marker.
    Instant,
    /// Counter/gauge sample: the *running total* after the update.
    Counter(i64),
    /// Causal flow origin (Chrome `ph:"s"`): this track produced the
    /// message/release identified by the flow id; the matching
    /// [`EventKind::FlowEnd`] on another track closes the arrow.
    FlowStart(u64),
    /// Causal flow arrival (Chrome `ph:"f"`, intermediate arrivals of a
    /// multi-recipient flow become `ph:"t"` steps at export time).
    FlowEnd(u64),
}

/// One recorded event. `ts_us` is microseconds since [`now_us`]'s epoch
/// and is non-decreasing within a track (single writer, monotonic
/// clock).
#[derive(Debug, Clone)]
pub struct Event {
    pub ts_us: u64,
    pub kind: EventKind,
    pub name: Cow<'static, str>,
}

struct TrackBuf {
    tid: u32,
    name: String,
    events: Vec<Event>,
    dropped: u64,
}

type SharedTrack = Arc<Mutex<TrackBuf>>;

thread_local! {
    static LOCAL: RefCell<Option<SharedTrack>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut TrackBuf) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let track = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let t: SharedTrack = Arc::new(Mutex::new(TrackBuf {
                tid,
                name: format!("thread {tid}"),
                events: Vec::new(),
                dropped: 0,
            }));
            REGISTRY.lock().unwrap().push(Arc::clone(&t));
            t
        });
        let mut buf = track.lock().unwrap();
        f(&mut buf)
    })
}

/// Claim a track identity for the current thread. Cluster ranks call
/// `set_track(rank, "rank N")` so the merged trace has one track per
/// rank with a stable tid. No-op while tracing is disabled.
pub fn set_track(tid: u32, name: &str) {
    if !enabled() {
        return;
    }
    with_local(|t| {
        t.tid = tid;
        t.name = name.to_string();
    });
}

fn push(kind: EventKind, name: Cow<'static, str>) {
    let ts_us = now_us();
    with_local(|t| {
        // `End` must always land so span nesting stays balanced; the
        // overshoot past TRACK_CAP is bounded by the open span depth.
        if t.events.len() < TRACK_CAP || matches!(kind, EventKind::End) {
            t.events.push(Event { ts_us, kind, name });
        } else {
            t.dropped += 1;
        }
    });
}

/// RAII span guard: records `Begin` now and `End` when dropped. Inert
/// (and allocation-free) when tracing is disabled.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    live: bool,
}

impl Span {
    /// An inert span, never recorded. Useful as a placeholder.
    pub const fn off() -> Span {
        Span { live: false }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            push(EventKind::End, Cow::Borrowed(""));
        }
    }
}

/// Open a span with a static name.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::off();
    }
    push(EventKind::Begin, Cow::Borrowed(name));
    Span { live: true }
}

/// Open a span with a computed name. Callers should gate the name
/// construction behind [`enabled`] to keep the disabled path free.
pub fn span_dyn(name: String) -> Span {
    if !enabled() {
        return Span::off();
    }
    push(EventKind::Begin, Cow::Owned(name));
    Span { live: true }
}

/// Record a point-in-time event with a static name.
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        push(EventKind::Instant, Cow::Borrowed(name));
    }
}

/// Record a point-in-time event with a computed name.
pub fn instant_dyn(name: String) {
    if enabled() {
        push(EventKind::Instant, Cow::Owned(name));
    }
}

static NEXT_FLOW: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique flow id for a causal edge. Id `0` is
/// reserved as "untraced" so frame headers can carry it for free when
/// tracing is disabled.
#[inline]
pub fn next_flow_id() -> u64 {
    NEXT_FLOW.fetch_add(1, Ordering::Relaxed)
}

/// Record the origin of a causal flow (message send, barrier release,
/// view change). The arrow closes at the track that records
/// [`flow_end`] with the same id; unmatched halves are dropped at
/// export time so a crashed run still yields a well-formed trace.
#[inline]
pub fn flow_start(name: &'static str, id: u64) {
    if enabled() && id != 0 {
        push(EventKind::FlowStart(id), Cow::Borrowed(name));
    }
}

/// [`flow_start`] with a computed name (`"msg 0->3"`). Gate the
/// `format!` behind [`enabled`].
pub fn flow_start_dyn(name: String, id: u64) {
    if enabled() && id != 0 {
        push(EventKind::FlowStart(id), Cow::Owned(name));
    }
}

/// Record the arrival of a causal flow on the current track.
#[inline]
pub fn flow_end(name: &'static str, id: u64) {
    if enabled() && id != 0 {
        push(EventKind::FlowEnd(id), Cow::Borrowed(name));
    }
}

/// [`flow_end`] with a computed name; must match the start's name so
/// Chrome/Perfetto bind the chain.
pub fn flow_end_dyn(name: String, id: u64) {
    if enabled() && id != 0 {
        push(EventKind::FlowEnd(id), Cow::Owned(name));
    }
}

/// Add to a named counter and sample the new total into the trace.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let total = bump(name.to_string(), delta);
    push(EventKind::Counter(total as i64), Cow::Borrowed(name));
}

/// [`counter_add`] with a computed name (per-link traffic keys such as
/// `"link 0->3 bytes"`). Gate the `format!` behind [`enabled`].
pub fn counter_add_dyn(name: String, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let total = bump(name.clone(), delta);
    push(EventKind::Counter(total as i64), Cow::Owned(name));
}

/// Raise a named gauge to `value` if it is higher than the current
/// reading (peak-style gauges: peak bytes, peak modes). Samples the new
/// peak into the trace only when it actually moved.
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut raised = false;
    {
        let mut c = COUNTERS.lock().unwrap();
        let e = c.entry(name.to_string()).or_insert(0);
        if value > *e {
            *e = value;
            raised = true;
        }
    }
    if raised {
        push(EventKind::Counter(value as i64), Cow::Borrowed(name));
    }
}

/// Set a named gauge to `value` unconditionally and sample it.
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    COUNTERS.lock().unwrap().insert(name.to_string(), value);
    push(EventKind::Counter(value as i64), Cow::Borrowed(name));
}

/// Record a run-level metadata string (kernel tier, block geometry,
/// backend name, …). Exported as the Chrome trace's `otherData` object
/// and in the metrics JSON, so flamegraphs are self-describing — a
/// scalar and a SIMD run are distinguishable from the trace file alone.
/// Last write per key wins. No-op while tracing is disabled.
pub fn meta_set(name: &str, value: &str) {
    if !enabled() {
        return;
    }
    META.lock().unwrap().insert(name.to_string(), value.to_string());
}

/// Current value of a metadata key; `None` if never set (or tracing is
/// disabled when it was written).
pub fn meta_value(name: &str) -> Option<String> {
    META.lock().unwrap().get(name).cloned()
}

fn bump(name: String, delta: u64) -> u64 {
    let mut c = COUNTERS.lock().unwrap();
    let e = c.entry(name).or_insert(0);
    *e += delta;
    *e
}

/// A drained copy of one thread's track.
#[derive(Debug, Clone)]
pub struct Track {
    pub tid: u32,
    pub name: String,
    pub events: Vec<Event>,
    pub dropped: u64,
}

/// Everything recorded so far: all tracks (including those of threads
/// that have already exited) plus the counter totals. This merged view
/// across ranks is the in-process equivalent of the rank-0 gather a
/// distributed deployment would need.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub tracks: Vec<Track>,
    pub counters: Vec<(String, u64)>,
    /// Run-level metadata strings recorded via [`meta_set`].
    pub meta: Vec<(String, String)>,
    /// Log-bucket latency histograms recorded via [`hist::record`].
    pub hists: Vec<(String, hist::Histogram)>,
}

impl Snapshot {
    /// Total across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Final total of a named counter, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Current total of a named counter; `0` if it was never touched (or
/// tracing is disabled). Convenience for tests asserting on counters
/// without taking a full [`snapshot`].
pub fn counter_value(name: &str) -> u64 {
    COUNTERS.lock().unwrap().get(name).copied().unwrap_or(0)
}

/// Copy out all recorded tracks and counter totals. Tracks are sorted
/// by tid so exports are deterministic.
pub fn snapshot() -> Snapshot {
    let mut tracks: Vec<Track> = REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|t| {
            let b = t.lock().unwrap();
            Track { tid: b.tid, name: b.name.clone(), events: b.events.clone(), dropped: b.dropped }
        })
        .collect();
    tracks.sort_by_key(|t| t.tid);
    let counters = COUNTERS.lock().unwrap().iter().map(|(k, v)| (k.clone(), *v)).collect();
    let meta = META.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    let hists = hist::all();
    Snapshot { tracks, counters, meta, hists }
}

/// Clear all recorded events and counters in place. Thread-local
/// registrations survive (the buffers are emptied, not detached), so a
/// thread that recorded before a reset keeps recording after it.
pub fn reset() {
    for t in REGISTRY.lock().unwrap().iter() {
        let mut b = t.lock().unwrap();
        b.events.clear();
        b.dropped = 0;
    }
    COUNTERS.lock().unwrap().clear();
    META.lock().unwrap().clear();
    hist::reset_all();
}

/// `span!("name")` — open a span; bind the result to keep it alive:
/// `let _g = span!("gen cand");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// `event!("name")` — record an instant event.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::instant($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state: tests in this binary must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        g
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = isolated();
        set_enabled(false);
        {
            let _s = span("ignored");
            instant("ignored");
            counter_add("ignored", 5);
        }
        set_enabled(true);
        let snap = snapshot();
        let ours: usize =
            snap.tracks.iter().flat_map(|t| &t.events).filter(|e| e.name == "ignored").count();
        assert_eq!(ours, 0);
        assert_eq!(snap.counter("ignored"), None);
    }

    #[test]
    fn spans_nest_and_balance() {
        let _g = isolated();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            instant("mark");
        }
        let snap = snapshot();
        let track = snap
            .tracks
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "outer"))
            .expect("track with our events");
        let mut depth: i64 = 0;
        let mut last_ts = 0;
        for e in &track.events {
            assert!(e.ts_us >= last_ts, "timestamps must be non-decreasing");
            last_ts = e.ts_us;
            match e.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => {
                    depth -= 1;
                    assert!(depth >= 0, "End without Begin");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced spans");
    }

    #[test]
    fn counters_accumulate() {
        let _g = isolated();
        counter_add("cands", 10);
        counter_add("cands", 5);
        gauge_max("peak", 7);
        gauge_max("peak", 3); // lower: must not regress the gauge
        let snap = snapshot();
        assert_eq!(snap.counter("cands"), Some(15));
        assert_eq!(snap.counter("peak"), Some(7));
    }

    #[test]
    fn meta_lands_in_snapshot_and_exports() {
        let _g = isolated();
        meta_set("kernel_tier", "avx2");
        meta_set("kernel_block_pairs", "1024");
        meta_set("kernel_tier", "scalar"); // last write wins
        assert_eq!(meta_value("kernel_tier").as_deref(), Some("scalar"));
        let snap = snapshot();
        assert_eq!(
            snap.meta,
            vec![
                ("kernel_block_pairs".to_string(), "1024".to_string()),
                ("kernel_tier".to_string(), "scalar".to_string()),
            ]
        );
        let trace = crate::export::chrome_trace(&snap);
        assert!(trace.contains("\"otherData\":{\"kernel_block_pairs\":\"1024\""), "{trace}");
        let metrics = crate::export::metrics_json(&snap);
        assert!(metrics.contains("\"meta\":{"), "{metrics}");
        reset();
        assert_eq!(meta_value("kernel_tier"), None, "reset must clear metadata");
    }

    #[test]
    fn meta_disabled_is_noop() {
        let _g = isolated();
        set_enabled(false);
        meta_set("kernel_tier", "avx2");
        set_enabled(true);
        assert_eq!(meta_value("kernel_tier"), None);
    }

    #[test]
    fn scoped_threads_survive_into_snapshot() {
        let _g = isolated();
        std::thread::scope(|s| {
            for rank in 0..3u32 {
                s.spawn(move || {
                    set_track(rank, &format!("rank {rank}"));
                    let _sp = span("phase");
                    counter_add("work", 1);
                });
            }
        });
        let snap = snapshot();
        for rank in 0..3u32 {
            assert!(
                snap.tracks.iter().any(|t| t.tid == rank && t.name == format!("rank {rank}")),
                "missing track for rank {rank}"
            );
        }
        assert_eq!(snap.counter("work"), Some(3));
    }
}
