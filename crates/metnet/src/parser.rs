//! Text format parser for metabolic networks.
//!
//! The format follows the reaction listings of the paper's Figs. 3–5:
//!
//! ```text
//! # comment
//! -EXTERNAL BIO            # optional explicit external declarations
//! R4  : F6P + ATP => FDP + ADP
//! R3r : G6P <=> F6P
//! R70 : 7437 G6P + 611 G3P => 1000 BIO
//! ```
//!
//! * `=>` (also `-->`, `==>`) declares an irreversible reaction;
//!   `<=>` (also `<->`, `<==>`) a reversible one.
//! * Coefficients are rationals: `2`, `0.5`, and `3/2` are all accepted;
//!   a missing coefficient means 1.
//! * Metabolites whose name ends in `ext` are external by convention (the
//!   paper's convention), as is anything declared via `-EXTERNAL`.
//! * Either side of the arrow may be empty (pure exchange reactions).

use crate::model::MetabolicNetwork;
use efm_numeric::{DynInt, Rational};

/// A parse failure with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses a rational coefficient: integer, decimal, or `a/b`.
pub fn parse_coefficient(tok: &str) -> Option<Rational> {
    if let Some((a, b)) = tok.split_once('/') {
        let num: i64 = a.parse().ok()?;
        let den: i64 = b.parse().ok()?;
        if den == 0 {
            return None;
        }
        return Some(Rational::new(DynInt::from_i64(num), DynInt::from_i64(den)));
    }
    if let Some((int_part, frac_part)) = tok.split_once('.') {
        if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let scale = 10i64.checked_pow(frac_part.len() as u32)?;
        let int_v: i64 = if int_part.is_empty() { 0 } else { int_part.parse().ok()? };
        let frac_v: i64 = frac_part.parse().ok()?;
        let num =
            int_v.checked_mul(scale)?.checked_add(if int_v < 0 { -frac_v } else { frac_v })?;
        return Some(Rational::new(DynInt::from_i64(num), DynInt::from_i64(scale)));
    }
    let v: i64 = tok.parse().ok()?;
    Some(Rational::from_i64(v))
}

fn is_coefficient(tok: &str) -> bool {
    tok.bytes().next().is_some_and(|b| b.is_ascii_digit()) && parse_coefficient(tok).is_some()
}

/// One side of a reaction equation → `(name, coefficient)` terms.
fn parse_side(side: &str, line: usize) -> Result<Vec<(String, Rational)>, ParseError> {
    let side = side.trim();
    if side.is_empty() {
        return Ok(Vec::new());
    }
    let mut terms = Vec::new();
    for term in side.split('+') {
        let toks: Vec<&str> = term.split_whitespace().collect();
        match toks.as_slice() {
            [] => return Err(err(line, "empty term between '+' signs")),
            [name] => {
                if is_coefficient(name) {
                    return Err(err(line, format!("coefficient {name} without metabolite")));
                }
                terms.push(((*name).to_string(), Rational::one()));
            }
            [coeff, name] => {
                let c = parse_coefficient(coeff)
                    .ok_or_else(|| err(line, format!("bad coefficient {coeff}")))?;
                if c.signum() <= 0 {
                    return Err(err(line, format!("non-positive coefficient {coeff}")));
                }
                terms.push(((*name).to_string(), c));
            }
            _ => return Err(err(line, format!("cannot parse term '{}'", term.trim()))),
        }
    }
    Ok(terms)
}

const REVERSIBLE_ARROWS: [&str; 3] = ["<==>", "<=>", "<->"];
const IRREVERSIBLE_ARROWS: [&str; 3] = ["==>", "=>", "-->"];

/// Parses one reaction line `NAME : LHS ARROW RHS` into the network.
pub fn parse_reaction_line(
    net: &mut MetabolicNetwork,
    raw: &str,
    line: usize,
    extra_externals: &[String],
) -> Result<(), ParseError> {
    let (name, eqn) = raw
        .split_once(':')
        .ok_or_else(|| err(line, "missing ':' between reaction name and equation"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(err(line, "empty reaction name"));
    }
    let eqn = eqn.trim();
    let mut reversible = None;
    let mut lhs = "";
    let mut rhs = "";
    for arrow in REVERSIBLE_ARROWS {
        if let Some((l, r)) = eqn.split_once(arrow) {
            reversible = Some(true);
            lhs = l;
            rhs = r;
            break;
        }
    }
    if reversible.is_none() {
        for arrow in IRREVERSIBLE_ARROWS {
            if let Some((l, r)) = eqn.split_once(arrow) {
                reversible = Some(false);
                lhs = l;
                rhs = r;
                break;
            }
        }
    }
    let reversible = reversible.ok_or_else(|| err(line, "no reaction arrow found"))?;
    let lhs_terms = parse_side(lhs, line)?;
    let rhs_terms = parse_side(rhs, line)?;
    if lhs_terms.is_empty() && rhs_terms.is_empty() {
        return Err(err(line, "reaction with no metabolites"));
    }
    let mut stoich = Vec::with_capacity(lhs_terms.len() + rhs_terms.len());
    for (metname, c) in lhs_terms {
        let ext = metname.ends_with("ext") || extra_externals.iter().any(|e| e == &metname);
        let m = net.add_metabolite(&metname, ext);
        stoich.push((m, c.neg()));
    }
    for (metname, c) in rhs_terms {
        let ext = metname.ends_with("ext") || extra_externals.iter().any(|e| e == &metname);
        let m = net.add_metabolite(&metname, ext);
        stoich.push((m, c));
    }
    if net.reaction_index(name).is_some() {
        return Err(err(line, format!("duplicate reaction name {name}")));
    }
    net.add_reaction(name, reversible, stoich);
    Ok(())
}

/// Parses a whole network file.
pub fn parse_network(text: &str) -> Result<MetabolicNetwork, ParseError> {
    let mut net = MetabolicNetwork::new();
    let mut externals: Vec<String> = Vec::new();
    // First pass: collect -EXTERNAL declarations so order does not matter.
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some(rest) = line.strip_prefix("-EXTERNAL") {
            externals.extend(rest.split_whitespace().map(str::to_string));
        }
    }
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("-EXTERNAL") {
            continue;
        }
        parse_reaction_line(&mut net, line, line_no, &externals)?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_network() {
        let net = parse_network(
            "# toy\n\
             r1 : Aext => A\n\
             r2 : A => B\n\
             r3 : B <=> Bext\n",
        )
        .unwrap();
        assert_eq!(net.num_reactions(), 3);
        assert_eq!(net.num_internal(), 2);
        assert!(net.reactions[2].reversible);
        assert!(!net.reactions[1].reversible);
        assert!(net.metabolites[net.metabolite_index("Aext").unwrap()].external);
    }

    #[test]
    fn coefficients_integer_decimal_fraction() {
        assert_eq!(parse_coefficient("2"), Some(Rational::from_i64(2)));
        assert_eq!(
            parse_coefficient("0.5"),
            Some(Rational::new(DynInt::from_i64(1), DynInt::from_i64(2)))
        );
        assert_eq!(
            parse_coefficient("3/2"),
            Some(Rational::new(DynInt::from_i64(3), DynInt::from_i64(2)))
        );
        assert_eq!(parse_coefficient("x"), None);
        assert_eq!(parse_coefficient("1/0"), None);
    }

    #[test]
    fn coefficients_in_equation() {
        let net = parse_network("R70 : 2 A + 0.5 B => 1000 C\n").unwrap();
        let n = net.stoichiometry();
        let a = net.metabolite_index("A").unwrap();
        assert_eq!(n.get(a, 0), &Rational::from_i64(-2));
        let c = net.metabolite_index("C").unwrap();
        assert_eq!(n.get(c, 0), &Rational::from_i64(1000));
    }

    #[test]
    fn external_declarations() {
        let net = parse_network("-EXTERNAL BIO\nR70 : A => 2 BIO\n").unwrap();
        let bio = net.metabolite_index("BIO").unwrap();
        assert!(net.metabolites[bio].external);
        assert_eq!(net.num_internal(), 1);
    }

    #[test]
    fn external_declaration_after_use_still_applies() {
        let net = parse_network("R70 : A => 2 BIO\n-EXTERNAL BIO\n").unwrap();
        let bio = net.metabolite_index("BIO").unwrap();
        assert!(net.metabolites[bio].external);
    }

    #[test]
    fn empty_sides_allowed() {
        let net = parse_network("drain : A =>\nsource : => B\n").unwrap();
        let n = net.stoichiometry();
        assert_eq!(n.get(0, 0), &Rational::from_i64(-1));
        assert_eq!(n.get(1, 1), &Rational::from_i64(1));
    }

    #[test]
    fn alternative_arrows() {
        let net = parse_network("a : X --> Y\nb : X <-> Y\nc : X <==> Y\nd : X ==> Y\n").unwrap();
        assert!(!net.reactions[0].reversible);
        assert!(net.reactions[1].reversible);
        assert!(net.reactions[2].reversible);
        assert!(!net.reactions[3].reversible);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_network("r1 : A => B\nbroken line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_network("r1 : A => B\nr1 : B => A\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_network("r1 : A 2 B => C\n").unwrap_err();
        assert!(e.message.contains("cannot parse term"));
        let e = parse_network("r1 : 2 => C\n").unwrap_err();
        assert!(e.message.contains("without metabolite"));
        let e = parse_network("r1 : =>\n").unwrap_err();
        assert!(e.message.contains("no metabolites"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let net = parse_network("\n# full comment\nr : A => B # trailing\n\n").unwrap();
        assert_eq!(net.num_reactions(), 1);
    }

    #[test]
    fn paper_style_line() {
        let net =
            parse_network("R24 : AKG_mit + NAD_mit + COA_mit => CO2 + NADH_mit + SUCCOA_mit\n")
                .unwrap();
        assert_eq!(net.num_internal(), 6);
        assert_eq!(net.reactions[0].stoich.len(), 6);
    }
}
