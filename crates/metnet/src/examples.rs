//! Small example networks, including the paper's Fig. 1 toy network.

use crate::model::MetabolicNetwork;
use crate::parser::parse_network;

/// The illustrative network of the paper's Fig. 1 / Eq. (2): five internal
/// metabolites (A, B, C, D, P) and nine reactions, two of them reversible.
/// Its complete EFM set is the eight modes of Eq. (7).
pub fn toy_network() -> MetabolicNetwork {
    parse_network(
        "# Jevremovic-Boley-Sosa 2011, Fig. 1 (after Trinh et al. 2009)\n\
         r1  : Aext => A\n\
         r2  : A => C\n\
         r3  : C => D + P\n\
         r4  : P => Pext\n\
         r5  : A => B\n\
         r6r : B <=> C\n\
         r7  : B => 2 P\n\
         r8r : B <=> Bext\n\
         r9  : D => Dext\n",
    )
    .expect("toy network is well-formed")
}

/// A tiny 3-reaction chain with exactly one EFM (useful as the smallest
/// non-degenerate test case).
pub fn chain3() -> MetabolicNetwork {
    parse_network(
        "in  : Sext => A\n\
         mid : A => B\n\
         out : B => Pext\n",
    )
    .expect("chain3 is well-formed")
}

/// Two parallel routes from substrate to product: exactly two EFMs.
pub fn diamond() -> MetabolicNetwork {
    parse_network(
        "up   : Sext => A\n\
         left : A => B\n\
         right: A => C\n\
         ljoin: B => P\n\
         rjoin: C => P\n\
         down : P => Pext\n",
    )
    .expect("diamond is well-formed")
}

/// A network with a reversible internal cycle, exercising the
/// keep-negative-columns branch of the algorithm.
pub fn reversible_cycle() -> MetabolicNetwork {
    parse_network(
        "in   : Sext => A\n\
         fwd  : A <=> B\n\
         alt  : A => B\n\
         out  : B => Pext\n",
    )
    .expect("reversible_cycle is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_matches_paper_dimensions() {
        let net = toy_network();
        assert_eq!(net.num_internal(), 5);
        assert_eq!(net.num_reactions(), 9);
        let rev: Vec<&str> =
            net.reactions.iter().filter(|r| r.reversible).map(|r| r.name.as_str()).collect();
        assert_eq!(rev, vec!["r6r", "r8r"]);
    }

    #[test]
    fn toy_stoichiometry_matches_eq2() {
        let net = toy_network();
        let n = net.stoichiometry();
        assert_eq!((n.rows(), n.cols()), (5, 9));
        // Row order: A, C, D, P, B follows first-appearance; check entries
        // by metabolite lookup instead of assuming an order.
        let internals = net.internal_indices();
        let row_of = |name: &str| {
            let m = net.metabolite_index(name).unwrap();
            internals.iter().position(|&i| i == m).unwrap()
        };
        let col_of = |name: &str| net.reaction_index(name).unwrap();
        let check = |met: &str, rxn: &str, v: i64| {
            assert_eq!(n.get(row_of(met), col_of(rxn)).to_f64(), v as f64, "N[{met},{rxn}]");
        };
        check("A", "r1", 1);
        check("A", "r2", -1);
        check("A", "r5", -1);
        check("B", "r5", 1);
        check("B", "r6r", -1);
        check("B", "r7", -1);
        check("B", "r8r", -1);
        check("C", "r2", 1);
        check("C", "r3", -1);
        check("C", "r6r", 1);
        check("D", "r3", 1);
        check("D", "r9", -1);
        check("P", "r3", 1);
        check("P", "r4", -1);
        check("P", "r7", 2);
    }

    #[test]
    fn small_networks_validate() {
        for net in [chain3(), diamond(), reversible_cycle()] {
            assert!(net.validate().is_empty());
        }
    }
}
