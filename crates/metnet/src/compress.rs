//! EFM-preserving network compression.
//!
//! The paper reduces S. cerevisiae Network I from 62×78 to 35×55 before
//! running the Nullspace Algorithm ("eliminating redundant reactions,
//! metabolites, and constraints using known methods"). This module
//! implements the standard, provably EFM-preserving reductions of
//! Gagneur & Klamt (2004) / Terzer & Stelling (2008):
//!
//! 1. **Redundant constraints** — keep only a maximal linearly independent
//!    subset of stoichiometry rows (conservation relations contribute
//!    nothing to the kernel).
//! 2. **Blocked reactions** — a reaction whose kernel row is identically
//!    zero can never carry steady-state flux; its column is removed.
//! 3. **Enzyme subsets** — reactions whose kernel rows are proportional
//!    always carry flux in a fixed ratio; they are merged into a single
//!    reduced reaction. Sign bookkeeping: an irreversible member forces the
//!    subset direction; members forcing opposite directions block the whole
//!    subset.
//!
//! Each reduced EFM expands to exactly one original EFM (and vice versa),
//! so EFM *counts* are invariant under this compression — the property the
//! reproduction of the paper's Tables II–IV relies on.

use crate::model::MetabolicNetwork;
use efm_linalg::{kernel_basis, lp_feasible, rank_of_cols, LpProblem, Mat};
use efm_numeric::Rational;

/// A compressed network plus the bookkeeping needed to expand modes back.
#[derive(Debug, Clone)]
pub struct ReducedNetwork {
    /// Reduced stoichiometry: independent rows × reduced reactions.
    pub stoich: Mat<Rational>,
    /// Reversibility of each reduced reaction.
    pub reversible: Vec<bool>,
    /// Display names of reduced reactions (member names joined with `*`).
    pub names: Vec<String>,
    /// Members of each reduced reaction: `(original index, coefficient)` —
    /// original flux = coefficient × reduced flux.
    pub members: Vec<Vec<(usize, Rational)>>,
    /// Number of reactions in the original network.
    pub num_original: usize,
    /// Map original reaction → reduced reaction (None when blocked).
    pub orig_to_reduced: Vec<Option<usize>>,
    /// Names of the original reactions (for reporting).
    pub original_names: Vec<String>,
}

/// Which reduction stages to run. The default enables everything (the
/// paper's preprocessing); disabling stages is useful for ablation studies
/// and for debugging reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionOptions {
    /// Drop linearly dependent stoichiometry rows.
    pub drop_redundant_rows: bool,
    /// Remove reactions whose kernel row vanishes.
    pub kernel_blocked: bool,
    /// Merge enzyme subsets (proportional kernel rows).
    pub enzyme_subsets: bool,
    /// Exact-LP sign analysis: remove sign-infeasible reactions and fix
    /// the direction of one-way reversible reactions.
    pub sign_analysis: bool,
}

impl Default for CompressionOptions {
    fn default() -> Self {
        CompressionOptions {
            drop_redundant_rows: true,
            kernel_blocked: true,
            enzyme_subsets: true,
            sign_analysis: true,
        }
    }
}

impl CompressionOptions {
    /// No reduction at all (identity mapping).
    pub fn none() -> Self {
        CompressionOptions {
            drop_redundant_rows: false,
            kernel_blocked: false,
            enzyme_subsets: false,
            sign_analysis: false,
        }
    }

    /// Kernel-based reductions only (no LP).
    pub fn kernel_only() -> Self {
        CompressionOptions { sign_analysis: false, ..Default::default() }
    }
}

/// What compression did, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Original reactions removed as blocked.
    pub blocked: usize,
    /// Number of merges performed (original reactions absorbed).
    pub merged: usize,
    /// Redundant constraint rows dropped.
    pub dropped_rows: usize,
    /// Reactions removed because irreversibility makes any flux through
    /// them infeasible (exact-LP sign analysis).
    pub sign_blocked: usize,
    /// Reversible reactions found to be feasible in one direction only and
    /// turned irreversible.
    pub direction_fixed: usize,
}

impl ReducedNetwork {
    /// Expands a reduced flux vector to the original reaction space.
    pub fn expand_flux(&self, reduced: &[Rational]) -> Vec<Rational> {
        assert_eq!(reduced.len(), self.reversible.len(), "reduced flux length");
        let mut out = vec![Rational::zero(); self.num_original];
        for (j, mem) in self.members.iter().enumerate() {
            if reduced[j].is_zero() {
                continue;
            }
            for (orig, c) in mem {
                out[*orig] = c.mul(&reduced[j]);
            }
        }
        out
    }

    /// Expands a reduced support (indices of nonzero reduced reactions) to
    /// the set of original reaction indices, ascending.
    pub fn expand_support(&self, reduced_support: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> =
            reduced_support.iter().flat_map(|&j| self.members[j].iter().map(|(o, _)| *o)).collect();
        out.sort_unstable();
        out
    }

    /// Reduced index of an original reaction, if it survived compression.
    pub fn reduced_index_of(&self, original: usize) -> Option<usize> {
        self.orig_to_reduced[original]
    }

    /// Number of reduced reactions.
    pub fn num_reduced(&self) -> usize {
        self.reversible.len()
    }
}

/// Selects a maximal linearly independent subset of rows (by index order).
fn independent_rows(m: &Mat<Rational>) -> Vec<usize> {
    // Incremental: add each row to the basis if it increases the rank.
    // Rank checks run on the transpose so we can reuse rank_of_cols.
    let t = m.transpose();
    let mut kept: Vec<usize> = Vec::new();
    let mut scratch = Vec::new();
    let mut current_rank = 0;
    for r in 0..m.rows() {
        kept.push(r);
        let rank = rank_of_cols(&t, &kept, &mut scratch);
        if rank > current_rank {
            current_rank = rank;
        } else {
            kept.pop();
        }
    }
    kept
}

/// One group of proportional kernel rows: `(row indices, ratios relative
/// to the first row)`.
type RowGroup = (Vec<usize>, Vec<Rational>);

/// Groups proportional nonzero kernel rows; returns `(groups, blocked)`
/// where each group is a [`RowGroup`].
fn proportional_groups(k: &Mat<Rational>) -> (Vec<RowGroup>, Vec<usize>) {
    let q = k.rows();
    let d = k.cols();
    let mut blocked = Vec::new();
    let mut assigned = vec![false; q];
    let mut groups: Vec<(Vec<usize>, Vec<Rational>)> = Vec::new();
    for i in 0..q {
        if assigned[i] {
            continue;
        }
        let first_nz = (0..d).find(|&c| !k.get(i, c).is_zero());
        let Some(pivot_col) = first_nz else {
            blocked.push(i);
            assigned[i] = true;
            continue;
        };
        assigned[i] = true;
        let mut rows = vec![i];
        let mut ratios = vec![Rational::one()];
        'candidate: for (j, slot) in assigned.iter_mut().enumerate().skip(i + 1) {
            if *slot {
                continue;
            }
            if k.get(j, pivot_col).is_zero() {
                continue;
            }
            // ratio = row_j / row_i must be constant across all columns.
            let ratio = k.get(j, pivot_col).div(k.get(i, pivot_col));
            for c in 0..d {
                let expect = ratio.mul(k.get(i, c));
                if &expect != k.get(j, c) {
                    continue 'candidate;
                }
            }
            *slot = true;
            rows.push(j);
            ratios.push(ratio);
        }
        groups.push((rows, ratios));
    }
    (groups, blocked)
}

/// Compresses a network with the default (full) reduction pipeline.
pub fn compress(net: &MetabolicNetwork) -> (ReducedNetwork, CompressionStats) {
    compress_with(net, &CompressionOptions::default())
}

/// Compresses a network with an explicit stage selection.
pub fn compress_with(
    net: &MetabolicNetwork,
    options: &CompressionOptions,
) -> (ReducedNetwork, CompressionStats) {
    let mut stats = CompressionStats::default();
    let mut stoich = net.stoichiometry();
    let mut reversible = net.reversibilities();
    let q0 = net.num_reactions();
    let mut members: Vec<Vec<(usize, Rational)>> =
        (0..q0).map(|i| vec![(i, Rational::one())]).collect();

    loop {
        stats.rounds += 1;
        let mut changed = false;

        // (1) Drop redundant constraint rows.
        if options.drop_redundant_rows {
            let rows = independent_rows(&stoich);
            if rows.len() < stoich.rows() {
                stats.dropped_rows += stoich.rows() - rows.len();
                stoich = stoich.select_rows(&rows);
                changed = true;
            }
        }

        if stoich.cols() == 0 {
            break;
        }

        // (2) + (3) Kernel-based blocked removal and enzyme subset merging.
        if !options.kernel_blocked
            && !options.enzyme_subsets
            && (!options.sign_analysis || stoich.rows() == 0)
        {
            break;
        }
        let kb = kernel_basis(&stoich, &[]);
        let (groups, blocked) = if options.kernel_blocked || options.enzyme_subsets {
            let (mut groups, blocked) = proportional_groups(&kb.k);
            if !options.enzyme_subsets {
                // Degrade merges back to singleton groups.
                groups = groups
                    .into_iter()
                    .flat_map(|(rows, _)| {
                        rows.into_iter().map(|r| (vec![r], vec![Rational::one()]))
                    })
                    .collect();
            }
            (groups, if options.kernel_blocked { blocked } else { Vec::new() })
        } else {
            ((0..stoich.cols()).map(|c| (vec![c], vec![Rational::one()])).collect(), Vec::new())
        };
        for &b in &blocked {
            stats.blocked += members[b].len();
        }
        let merging = groups.iter().any(|(rows, _)| rows.len() > 1);
        if !blocked.is_empty() || merging {
            changed = true;
            let mut new_cols: Vec<Vec<Rational>> = Vec::with_capacity(groups.len());
            let mut new_rev: Vec<bool> = Vec::with_capacity(groups.len());
            let mut new_members: Vec<Vec<(usize, Rational)>> = Vec::with_capacity(groups.len());
            for (rows, ratios) in &groups {
                // Direction analysis: irreversible member k with ratio c
                // forces subset flux sign(t) = sign(c) ≥ 0 (i.e. c>0 → t≥0).
                let mut force_pos = false;
                let mut force_neg = false;
                for (&r, c) in rows.iter().zip(ratios) {
                    if !reversible[r] {
                        match c.signum() {
                            1 => force_pos = true,
                            -1 => force_neg = true,
                            _ => unreachable!("zero ratio in proportional group"),
                        }
                    }
                }
                if force_pos && force_neg {
                    // Conflicting directions: the whole subset is blocked.
                    for &r in rows {
                        stats.blocked += members[r].len();
                    }
                    continue;
                }
                let flip = force_neg; // use t' = -t so the subset runs forward
                let sign = if flip { Rational::from_i64(-1) } else { Rational::one() };
                if rows.len() > 1 {
                    stats.merged += rows.len() - 1;
                }
                // Merged column = Σ c_i · col_i (times sign flip).
                let mut col = vec![Rational::zero(); stoich.rows()];
                let mut mem: Vec<(usize, Rational)> = Vec::new();
                for (&r, c) in rows.iter().zip(ratios) {
                    let c = c.mul(&sign);
                    for (rowidx, acc) in col.iter_mut().enumerate() {
                        let v = stoich.get(rowidx, r).mul(&c);
                        *acc = acc.add(&v);
                    }
                    for (orig, oc) in &members[r] {
                        mem.push((*orig, oc.mul(&c)));
                    }
                }
                new_cols.push(col);
                new_rev.push(!(force_pos || force_neg));
                new_members.push(mem);
            }
            // Rebuild the stoichiometry from the surviving columns.
            let mut m = Mat::<Rational>::zeros(stoich.rows(), new_cols.len());
            for (j, col) in new_cols.iter().enumerate() {
                for (r, v) in col.iter().enumerate() {
                    m.set(r, j, v.clone());
                }
            }
            stoich = m;
            reversible = new_rev;
            members = new_members;
        }

        if changed {
            continue;
        }

        if !options.sign_analysis {
            if !changed {
                break;
            }
            continue;
        }

        // (4) Exact-LP sign analysis: a reaction whose only steady-state
        // fluxes violate irreversibility is blocked even though its kernel
        // row is nonzero; a reversible reaction feasible in one direction
        // only becomes irreversible. Witnesses returned by feasible solves
        // certify directions for many reactions at once, so few LPs run.
        let q = stoich.cols();
        if q > 0 && stoich.rows() > 0 {
            let mut fwd_ok = vec![false; q];
            let mut bwd_ok = vec![false; q];
            let absorb_witness = |w: &[Rational], fwd: &mut [bool], bwd: &mut [bool]| {
                for (j, v) in w.iter().enumerate() {
                    match v.signum() {
                        1 => fwd[j] = true,
                        -1 => bwd[j] = true,
                        _ => {}
                    }
                }
            };
            let solve_dir = |j: usize, dir: i64| -> Option<Vec<Rational>> {
                let m = stoich.rows();
                let mut a = Mat::<Rational>::zeros(m + 1, q);
                for r in 0..m {
                    for c in 0..q {
                        a.set(r, c, stoich.get(r, c).clone());
                    }
                }
                a.set(m, j, Rational::one());
                let mut b = vec![Rational::zero(); m + 1];
                b[m] = Rational::from_i64(dir);
                let nonneg: Vec<bool> = reversible.iter().map(|&r| !r).collect();
                lp_feasible(&LpProblem { a, b, nonneg })
            };
            for j in 0..q {
                if !fwd_ok[j] {
                    if let Some(w) = solve_dir(j, 1) {
                        absorb_witness(&w, &mut fwd_ok, &mut bwd_ok);
                    }
                }
                if reversible[j] && !bwd_ok[j] {
                    if let Some(w) = solve_dir(j, -1) {
                        absorb_witness(&w, &mut fwd_ok, &mut bwd_ok);
                    }
                }
            }
            let mut keep_cols: Vec<usize> = Vec::with_capacity(q);
            for j in 0..q {
                let feasible = fwd_ok[j] || (reversible[j] && bwd_ok[j]);
                if !feasible {
                    stats.sign_blocked += members[j].len();
                    changed = true;
                    continue;
                }
                if reversible[j] && !bwd_ok[j] {
                    // Forward only.
                    reversible[j] = false;
                    stats.direction_fixed += 1;
                    changed = true;
                } else if reversible[j] && !fwd_ok[j] {
                    // Backward only: flip the column and its members.
                    for r in 0..stoich.rows() {
                        let v = stoich.get(r, j).neg();
                        stoich.set(r, j, v);
                    }
                    for (_, c) in members[j].iter_mut() {
                        *c = c.neg();
                    }
                    reversible[j] = false;
                    stats.direction_fixed += 1;
                    changed = true;
                }
                keep_cols.push(j);
            }
            if keep_cols.len() < q {
                stoich = stoich.select_cols(&keep_cols);
                reversible = keep_cols.iter().map(|&j| reversible[j]).collect();
                members = keep_cols.iter().map(|&j| members[j].clone()).collect();
            }
        }

        if !changed {
            break;
        }
    }

    let mut orig_to_reduced = vec![None; q0];
    let mut names = Vec::with_capacity(members.len());
    let original_names = net.reaction_names();
    for (j, mem) in members.iter().enumerate() {
        for (orig, _) in mem {
            orig_to_reduced[*orig] = Some(j);
        }
        let mut n: Vec<&str> = mem.iter().map(|(o, _)| original_names[*o].as_str()).collect();
        n.sort_unstable();
        names.push(n.join("*"));
    }

    (
        ReducedNetwork {
            stoich,
            reversible,
            names,
            members,
            num_original: q0,
            orig_to_reduced,
            original_names,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_network;

    #[test]
    fn toy_network_reduces_to_4x8() {
        // The paper's Fig. 1 network: row D and reaction r9 fold into r3.
        let net = crate::examples::toy_network();
        let (red, stats) = compress(&net);
        assert_eq!(red.stoich.rows(), 4, "expected 4 independent rows");
        assert_eq!(red.num_reduced(), 8, "expected 8 reduced reactions");
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.blocked, 0);
        // r3 and r9 are one reduced reaction now.
        let r3 = net.reaction_index("r3").unwrap();
        let r9 = net.reaction_index("r9").unwrap();
        assert_eq!(red.reduced_index_of(r3), red.reduced_index_of(r9));
        // All other reactions survive individually.
        for name in ["r1", "r2", "r4", "r5", "r6r", "r7", "r8r"] {
            let i = net.reaction_index(name).unwrap();
            assert!(red.reduced_index_of(i).is_some());
            let j = red.reduced_index_of(i).unwrap();
            assert_eq!(red.members[j].len(), if name == "r3" { 2 } else { 1 });
        }
    }

    #[test]
    fn blocked_reaction_removed() {
        // C is produced but never consumed: r2 is blocked (dead end),
        // and then r1/r3 form the only path.
        let net = parse_network(
            "r1 : Aext => A\n\
             r2 : A => C\n\
             r3 : A => Bext\n",
        )
        .unwrap();
        let (red, stats) = compress(&net);
        assert_eq!(red.reduced_index_of(net.reaction_index("r2").unwrap()), None);
        assert!(stats.blocked >= 1);
        // r1 and r3 are fully coupled → merged.
        assert_eq!(red.num_reduced(), 1);
        assert_eq!(red.members[0].len(), 2);
    }

    #[test]
    fn conflicting_directions_block_subset() {
        // Both reactions produce A and nothing consumes it, so steady state
        // forces v1 = -v2; with both irreversible the subset directions
        // conflict and the whole subset is blocked.
        let net = parse_network(
            "r1 : Aext => A\n\
             r2 : Bext => A\n",
        )
        .unwrap();
        // Kernel of N = [1 1] is (1, -1): one proportional group, ratio -1.
        let (red, _) = compress(&net);
        assert_eq!(red.num_reduced(), 0, "both reactions must be blocked");
    }

    #[test]
    fn reversible_subset_stays_reversible() {
        let net = parse_network(
            "r1 : Aext <=> A\n\
             r2 : A <=> Bext\n",
        )
        .unwrap();
        let (red, _) = compress(&net);
        assert_eq!(red.num_reduced(), 1);
        assert!(red.reversible[0]);
        assert_eq!(red.members[0].len(), 2);
    }

    #[test]
    fn direction_flip_when_forced_negative() {
        // r2 written backwards (B => A, irreversible); flux must run
        // A→Bext via negative r2? No: r2: Bext <= ... construct:
        // r1: Aext => A (irrev), r2: B => A would make A doubly produced.
        // Use: r1 : Aext <=> A (rev), r2 : B => A (irrev), r3 : B <=> Bext (rev).
        // Steady state: v1 + v2 = 0 (A), -v2 + v3... let me use chain:
        // A -> produced by r1, consumed by r2 reversed... Simplest:
        // r1 : A => Aext irreversible, r2 : Aext2 <=> nothing...
        let net = parse_network(
            "r1 : Xext <=> A\n\
             r2 : B => A\n\
             r3 : Yext <=> B\n",
        )
        .unwrap();
        // Flux: v2 consumes B produces A; steady state A: v1 + v2 = 0 →
        // v1 = -v2; B: v3 - v2 = 0 → v3 = v2. Kernel ~ (−1, 1, 1).
        // r2 irreversible with ratio sign relative to r1=-1... The merged
        // subset must run with v2 ≥ 0, i.e. v1 ≤ 0.
        let (red, _) = compress(&net);
        assert_eq!(red.num_reduced(), 1);
        assert!(!red.reversible[0]);
        let flux = red.expand_flux(&[Rational::from_i64(1)]);
        let r1 = net.reaction_index("r1").unwrap();
        let r2 = net.reaction_index("r2").unwrap();
        assert_eq!(flux[r2].signum(), 1, "irreversible member must run forward");
        assert_eq!(flux[r1].signum(), -1);
    }

    #[test]
    fn expand_flux_and_support() {
        let net = crate::examples::toy_network();
        let (red, _) = compress(&net);
        let r3 = net.reaction_index("r3").unwrap();
        let j = red.reduced_index_of(r3).unwrap();
        let mut reduced = vec![Rational::zero(); red.num_reduced()];
        reduced[j] = Rational::from_i64(2);
        let full = red.expand_flux(&reduced);
        let r9 = net.reaction_index("r9").unwrap();
        assert_eq!(full[r3], Rational::from_i64(2));
        assert_eq!(full[r9], Rational::from_i64(2));
        let sup = red.expand_support(&[j]);
        assert_eq!(sup, vec![r3.min(r9), r3.max(r9)]);
    }

    #[test]
    fn kernel_dimension_preserved() {
        // Compression must not change the kernel dimension (EFM space).
        let net = crate::examples::toy_network();
        let n = net.stoichiometry();
        let kb_before = kernel_basis(&n, &[]);
        let (red, _) = compress(&net);
        let kb_after = kernel_basis(&red.stoich, &[]);
        assert_eq!(kb_before.k.cols(), kb_after.k.cols());
    }

    #[test]
    fn compression_levels_nest() {
        let net = crate::yeast::network_i();
        let (none, s0) = compress_with(&net, &CompressionOptions::none());
        let (kernel, s1) = compress_with(&net, &CompressionOptions::kernel_only());
        let (full, s2) = compress_with(&net, &CompressionOptions::default());
        assert_eq!(none.num_reduced(), net.num_reactions(), "none() is the identity");
        assert_eq!(s0.merged + s0.blocked + s0.sign_blocked, 0);
        assert!(kernel.num_reduced() < none.num_reduced());
        assert!(full.num_reduced() <= kernel.num_reduced());
        assert_eq!(s1.direction_fixed, 0);
        assert!(s2.direction_fixed > 0, "full pipeline fixes one-way reversibles");
    }

    #[test]
    fn no_compression_still_enumerable() {
        // The identity reduction must still expand supports correctly.
        let net = crate::examples::toy_network();
        let (red, _) = compress_with(&net, &CompressionOptions::none());
        assert_eq!(red.num_reduced(), 9);
        for j in 0..9 {
            assert_eq!(red.reduced_index_of(j), Some(j));
            assert_eq!(red.members[j].len(), 1);
        }
    }

    #[test]
    fn compress_is_idempotent() {
        let net = crate::examples::toy_network();
        let (red, _) = compress(&net);
        // Round 2 on an already reduced matrix: kernel has no zero or
        // proportional rows.
        let kb = kernel_basis(&red.stoich, &[]);
        let (groups, blocked) = proportional_groups(&kb.k);
        assert!(blocked.is_empty());
        assert!(groups.iter().all(|(rows, _)| rows.len() == 1));
    }
}
