//! The metabolic network model.
//!
//! A network is a set of metabolites (internal or external) and reactions
//! with rational stoichiometric coefficients and a reversibility flag. The
//! steady-state constraint `N·v = 0` applies to **internal** metabolites
//! only; external metabolites are sources/sinks outside the system boundary
//! (the dotted line of the paper's Fig. 1).

use efm_linalg::Mat;
use efm_numeric::Rational;
use std::collections::HashMap;
use std::fmt;

/// A metabolite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metabolite {
    /// Name, unique within a network.
    pub name: String,
    /// External metabolites are outside the system boundary and are not
    /// balanced.
    pub external: bool,
}

/// A reaction: named, directed (unless reversible), with rational
/// stoichiometry. Negative coefficients consume, positive produce.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Name, unique within a network.
    pub name: String,
    /// Whether the reaction may carry negative flux.
    pub reversible: bool,
    /// Sparse stoichiometry: `(metabolite index, coefficient)`.
    pub stoich: Vec<(usize, Rational)>,
}

impl Reaction {
    /// Coefficient of the given metabolite (zero if absent).
    pub fn coefficient(&self, met: usize) -> Rational {
        self.stoich.iter().find(|(m, _)| *m == met).map_or_else(Rational::zero, |(_, c)| c.clone())
    }
}

/// A metabolic network.
#[derive(Debug, Clone, Default)]
pub struct MetabolicNetwork {
    /// All metabolites (internal and external).
    pub metabolites: Vec<Metabolite>,
    /// All reactions.
    pub reactions: Vec<Reaction>,
    name_to_met: HashMap<String, usize>,
    name_to_rxn: HashMap<String, usize>,
}

impl MetabolicNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or finds) a metabolite by name.
    pub fn add_metabolite(&mut self, name: &str, external: bool) -> usize {
        if let Some(&i) = self.name_to_met.get(name) {
            // Externality may be upgraded by an explicit declaration.
            if external {
                self.metabolites[i].external = true;
            }
            return i;
        }
        let i = self.metabolites.len();
        self.metabolites.push(Metabolite { name: name.to_string(), external });
        self.name_to_met.insert(name.to_string(), i);
        i
    }

    /// Adds a reaction; stoichiometry refers to metabolite indices.
    /// Panics on duplicate reaction names.
    pub fn add_reaction(
        &mut self,
        name: &str,
        reversible: bool,
        stoich: Vec<(usize, Rational)>,
    ) -> usize {
        assert!(!self.name_to_rxn.contains_key(name), "duplicate reaction name {name}");
        let i = self.reactions.len();
        self.reactions.push(Reaction { name: name.to_string(), reversible, stoich });
        self.name_to_rxn.insert(name.to_string(), i);
        i
    }

    /// Looks up a metabolite index by name.
    pub fn metabolite_index(&self, name: &str) -> Option<usize> {
        self.name_to_met.get(name).copied()
    }

    /// Looks up a reaction index by name.
    pub fn reaction_index(&self, name: &str) -> Option<usize> {
        self.name_to_rxn.get(name).copied()
    }

    /// Number of internal metabolites.
    pub fn num_internal(&self) -> usize {
        self.metabolites.iter().filter(|m| !m.external).count()
    }

    /// Number of reactions.
    pub fn num_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// Indices of internal metabolites, ascending.
    pub fn internal_indices(&self) -> Vec<usize> {
        (0..self.metabolites.len()).filter(|&i| !self.metabolites[i].external).collect()
    }

    /// Reversibility flags per reaction.
    pub fn reversibilities(&self) -> Vec<bool> {
        self.reactions.iter().map(|r| r.reversible).collect()
    }

    /// Reaction names, in order.
    pub fn reaction_names(&self) -> Vec<String> {
        self.reactions.iter().map(|r| r.name.clone()).collect()
    }

    /// The stoichiometry matrix over internal metabolites:
    /// rows = internal metabolites (in `internal_indices` order),
    /// columns = reactions.
    pub fn stoichiometry(&self) -> Mat<Rational> {
        let internals = self.internal_indices();
        let row_of: HashMap<usize, usize> =
            internals.iter().enumerate().map(|(r, &m)| (m, r)).collect();
        let mut n = Mat::<Rational>::zeros(internals.len(), self.reactions.len());
        for (j, rxn) in self.reactions.iter().enumerate() {
            for (m, c) in &rxn.stoich {
                if let Some(&r) = row_of.get(m) {
                    // Accumulate: a metabolite may legally appear on both
                    // sides of a reaction equation.
                    let cur = n.get(r, j).add(c);
                    n.set(r, j, cur);
                }
            }
        }
        n
    }

    /// Validates basic integrity: every stoichiometric index in range, no
    /// empty reactions, no reaction touching only external metabolites
    /// reported as an error list (empty when clean).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for rxn in &self.reactions {
            if rxn.stoich.is_empty() {
                problems.push(format!("reaction {} has empty stoichiometry", rxn.name));
            }
            for (m, c) in &rxn.stoich {
                if *m >= self.metabolites.len() {
                    problems.push(format!("reaction {} references unknown metabolite", rxn.name));
                }
                if c.is_zero() {
                    problems.push(format!("reaction {} has a zero coefficient", rxn.name));
                }
            }
        }
        problems
    }
}

impl fmt::Display for MetabolicNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MetabolicNetwork: {} metabolites ({} internal), {} reactions",
            self.metabolites.len(),
            self.num_internal(),
            self.reactions.len()
        )?;
        for rxn in &self.reactions {
            writeln!(f, "  {}", format_reaction(self, rxn))?;
        }
        Ok(())
    }
}

/// Formats a reaction equation like `A + 2 B => C`.
pub fn format_reaction(net: &MetabolicNetwork, rxn: &Reaction) -> String {
    let side = |coeffs: &[(usize, Rational)], negate: bool| {
        let mut parts = Vec::new();
        for (m, c) in coeffs {
            let c = if negate { c.neg() } else { c.clone() };
            if c.signum() <= 0 {
                continue;
            }
            let name = &net.metabolites[*m].name;
            if c.is_one() {
                parts.push(name.clone());
            } else {
                parts.push(format!("{c} {name}"));
            }
        }
        parts.join(" + ")
    };
    let lhs = side(&rxn.stoich, true);
    let rhs = side(&rxn.stoich, false);
    let arrow = if rxn.reversible { "<=>" } else { "=>" };
    format!("{} : {} {} {}", rxn.name, lhs, arrow, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rational {
        Rational::from_i64(v)
    }

    #[test]
    fn build_and_matrix() {
        let mut net = MetabolicNetwork::new();
        let aext = net.add_metabolite("Aext", true);
        let a = net.add_metabolite("A", false);
        let b = net.add_metabolite("B", false);
        net.add_reaction("r1", false, vec![(aext, r(-1)), (a, r(1))]);
        net.add_reaction("r2", true, vec![(a, r(-1)), (b, r(1))]);
        net.add_reaction("r3", false, vec![(b, r(-2))]);

        assert_eq!(net.num_internal(), 2);
        let n = net.stoichiometry();
        assert_eq!((n.rows(), n.cols()), (2, 3));
        // Row order follows internal_indices: A then B.
        assert_eq!(n.get(0, 0), &r(1));
        assert_eq!(n.get(0, 1), &r(-1));
        assert_eq!(n.get(1, 1), &r(1));
        assert_eq!(n.get(1, 2), &r(-2));
        assert!(n.get(0, 2).is_zero());
        assert!(net.validate().is_empty());
    }

    #[test]
    fn metabolite_dedup_and_external_upgrade() {
        let mut net = MetabolicNetwork::new();
        let a1 = net.add_metabolite("A", false);
        let a2 = net.add_metabolite("A", true);
        assert_eq!(a1, a2);
        assert!(net.metabolites[a1].external);
    }

    #[test]
    #[should_panic(expected = "duplicate reaction")]
    fn duplicate_reaction_panics() {
        let mut net = MetabolicNetwork::new();
        let a = net.add_metabolite("A", false);
        net.add_reaction("r", false, vec![(a, r(1))]);
        net.add_reaction("r", false, vec![(a, r(-1))]);
    }

    #[test]
    fn both_sides_accumulate() {
        // A => A + B has net coefficient 0 for A, 1 for B.
        let mut net = MetabolicNetwork::new();
        let a = net.add_metabolite("A", false);
        let b = net.add_metabolite("B", false);
        net.add_reaction("r", false, vec![(a, r(-1)), (a, r(1)), (b, r(1))]);
        let n = net.stoichiometry();
        assert!(n.get(0, 0).is_zero());
        assert_eq!(n.get(1, 0), &r(1));
    }

    #[test]
    fn validation_catches_problems() {
        let mut net = MetabolicNetwork::new();
        let a = net.add_metabolite("A", false);
        net.add_reaction("empty", false, vec![]);
        net.add_reaction("zero", false, vec![(a, r(0))]);
        let problems = net.validate();
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn format_roundtrip_shape() {
        let mut net = MetabolicNetwork::new();
        let a = net.add_metabolite("A", false);
        let b = net.add_metabolite("B", false);
        let i = net.add_reaction("rx", true, vec![(a, r(-2)), (b, r(1))]);
        let s = format_reaction(&net, &net.reactions[i]);
        assert_eq!(s, "rx : 2 A <=> B");
    }
}
