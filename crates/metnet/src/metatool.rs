//! Metatool `.dat` format support.
//!
//! Metatool (Pfeiffer et al., and the METATOOL 5 of von Kamp & Schuster)
//! is the classic EFM tool; its input format is the de-facto interchange
//! format of the EFM literature (efmtool and the paper's `elmocomp` both
//! read it). The format is section-based:
//!
//! ```text
//! -ENZREV
//! r6 r8
//!
//! -ENZIRREV
//! r1 r2 r3 r4 r5 r7 r9
//!
//! -METINT
//! A B C D P
//!
//! -METEXT
//! Aext Bext Dext Pext
//!
//! -CAT
//! r1 : Aext = A .
//! r3 : C = D + P .
//! r7 : B = 2 P .
//! ```
//!
//! * `-ENZREV` / `-ENZIRREV` list reversible / irreversible reaction names;
//! * `-METINT` / `-METEXT` declare internal / external metabolites;
//! * `-CAT` gives one equation per reaction, `lhs = rhs`, optionally
//!   terminated by ` .`; coefficients prefix metabolite names.
//!
//! [`parse_metatool`] converts a `.dat` string into a [`MetabolicNetwork`];
//! [`to_metatool`] renders a network back (integer-scaled coefficients),
//! giving a lossless round-trip for rational-coefficient networks.

use crate::model::MetabolicNetwork;
use crate::parser::{parse_coefficient, ParseError};
use efm_numeric::Rational;
use std::collections::HashMap;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    EnzRev,
    EnzIrrev,
    MetInt,
    MetExt,
    Cat,
}

/// Parses a Metatool `.dat` file into a network.
pub fn parse_metatool(text: &str) -> Result<MetabolicNetwork, ParseError> {
    let mut section = Section::None;
    let mut enz_rev: Vec<String> = Vec::new();
    let mut enz_irrev: Vec<String> = Vec::new();
    let mut met_int: Vec<String> = Vec::new();
    let mut met_ext: Vec<String> = Vec::new();
    let mut cat_lines: Vec<(usize, String)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        section = match line.to_ascii_uppercase().as_str() {
            "-ENZREV" => {
                section = Section::EnzRev;
                continue;
            }
            "-ENZIRREV" => {
                section = Section::EnzIrrev;
                continue;
            }
            "-METINT" => {
                section = Section::MetInt;
                continue;
            }
            "-METEXT" => {
                section = Section::MetExt;
                continue;
            }
            "-CAT" => {
                section = Section::Cat;
                continue;
            }
            _ => section,
        };
        match section {
            Section::None => {
                return Err(err(line_no, format!("content before any section: '{line}'")))
            }
            Section::EnzRev => enz_rev.extend(line.split_whitespace().map(str::to_string)),
            Section::EnzIrrev => enz_irrev.extend(line.split_whitespace().map(str::to_string)),
            Section::MetInt => met_int.extend(line.split_whitespace().map(str::to_string)),
            Section::MetExt => met_ext.extend(line.split_whitespace().map(str::to_string)),
            Section::Cat => cat_lines.push((line_no, line.to_string())),
        }
    }

    let mut net = MetabolicNetwork::new();
    for m in &met_int {
        net.add_metabolite(m, false);
    }
    for m in &met_ext {
        net.add_metabolite(m, true);
    }
    let mut reversibility: HashMap<&str, bool> = HashMap::new();
    for r in &enz_rev {
        reversibility.insert(r, true);
    }
    for r in &enz_irrev {
        if reversibility.insert(r, false) == Some(true) {
            return Err(err(0, format!("reaction {r} listed in both ENZREV and ENZIRREV")));
        }
    }

    for (line_no, line) in &cat_lines {
        let (name, eqn) =
            line.split_once(':').ok_or_else(|| err(*line_no, "missing ':' in CAT line"))?;
        let name = name.trim();
        let Some(&reversible) = reversibility.get(name) else {
            return Err(err(*line_no, format!("reaction {name} not declared in ENZREV/ENZIRREV")));
        };
        let eqn = eqn.trim().trim_end_matches('.').trim();
        let (lhs, rhs) =
            eqn.split_once('=').ok_or_else(|| err(*line_no, "missing '=' in CAT equation"))?;
        let mut stoich: Vec<(usize, Rational)> = Vec::new();
        for (side, sign) in [(lhs, -1i64), (rhs, 1i64)] {
            let side = side.trim();
            if side.is_empty() {
                continue;
            }
            for term in side.split('+') {
                let toks: Vec<&str> = term.split_whitespace().collect();
                let (coeff, met) = match toks.as_slice() {
                    [] => return Err(err(*line_no, "empty term in CAT equation")),
                    [m] => (Rational::one(), *m),
                    [c, m] => (
                        parse_coefficient(c)
                            .ok_or_else(|| err(*line_no, format!("bad coefficient {c}")))?,
                        *m,
                    ),
                    _ => return Err(err(*line_no, format!("cannot parse term '{}'", term.trim()))),
                };
                let Some(mi) = net.metabolite_index(met) else {
                    return Err(err(
                        *line_no,
                        format!("metabolite {met} not declared in METINT/METEXT"),
                    ));
                };
                stoich.push((mi, coeff.mul(&Rational::from_i64(sign))));
            }
        }
        if net.reaction_index(name).is_some() {
            return Err(err(*line_no, format!("duplicate CAT entry for {name}")));
        }
        net.add_reaction(name, reversible, stoich);
    }

    // Declared reactions without a CAT entry are an error (they would be
    // silently blocked otherwise).
    for r in reversibility.keys() {
        if net.reaction_index(r).is_none() {
            return Err(err(0, format!("reaction {r} declared but has no CAT equation")));
        }
    }
    Ok(net)
}

/// Renders a network in Metatool `.dat` format. Rational coefficients are
/// scaled per reaction to integers (Metatool only accepts integers).
pub fn to_metatool(net: &MetabolicNetwork) -> String {
    let mut out = String::new();
    let rev: Vec<&str> =
        net.reactions.iter().filter(|r| r.reversible).map(|r| r.name.as_str()).collect();
    let irrev: Vec<&str> =
        net.reactions.iter().filter(|r| !r.reversible).map(|r| r.name.as_str()).collect();
    let internal: Vec<&str> =
        net.metabolites.iter().filter(|m| !m.external).map(|m| m.name.as_str()).collect();
    let external: Vec<&str> =
        net.metabolites.iter().filter(|m| m.external).map(|m| m.name.as_str()).collect();
    out.push_str("-ENZREV\n");
    out.push_str(&rev.join(" "));
    out.push_str("\n\n-ENZIRREV\n");
    out.push_str(&irrev.join(" "));
    out.push_str("\n\n-METINT\n");
    out.push_str(&internal.join(" "));
    out.push_str("\n\n-METEXT\n");
    out.push_str(&external.join(" "));
    out.push_str("\n\n-CAT\n");
    for rxn in &net.reactions {
        // Scale to integers: multiply by the lcm of denominators.
        let vals: Vec<Rational> = rxn.stoich.iter().map(|(_, c)| c.clone()).collect();
        let ints = efm_numeric::to_primitive_integer_vec(&vals);
        let mut lhs: Vec<String> = Vec::new();
        let mut rhs: Vec<String> = Vec::new();
        for ((m, _), v) in rxn.stoich.iter().zip(&ints) {
            let name = &net.metabolites[*m].name;
            let mag = v.abs();
            let term = if mag.is_one() { name.clone() } else { format!("{mag} {name}") };
            if v.signum() < 0 {
                lhs.push(term);
            } else if v.signum() > 0 {
                rhs.push(term);
            }
        }
        out.push_str(&format!("{} : {} = {} .\n", rxn.name, lhs.join(" + "), rhs.join(" + ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::toy_network;

    const TOY_DAT: &str = "\
-ENZREV
r6r r8r

-ENZIRREV
r1 r2 r3 r4 r5 r7 r9

-METINT
A B C D P

-METEXT
Aext Bext Dext Pext

-CAT
r1 : Aext = A .
r2 : A = C .
r3 : C = D + P .
r4 : P = Pext .
r5 : A = B .
r6r : B = C .
r7 : B = 2 P .
r8r : B = Bext .
r9 : D = Dext .
";

    #[test]
    fn parses_toy_dat() {
        let net = parse_metatool(TOY_DAT).unwrap();
        assert_eq!(net.num_reactions(), 9);
        assert_eq!(net.num_internal(), 5);
        assert!(net.reactions[net.reaction_index("r6r").unwrap()].reversible);
        assert!(!net.reactions[net.reaction_index("r7").unwrap()].reversible);
        let p = net.metabolite_index("P").unwrap();
        let r7 = &net.reactions[net.reaction_index("r7").unwrap()];
        assert_eq!(r7.coefficient(p).to_f64(), 2.0);
    }

    #[test]
    fn metatool_toy_matches_builtin_toy() {
        // Same stoichiometry as the programmatic toy network.
        let a = parse_metatool(TOY_DAT).unwrap();
        let b = toy_network();
        assert_eq!(a.num_reactions(), b.num_reactions());
        let na = a.stoichiometry();
        let nb = b.stoichiometry();
        // Match rows by metabolite name.
        let ia = a.internal_indices();
        let ib = b.internal_indices();
        for (ra, &ma) in ia.iter().enumerate() {
            let name = &a.metabolites[ma].name;
            let rb = ib
                .iter()
                .position(|&mb| &b.metabolites[mb].name == name)
                .expect("metabolite present in both");
            for (ca, rxn) in a.reactions.iter().enumerate() {
                let cb = b.reaction_index(&rxn.name).unwrap();
                assert_eq!(na.get(ra, ca), nb.get(rb, cb), "N[{name},{}]", rxn.name);
            }
        }
    }

    #[test]
    fn roundtrip_through_to_metatool() {
        let net = toy_network();
        let dat = to_metatool(&net);
        let back = parse_metatool(&dat).unwrap();
        assert_eq!(back.num_reactions(), net.num_reactions());
        assert_eq!(back.num_internal(), net.num_internal());
        for rxn in &net.reactions {
            let j = back.reaction_index(&rxn.name).unwrap();
            assert_eq!(back.reactions[j].reversible, rxn.reversible);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_metatool("garbage before section\n").is_err());
        let missing_decl = "-ENZIRREV\nr1\n-METINT\nA\n-METEXT\nX\n-CAT\nr2 : A = X .\n";
        let e = parse_metatool(missing_decl).unwrap_err();
        assert!(e.message.contains("not declared"), "{e}");
        let both = "-ENZREV\nr1\n-ENZIRREV\nr1\n-METINT\nA\n-METEXT\nX\n-CAT\nr1 : A = X .\n";
        assert!(parse_metatool(both).is_err());
        let no_cat = "-ENZIRREV\nr1 r2\n-METINT\nA\n-METEXT\nX\n-CAT\nr1 : A = X .\n";
        let e = parse_metatool(no_cat).unwrap_err();
        assert!(e.message.contains("no CAT equation"), "{e}");
        let unknown_met = "-ENZIRREV\nr1\n-METINT\nA\n-METEXT\nX\n-CAT\nr1 : A = Q .\n";
        let e = parse_metatool(unknown_met).unwrap_err();
        assert!(e.message.contains("not declared in METINT"), "{e}");
    }

    #[test]
    fn yeast_network_roundtrips() {
        let net = crate::yeast::network_i();
        let dat = to_metatool(&net);
        let back = parse_metatool(&dat).unwrap();
        assert_eq!(back.num_reactions(), 78);
        assert_eq!(back.num_internal(), 62);
        // Spot-check a large coefficient survives.
        let r70 = &back.reactions[back.reaction_index("R70").unwrap()];
        let atp = back.metabolite_index("ATP").unwrap();
        assert_eq!(r70.coefficient(atp).to_f64(), -40141.0);
    }
}
