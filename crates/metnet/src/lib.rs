//! # efm-metnet — metabolic network substrate
//!
//! Everything the Nullspace Algorithm needs *about networks*, independent of
//! the enumeration itself:
//!
//! * [`MetabolicNetwork`] — metabolites, reactions, reversibility, and the
//!   internal-metabolite stoichiometry matrix;
//! * [`parse_network`] — the text format of the paper's reaction listings;
//! * [`compress`] — EFM-preserving network reduction (redundant rows,
//!   blocked reactions, enzyme subsets) with exact mode re-expansion;
//! * [`yeast`] — the S. cerevisiae Networks I and II of Figs. 3–5;
//! * [`examples`] / [`generator`] — small known-answer networks and
//!   random/structured workload generators.

#![warn(missing_docs)]

mod compress;
pub mod examples;
pub mod generator;
pub mod metatool;
mod model;
mod parser;
pub mod stats;
pub mod yeast;

pub use compress::{compress, compress_with, CompressionOptions, CompressionStats, ReducedNetwork};
pub use metatool::{parse_metatool, to_metatool};
pub use model::{format_reaction, MetabolicNetwork, Metabolite, Reaction};
pub use parser::{parse_coefficient, parse_network, parse_reaction_line, ParseError};
