//! Network analytics: connectivity, degree distributions, and structural
//! health reports. Used by the CLI's `--stats` mode and useful when
//! choosing divide-and-conquer partition reactions (the paper notes that
//! selecting them is "a manual procedure" — these statistics are the
//! signals a human would look at).

use crate::model::MetabolicNetwork;

/// Structural summary of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Internal metabolite count.
    pub internal_metabolites: usize,
    /// External metabolite count.
    pub external_metabolites: usize,
    /// Total reactions.
    pub reactions: usize,
    /// Reversible reactions.
    pub reversible: usize,
    /// Exchange reactions (touching at least one external metabolite).
    pub exchanges: usize,
    /// Nonzero stoichiometric entries over internal metabolites.
    pub nonzeros: usize,
    /// Density of the internal stoichiometry matrix (nonzeros / (m·q)).
    pub density: f64,
    /// Maximum reaction degree (internal metabolites touched).
    pub max_reaction_degree: usize,
    /// Maximum internal metabolite degree (reactions touching it).
    pub max_metabolite_degree: usize,
    /// Internal metabolites with no producer or no consumer (dead ends;
    /// their reactions are structurally blocked).
    pub dead_end_metabolites: Vec<String>,
    /// Orphan reactions: all-zero internal stoichiometry (pure exchange of
    /// externals).
    pub orphan_reactions: Vec<String>,
}

/// Computes the structural summary.
pub fn network_stats(net: &MetabolicNetwork) -> NetworkStats {
    let internals = net.internal_indices();
    let row_of: std::collections::HashMap<usize, usize> =
        internals.iter().enumerate().map(|(r, &m)| (m, r)).collect();
    let m = internals.len();
    let q = net.num_reactions();
    let mut nonzeros = 0usize;
    let mut produced = vec![false; m];
    let mut consumed = vec![false; m];
    let mut met_degree = vec![0usize; m];
    let mut max_rxn_degree = 0usize;
    let mut exchanges = 0usize;
    let mut orphans = Vec::new();
    for rxn in &net.reactions {
        let mut degree = 0usize;
        let mut touches_external = false;
        for (mi, c) in &rxn.stoich {
            if c.is_zero() {
                continue;
            }
            match row_of.get(mi) {
                Some(&r) => {
                    degree += 1;
                    nonzeros += 1;
                    met_degree[r] += 1;
                    if c.signum() > 0 || rxn.reversible {
                        produced[r] = true;
                    }
                    if c.signum() < 0 || rxn.reversible {
                        consumed[r] = true;
                    }
                }
                None => touches_external = true,
            }
        }
        if degree == 0 {
            orphans.push(rxn.name.clone());
        }
        if touches_external {
            exchanges += 1;
        }
        max_rxn_degree = max_rxn_degree.max(degree);
    }
    let dead_ends: Vec<String> = internals
        .iter()
        .enumerate()
        .filter(|(r, _)| !(produced[*r] && consumed[*r]))
        .map(|(_, &mi)| net.metabolites[mi].name.clone())
        .collect();
    NetworkStats {
        internal_metabolites: m,
        external_metabolites: net.metabolites.len() - m,
        reactions: q,
        reversible: net.reactions.iter().filter(|r| r.reversible).count(),
        exchanges,
        nonzeros,
        density: if m * q == 0 { 0.0 } else { nonzeros as f64 / (m * q) as f64 },
        max_reaction_degree: max_rxn_degree,
        max_metabolite_degree: met_degree.iter().copied().max().unwrap_or(0),
        dead_end_metabolites: dead_ends,
        orphan_reactions: orphans,
    }
}

/// Connected components of the metabolite–reaction bipartite graph
/// (internal metabolites only). Returns per-reaction component ids;
/// reactions touching no internal metabolite get their own component.
pub fn reaction_components(net: &MetabolicNetwork) -> Vec<usize> {
    let internals = net.internal_indices();
    let row_of: std::collections::HashMap<usize, usize> =
        internals.iter().enumerate().map(|(r, &m)| (m, r)).collect();
    let m = internals.len();
    let q = net.num_reactions();
    // Union-find over m metabolite nodes + q reaction nodes.
    let mut parent: Vec<usize> = (0..m + q).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (j, rxn) in net.reactions.iter().enumerate() {
        for (mi, c) in &rxn.stoich {
            if c.is_zero() {
                continue;
            }
            if let Some(&r) = row_of.get(mi) {
                let a = find(&mut parent, r);
                let b = find(&mut parent, m + j);
                parent[a] = b;
            }
        }
    }
    // Renumber roots densely.
    let mut ids = std::collections::HashMap::new();
    (0..q)
        .map(|j| {
            let root = find(&mut parent, m + j);
            let next = ids.len();
            *ids.entry(root).or_insert(next)
        })
        .collect()
}

/// Human-readable report.
pub fn format_stats(stats: &NetworkStats) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "metabolites: {} internal + {} external\n",
        stats.internal_metabolites, stats.external_metabolites
    ));
    s.push_str(&format!(
        "reactions: {} ({} reversible, {} exchanges)\n",
        stats.reactions, stats.reversible, stats.exchanges
    ));
    s.push_str(&format!(
        "stoichiometry: {} nonzeros, density {:.3}, max degrees rxn={} met={}\n",
        stats.nonzeros, stats.density, stats.max_reaction_degree, stats.max_metabolite_degree
    ));
    if !stats.dead_end_metabolites.is_empty() {
        s.push_str(&format!("dead-end metabolites: {}\n", stats.dead_end_metabolites.join(" ")));
    }
    if !stats.orphan_reactions.is_empty() {
        s.push_str(&format!("orphan reactions: {}\n", stats.orphan_reactions.join(" ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::toy_network;
    use crate::parser::parse_network;

    #[test]
    fn toy_stats() {
        let s = network_stats(&toy_network());
        assert_eq!(s.internal_metabolites, 5);
        assert_eq!(s.external_metabolites, 4);
        assert_eq!(s.reactions, 9);
        assert_eq!(s.reversible, 2);
        assert_eq!(s.exchanges, 4);
        assert!(s.dead_end_metabolites.is_empty());
        assert!(s.orphan_reactions.is_empty());
        assert!(s.density > 0.0 && s.density < 1.0);
    }

    #[test]
    fn dead_ends_detected() {
        let net = parse_network("r1 : Aext => A\nr2 : A => B\n").unwrap();
        let s = network_stats(&net);
        assert_eq!(s.dead_end_metabolites, vec!["B".to_string()]);
    }

    #[test]
    fn orphan_reactions_detected() {
        let net = parse_network("r1 : Aext => Bext\nr2 : Aext => C\nr3 : C => Dext\n").unwrap();
        let s = network_stats(&net);
        assert_eq!(s.orphan_reactions, vec!["r1".to_string()]);
    }

    #[test]
    fn components_split_disconnected_networks() {
        let net = parse_network(
            "a1 : Aext => A\na2 : A => Bext\n\
             b1 : Cext => C\nb2 : C => Dext\n",
        )
        .unwrap();
        let comp = reaction_components(&net);
        assert_eq!(comp.len(), 4);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn yeast_components() {
        // Network I is one big component except the O2 dead end: R68
        // imports O2 but nothing consumes it (oxidative phosphorylation
        // R56/R57 only exist in Network II).
        let net = crate::yeast::network_i();
        let comp = reaction_components(&net);
        let r68 = net.reaction_index("R68").unwrap();
        let r4 = net.reaction_index("R4").unwrap();
        assert_ne!(comp[r68], comp[r4], "the O2 import is its own component");
        let main_comp = comp[r4];
        let main_size = comp.iter().filter(|&&c| c == main_comp).count();
        assert!(main_size >= 76, "all but the O2 import sit in one component");
        // Network II reconnects it through R56.
        let net2 = crate::yeast::network_ii();
        let comp2 = reaction_components(&net2);
        let r68b = net2.reaction_index("R68").unwrap();
        let r4b = net2.reaction_index("R4").unwrap();
        assert_eq!(comp2[r68b], comp2[r4b]);
        // And the O2 dead end shows up in the stats report.
        let s = network_stats(&net);
        assert!(s.dead_end_metabolites.contains(&"O2".to_string()));
    }

    #[test]
    fn format_is_stable() {
        let s = network_stats(&toy_network());
        let text = format_stats(&s);
        assert!(text.contains("5 internal"));
        assert!(text.contains("9 ("));
    }
}
