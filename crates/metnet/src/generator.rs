//! Workload generators: random and structured metabolic networks.
//!
//! Used by the property-based test suite (serial ≡ parallel ≡
//! divide-and-conquer on arbitrary networks) and by the synthetic benchmark
//! sweeps (candidate-count scaling). Structured families have analytically
//! known EFM counts, which gives the test suite exact oracles independent of
//! the enumeration code.

use crate::model::MetabolicNetwork;
use efm_numeric::Rational;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random network generation.
#[derive(Debug, Clone)]
pub struct RandomNetworkParams {
    /// Internal metabolite count.
    pub metabolites: usize,
    /// Reaction count.
    pub reactions: usize,
    /// Probability that a reaction is reversible.
    pub reversible_prob: f64,
    /// Mean number of metabolites per reaction (sparsity control).
    pub mean_degree: f64,
    /// Probability a reaction is an exchange (touches the boundary).
    pub exchange_prob: f64,
    /// Maximum absolute stoichiometric coefficient.
    pub max_coeff: i64,
}

impl Default for RandomNetworkParams {
    fn default() -> Self {
        RandomNetworkParams {
            metabolites: 6,
            reactions: 10,
            reversible_prob: 0.25,
            mean_degree: 3.0,
            exchange_prob: 0.35,
            max_coeff: 2,
        }
    }
}

/// Generates a random metabolic network (deterministic per seed).
///
/// The generator biases toward *connected, flux-capable* networks: every
/// metabolite gets at least one producer and one consumer where possible,
/// and a few exchange reactions cross the boundary so nonzero steady states
/// exist. Degenerate draws are still possible (and useful) — the EFM set
/// may legitimately be empty.
pub fn random_network(params: &RandomNetworkParams, seed: u64) -> MetabolicNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = MetabolicNetwork::new();
    let mets: Vec<usize> =
        (0..params.metabolites).map(|i| net.add_metabolite(&format!("M{i}"), false)).collect();
    let ext_in = net.add_metabolite("Sext", true);
    let ext_out = net.add_metabolite("Pext", true);

    for j in 0..params.reactions {
        let reversible = rng.gen_bool(params.reversible_prob);
        let name = format!("v{j}{}", if reversible { "r" } else { "" });
        let mut stoich: Vec<(usize, Rational)> = Vec::new();
        if rng.gen_bool(params.exchange_prob) {
            // Exchange: one internal metabolite ↔ boundary.
            let m = mets[rng.gen_range(0..mets.len())];
            let import = rng.gen_bool(0.5);
            let coeff = rng.gen_range(1..=params.max_coeff);
            if import {
                stoich.push((ext_in, Rational::from_i64(-1)));
                stoich.push((m, Rational::from_i64(coeff)));
            } else {
                stoich.push((m, Rational::from_i64(-coeff)));
                stoich.push((ext_out, Rational::from_i64(1)));
            }
        } else {
            // Internal conversion with ~mean_degree participants split
            // between substrates and products.
            let degree = {
                let d = params.mean_degree.max(2.0);
                rng.gen_range(2..=(d.round() as usize).max(2) + 1)
            };
            let mut chosen: Vec<usize> = Vec::new();
            for _ in 0..degree {
                let m = mets[rng.gen_range(0..mets.len())];
                if !chosen.contains(&m) {
                    chosen.push(m);
                }
            }
            if chosen.len() < 2 {
                // Fall back to a simple conversion between two metabolites.
                let a = mets[rng.gen_range(0..mets.len())];
                let b = mets[(mets.iter().position(|&x| x == a).unwrap() + 1) % mets.len()];
                chosen = vec![a, mets[0].max(b)];
                chosen.dedup();
                if chosen.len() < 2 {
                    chosen = vec![mets[0], *mets.last().unwrap()];
                }
            }
            let split = rng.gen_range(1..chosen.len());
            for (i, &m) in chosen.iter().enumerate() {
                let coeff = rng.gen_range(1..=params.max_coeff);
                let c = if i < split { -coeff } else { coeff };
                stoich.push((m, Rational::from_i64(c)));
            }
        }
        net.add_reaction(&name, reversible, stoich);
    }
    net
}

/// A linear pathway `Sext → M0 → M1 → … → Pext` of `n` interior steps.
/// Exactly **one** EFM.
pub fn linear_chain(n: usize) -> MetabolicNetwork {
    assert!(n >= 1);
    let mut net = MetabolicNetwork::new();
    let sext = net.add_metabolite("Sext", true);
    let pext = net.add_metabolite("Pext", true);
    let mets: Vec<usize> = (0..n).map(|i| net.add_metabolite(&format!("M{i}"), false)).collect();
    net.add_reaction(
        "in",
        false,
        vec![(sext, Rational::from_i64(-1)), (mets[0], Rational::from_i64(1))],
    );
    for i in 0..n - 1 {
        net.add_reaction(
            &format!("s{i}"),
            false,
            vec![(mets[i], Rational::from_i64(-1)), (mets[i + 1], Rational::from_i64(1))],
        );
    }
    net.add_reaction(
        "out",
        false,
        vec![(mets[n - 1], Rational::from_i64(-1)), (pext, Rational::from_i64(1))],
    );
    net
}

/// `k` parallel branches between a shared substrate and product:
/// exactly **k** EFMs.
pub fn parallel_branches(k: usize) -> MetabolicNetwork {
    assert!(k >= 1);
    let mut net = MetabolicNetwork::new();
    let sext = net.add_metabolite("Sext", true);
    let pext = net.add_metabolite("Pext", true);
    let a = net.add_metabolite("A", false);
    let b = net.add_metabolite("B", false);
    net.add_reaction("in", false, vec![(sext, Rational::from_i64(-1)), (a, Rational::from_i64(1))]);
    for i in 0..k {
        net.add_reaction(
            &format!("b{i}"),
            false,
            vec![(a, Rational::from_i64(-1)), (b, Rational::from_i64(1))],
        );
    }
    net.add_reaction(
        "out",
        false,
        vec![(b, Rational::from_i64(-1)), (pext, Rational::from_i64(1))],
    );
    net
}

/// `s` sequential stages, each offering `k` parallel branch reactions:
/// exactly **k^s** EFMs. This is the combinatorial-explosion workload for
/// scaling benches — EFM count grows exponentially while the network stays
/// small.
pub fn layered_branches(stages: usize, k: usize) -> MetabolicNetwork {
    assert!(stages >= 1 && k >= 1);
    let mut net = MetabolicNetwork::new();
    let sext = net.add_metabolite("Sext", true);
    let pext = net.add_metabolite("Pext", true);
    let nodes: Vec<usize> =
        (0..=stages).map(|i| net.add_metabolite(&format!("L{i}"), false)).collect();
    net.add_reaction(
        "in",
        false,
        vec![(sext, Rational::from_i64(-1)), (nodes[0], Rational::from_i64(1))],
    );
    for s in 0..stages {
        for b in 0..k {
            net.add_reaction(
                &format!("s{s}b{b}"),
                false,
                vec![(nodes[s], Rational::from_i64(-1)), (nodes[s + 1], Rational::from_i64(1))],
            );
        }
    }
    net.add_reaction(
        "out",
        false,
        vec![(nodes[stages], Rational::from_i64(-1)), (pext, Rational::from_i64(1))],
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_network_is_deterministic_per_seed() {
        let p = RandomNetworkParams::default();
        let a = random_network(&p, 42);
        let b = random_network(&p, 42);
        assert_eq!(a.num_reactions(), b.num_reactions());
        for (ra, rb) in a.reactions.iter().zip(&b.reactions) {
            assert_eq!(ra, rb);
        }
        let c = random_network(&p, 43);
        let differs = a.reactions.len() != c.reactions.len()
            || a.reactions.iter().zip(&c.reactions).any(|(x, y)| x != y);
        assert!(differs, "different seeds should give different draws");
    }

    #[test]
    fn random_network_validates() {
        let p = RandomNetworkParams::default();
        for seed in 0..20 {
            let net = random_network(&p, seed);
            assert!(net.validate().is_empty(), "seed {seed}");
            assert_eq!(net.num_reactions(), p.reactions);
        }
    }

    #[test]
    fn structured_shapes() {
        let c = linear_chain(4);
        assert_eq!(c.num_reactions(), 5);
        assert_eq!(c.num_internal(), 4);
        let p = parallel_branches(3);
        assert_eq!(p.num_reactions(), 5);
        let l = layered_branches(3, 2);
        assert_eq!(l.num_reactions(), 3 * 2 + 2);
        assert_eq!(l.num_internal(), 4);
        for net in [c, p, l] {
            assert!(net.validate().is_empty());
        }
    }
}
